//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the subset of proptest's API its tests use: the
//! [`proptest!`] macro, `prop_assert*`/`prop_assume`/`prop_oneof`
//! macros, [`Strategy`] implementations for ranges, tuples, `Just`,
//! `collection::vec`, `option::of`, `bool::ANY`, and simple string
//! patterns. Generation is a deterministic uniform sampler seeded from
//! the test name — no shrinking, no persistence files.

use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// SplitMix64: tiny, fast, deterministic.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator directly.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Seeds the generator from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; panics when no arms are given.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u64 + 1;
                lo + rng.below(width) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end as i64 - self.start as i64) as u64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
}

/// A simplified string-pattern strategy: `"[<class>]{m,n}"` draws a string
/// of `m..=n` characters uniformly from the (range-capable) class. Any
/// other pattern falls back to short printable-ASCII strings.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = {
            let chars: Vec<char> = rest[..close].chars().collect();
            let mut out = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                if i + 2 < chars.len() && chars[i + 1] == '-' {
                    let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                    for c in lo..=hi {
                        out.push(char::from_u32(c)?);
                    }
                    i += 3;
                } else {
                    out.push(chars[i]);
                    i += 1;
                }
            }
            out
        };
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = counts.split_once(',')?;
        Some((class, m.trim().parse().ok()?, n.trim().parse().ok()?))
    }
    let (class, min, max) = parse(pattern).unwrap_or_else(|| ((' '..='~').collect(), 0, 32));
    if class.is_empty() {
        return String::new();
    }
    let len = min + rng.below((max - min) as u64 + 1) as usize;
    (0..len)
        .map(|_| class[rng.below(class.len() as u64) as usize])
        .collect()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted size specifications for [`vec()`].
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// A `Vec` of values drawn from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy { element, size }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The result of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Either boolean, uniformly.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// Everything a property test needs, importable in one line.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let strategy = ( $( $strat, )* );
            for _case in 0..config.cases {
                let ( $( $arg, )* ) = $crate::Strategy::sample(&strategy, &mut rng);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed: {}", stringify!($name), msg)
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?} == {:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?} != {:?}`", a, b);
    }};
}

/// Skips the case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// A uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn pattern_strategy_respects_class_and_length() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..200 {
            let s = Strategy::sample(&"[ -~]{0,120}", &mut rng);
            assert!(s.len() <= 120);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..10,
            y in 5u64..6,
            z in -2.0f64..2.0,
            flip in crate::bool::ANY,
            v in crate::collection::vec(0u32..4, 0..6),
            maybe in crate::option::of(1u16..=3),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 5);
            prop_assert!((-2.0..2.0).contains(&z));
            prop_assert!(matches!(flip, true | false));
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 4));
            if let Some(m) = maybe {
                prop_assert!((1..=3).contains(&m));
            }
        }

        #[test]
        fn oneof_and_map_compose(
            pick in prop_oneof![
                Just(1usize),
                (2usize..5).prop_map(|v| v * 10),
            ],
        ) {
            prop_assert!(pick == 1 || (20..50).contains(&pick));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
