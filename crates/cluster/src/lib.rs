//! Clusters of SMPs with cooperating schedulers — the paper's second §6
//! future-work direction, built out.
//!
//! "We are also extending this work to run on clusters of SMP's, where the
//! resources are physically distributed. We think that adding cooperation
//! between the scheduling policies running on the different machines, we
//! can control enough the scheduling of the physical processors, so that
//! each application is given resources at the same time on all the nodes."
//!
//! The model: a cluster of identical SMP nodes; *distributed applications*
//! span several nodes (one process group per node, OpenMP threads inside),
//! synchronizing across nodes every iteration. Each node runs its own
//! space-sharing scheduler. The question is coordination:
//!
//! - [`Coordination::Independent`] — every node partitions its processors
//!   among its resident process groups on its own. Nodes host different job
//!   mixes, so the same application gets *different* allocations on
//!   different nodes — and since the iteration synchronizes, everything
//!   beyond the slowest node's grant is pure waste.
//! - [`Coordination::Cooperative`] — the nodes agree: each application runs
//!   with the *minimum* of its per-node proposals everywhere, and the
//!   surplus is immediately re-offered to the other residents of each node.
//!
//! [`run_cluster`] simulates a job set to completion under either mode and
//! reports makespan and wasted CPU time; the cooperative mode's advantage
//! is the paper's motivation for cross-node coordination.

pub mod sim;

pub use sim::{run_cluster, ClusterJob, ClusterResult, ClusterSpec, Coordination};
