//! The cluster simulator: distributed jobs, per-node schedulers, and the
//! coordination comparison.

use std::sync::Arc;

use pdpa_apps::SpeedupModel;
use pdpa_policies::alloc_math::equal_shares;
use pdpa_sim::SimDuration;

/// The cluster: identical SMP nodes.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    /// Number of SMP nodes.
    pub nodes: usize,
    /// Processors per node.
    pub cpus_per_node: usize,
}

impl ClusterSpec {
    /// Creates the cluster description.
    ///
    /// # Panics
    ///
    /// Panics on an empty cluster.
    pub fn new(nodes: usize, cpus_per_node: usize) -> Self {
        assert!(nodes > 0 && cpus_per_node > 0, "cluster must not be empty");
        ClusterSpec {
            nodes,
            cpus_per_node,
        }
    }
}

/// A distributed iterative application: one process group on each of `span`
/// nodes, OpenMP threads inside each group, a cross-node exchange per
/// iteration.
#[derive(Clone)]
pub struct ClusterJob {
    /// Nodes the application spans.
    pub span: usize,
    /// Processors requested per node.
    pub per_node_request: usize,
    /// Outer iterations.
    pub iterations: u32,
    /// Total sequential compute of one iteration (split evenly over the
    /// spanned nodes).
    pub seq_iter_time: SimDuration,
    /// Per-node OpenMP speedup curve.
    pub inner: Arc<dyn SpeedupModel>,
    /// Explicit node placement (common for MPI jobs); `None` lets the
    /// cluster place the job on its least-loaded nodes.
    pub pinned: Option<Vec<usize>>,
}

impl ClusterJob {
    /// Iteration time when every node runs the job on `procs` processors.
    /// The iteration synchronizes across nodes, so only the *common*
    /// allocation counts.
    pub fn iter_time(&self, procs: usize) -> f64 {
        let s = self.inner.speedup(procs).max(1e-12);
        (self.seq_iter_time.as_secs() / self.span as f64) / s
    }
}

/// How the per-node schedulers relate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coordination {
    /// Every node partitions on its own; a spanning job may get different
    /// grants on different nodes, and runs at the minimum.
    Independent,
    /// The nodes co-allocate: every job holds the same count on all its
    /// nodes, surplus is re-offered cluster-consistently.
    Cooperative,
}

/// The outcome of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// Completion of the last job, seconds.
    pub makespan_secs: f64,
    /// CPU-seconds granted above a job's usable (minimum-node) allocation —
    /// pure coordination waste; zero under [`Coordination::Cooperative`].
    pub wasted_cpu_seconds: f64,
    /// Execution time of each job, in input order.
    pub exec_secs: Vec<f64>,
    /// Node each job was placed on (first node of its span window).
    pub placements: Vec<Vec<usize>>,
}

/// Per-job live state.
struct Live {
    index: usize,
    nodes: Vec<usize>,
    remaining_iters: f64,
    /// Grant per spanned node (parallel to `nodes`).
    grants: Vec<usize>,
}

/// Simulates `jobs` (all present from t = 0) to completion under the given
/// coordination mode, with per-node equipartition as the local policy.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pdpa_apps::Amdahl;
/// use pdpa_cluster::{run_cluster, ClusterJob, ClusterSpec, Coordination};
/// use pdpa_sim::SimDuration;
///
/// let job = ClusterJob {
///     span: 2,
///     per_node_request: 8,
///     iterations: 10,
///     seq_iter_time: SimDuration::from_secs(8.0),
///     inner: Arc::new(Amdahl::new(0.0)),
///     pinned: None,
/// };
/// let result = run_cluster(ClusterSpec::new(2, 8), &[job], Coordination::Cooperative);
/// assert_eq!(result.wasted_cpu_seconds, 0.0);
/// assert!(result.makespan_secs > 0.0);
/// ```
///
/// # Panics
///
/// Panics if a job spans more nodes than the cluster has, or requests zero
/// processors or iterations.
pub fn run_cluster(
    spec: ClusterSpec,
    jobs: &[ClusterJob],
    coordination: Coordination,
) -> ClusterResult {
    for job in jobs {
        assert!(job.span >= 1 && job.span <= spec.nodes, "span out of range");
        assert!(job.per_node_request >= 1, "request must be positive");
        assert!(job.iterations >= 1, "iterations must be positive");
    }

    // Placement: each job takes the `span` nodes with the fewest residents.
    let mut residents: Vec<usize> = vec![0; spec.nodes];
    let mut live: Vec<Live> = Vec::new();
    let mut placements = vec![Vec::new(); jobs.len()];
    for (index, job) in jobs.iter().enumerate() {
        let nodes: Vec<usize> = match &job.pinned {
            Some(pins) => {
                assert_eq!(pins.len(), job.span, "pinning must cover the span");
                assert!(
                    pins.iter().all(|&n| n < spec.nodes),
                    "pinned node out of range"
                );
                pins.clone()
            }
            None => {
                let mut order: Vec<usize> = (0..spec.nodes).collect();
                order.sort_by_key(|&n| (residents[n], n));
                order.into_iter().take(job.span).collect()
            }
        };
        for &n in &nodes {
            residents[n] += 1;
        }
        placements[index] = nodes.clone();
        live.push(Live {
            index,
            nodes,
            remaining_iters: job.iterations as f64,
            grants: Vec::new(),
        });
    }

    let mut clock = 0.0f64;
    let mut wasted = 0.0f64;
    let mut exec = vec![0.0f64; jobs.len()];

    while !live.is_empty() {
        allocate(spec, jobs, &mut live, coordination);

        // Rates from the usable (minimum) grant; waste from the rest.
        let usable: Vec<usize> = live
            .iter()
            .map(|l| l.grants.iter().copied().min().unwrap_or(0))
            .collect();
        let rates: Vec<f64> = live
            .iter()
            .zip(&usable)
            .map(|(l, &u)| {
                if u == 0 {
                    0.0
                } else {
                    1.0 / jobs[l.index].iter_time(u)
                }
            })
            .collect();
        let waste_rate: f64 = live
            .iter()
            .zip(&usable)
            .map(|(l, &u)| {
                l.grants
                    .iter()
                    .map(|&g| g.saturating_sub(u) as f64)
                    .sum::<f64>()
            })
            .sum();

        // Advance to the earliest completion.
        let dt = live
            .iter()
            .zip(&rates)
            .filter(|&(_, &r)| r > 0.0)
            .map(|(l, &r)| l.remaining_iters / r)
            .fold(f64::INFINITY, f64::min);
        assert!(
            dt.is_finite(),
            "cluster deadlock: no job can progress (all grants zero)"
        );
        clock += dt;
        wasted += waste_rate * dt;
        for (l, &r) in live.iter_mut().zip(&rates) {
            l.remaining_iters = (l.remaining_iters - r * dt).max(0.0);
        }
        live.retain(|l| {
            if l.remaining_iters <= 1e-9 {
                exec[l.index] = clock;
                false
            } else {
                true
            }
        });
    }

    ClusterResult {
        makespan_secs: clock,
        wasted_cpu_seconds: wasted,
        exec_secs: exec,
        placements,
    }
}

/// Computes the current grants for every live job.
fn allocate(spec: ClusterSpec, jobs: &[ClusterJob], live: &mut [Live], mode: Coordination) {
    match mode {
        Coordination::Independent => {
            // Each node equipartitions among its residents, oblivious to
            // what the other nodes do.
            for node in 0..spec.nodes {
                let members: Vec<usize> = (0..live.len())
                    .filter(|&i| live[i].nodes.contains(&node))
                    .collect();
                let requests: Vec<usize> = members
                    .iter()
                    .map(|&i| jobs[live[i].index].per_node_request)
                    .collect();
                let shares = equal_shares(spec.cpus_per_node, &requests, 1);
                for (&i, share) in members.iter().zip(shares) {
                    let pos = live[i]
                        .nodes
                        .iter()
                        .position(|&n| n == node)
                        .expect("member");
                    if live[i].grants.len() != live[i].nodes.len() {
                        live[i].grants = vec![0; live[i].nodes.len()];
                    }
                    live[i].grants[pos] = share;
                }
            }
        }
        Coordination::Cooperative => {
            // Co-allocation water-filling: every job holds the same grant on
            // all its nodes; grow the smallest-granted job that still fits
            // everywhere.
            let mut free = vec![spec.cpus_per_node; spec.nodes];
            let mut grant = vec![0usize; live.len()];
            // Baseline: one processor everywhere (run-to-completion).
            for (i, l) in live.iter().enumerate() {
                if l.nodes.iter().all(|&n| free[n] >= 1) {
                    for &n in &l.nodes {
                        free[n] -= 1;
                    }
                    grant[i] = 1;
                }
            }
            loop {
                let candidate = (0..live.len())
                    .filter(|&i| {
                        grant[i] >= 1
                            && grant[i] < jobs[live[i].index].per_node_request
                            && live[i].nodes.iter().all(|&n| free[n] >= 1)
                    })
                    .min_by_key(|&i| (grant[i], i));
                let Some(i) = candidate else { break };
                for &n in &live[i].nodes {
                    free[n] -= 1;
                }
                grant[i] += 1;
            }
            for (i, l) in live.iter_mut().enumerate() {
                l.grants = vec![grant[i]; l.nodes.len()];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::Amdahl;

    fn job(span: usize, request: usize, iters: u32, seq: f64) -> ClusterJob {
        ClusterJob {
            span,
            per_node_request: request,
            iterations: iters,
            seq_iter_time: SimDuration::from_secs(seq),
            inner: Arc::new(Amdahl::new(0.02)),
            pinned: None,
        }
    }

    fn pinned(mut j: ClusterJob, nodes: &[usize]) -> ClusterJob {
        j.pinned = Some(nodes.to_vec());
        j
    }

    /// A mix that creates asymmetric residency: one 2-node job plus one
    /// 1-node job — the shared node splits, the private node does not.
    fn skewed_mix() -> Vec<ClusterJob> {
        vec![job(2, 8, 40, 8.0), job(1, 8, 40, 4.0)]
    }

    #[test]
    fn cooperative_mode_never_wastes() {
        let spec = ClusterSpec::new(2, 8);
        let r = run_cluster(spec, &skewed_mix(), Coordination::Cooperative);
        assert_eq!(r.wasted_cpu_seconds, 0.0);
        assert_eq!(r.exec_secs.len(), 2);
    }

    #[test]
    fn independent_mode_wastes_on_skewed_residency() {
        let spec = ClusterSpec::new(2, 8);
        let r = run_cluster(spec, &skewed_mix(), Coordination::Independent);
        // The spanning job gets 8 on its private node but only 4 on the
        // shared one: 4 wasted processors while both run.
        assert!(
            r.wasted_cpu_seconds > 1.0,
            "waste: {}",
            r.wasted_cpu_seconds
        );
    }

    #[test]
    fn cooperation_helps_or_matches_makespan() {
        let spec = ClusterSpec::new(4, 8);
        let jobs = vec![
            job(4, 8, 30, 16.0),
            job(2, 8, 30, 8.0),
            job(1, 8, 30, 4.0),
            job(1, 8, 30, 4.0),
        ];
        let ind = run_cluster(spec, &jobs, Coordination::Independent);
        let coop = run_cluster(spec, &jobs, Coordination::Cooperative);
        assert!(
            coop.makespan_secs <= ind.makespan_secs * 1.001,
            "coop {:.1}s vs independent {:.1}s",
            coop.makespan_secs,
            ind.makespan_secs
        );
        assert_eq!(coop.wasted_cpu_seconds, 0.0);
    }

    #[test]
    fn cooperation_recycles_surplus_to_co_residents() {
        // Node 0 hosts three residents, node 1 only two: the spanning job's
        // usable grant is its node-0 share (3). Independently, node 1 hands
        // it 4 (one wasted); cooperatively, that processor goes to node 1's
        // other resident, which therefore finishes strictly earlier.
        let spec = ClusterSpec::new(2, 8);
        let jobs = vec![
            pinned(job(2, 8, 40, 8.0), &[0, 1]),
            pinned(job(1, 8, 40, 4.0), &[0]),
            pinned(job(1, 8, 40, 4.0), &[0]),
            pinned(job(1, 8, 40, 4.0), &[1]), // the beneficiary
        ];
        let ind = run_cluster(spec, &jobs, Coordination::Independent);
        let coop = run_cluster(spec, &jobs, Coordination::Cooperative);
        assert!(ind.wasted_cpu_seconds > 0.0);
        assert_eq!(coop.wasted_cpu_seconds, 0.0);
        assert!(
            coop.exec_secs[3] < ind.exec_secs[3] * 0.98,
            "beneficiary: coop {:.1}s vs independent {:.1}s",
            coop.exec_secs[3],
            ind.exec_secs[3]
        );
    }

    #[test]
    fn single_node_jobs_are_mode_invariant() {
        // Without spanning jobs there is nothing to coordinate: both modes
        // produce identical results.
        let spec = ClusterSpec::new(2, 8);
        let jobs = vec![job(1, 8, 20, 4.0), job(1, 8, 20, 4.0)];
        let a = run_cluster(spec, &jobs, Coordination::Independent);
        let b = run_cluster(spec, &jobs, Coordination::Cooperative);
        assert!((a.makespan_secs - b.makespan_secs).abs() < 1e-9);
        assert_eq!(a.wasted_cpu_seconds, 0.0);
    }

    #[test]
    fn placement_spreads_load() {
        let spec = ClusterSpec::new(4, 8);
        let jobs = vec![job(1, 4, 10, 2.0), job(1, 4, 10, 2.0), job(1, 4, 10, 2.0)];
        let r = run_cluster(spec, &jobs, Coordination::Cooperative);
        // Three single-node jobs land on three different nodes.
        let mut nodes: Vec<usize> = r.placements.iter().map(|p| p[0]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    #[should_panic(expected = "span out of range")]
    fn oversized_span_is_rejected() {
        let spec = ClusterSpec::new(2, 8);
        let jobs = vec![job(3, 4, 10, 2.0)];
        run_cluster(spec, &jobs, Coordination::Cooperative);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pdpa_apps::Amdahl;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Both modes complete every job; cooperative never wastes and
        /// never loses to independent on makespan (same local policy, plus
        /// coordination).
        #[test]
        fn coordination_dominance(
            spans in proptest::collection::vec(1usize..=3, 1..6),
            seed_work in 2.0f64..20.0,
        ) {
            let spec = ClusterSpec::new(4, 8);
            let jobs: Vec<ClusterJob> = spans
                .iter()
                .enumerate()
                .map(|(i, &span)| ClusterJob {
                    span,
                    per_node_request: 8,
                    iterations: 10,
                    seq_iter_time: SimDuration::from_secs(
                        seed_work * (1.0 + i as f64 * 0.3) * span as f64,
                    ),
                    inner: Arc::new(Amdahl::new(0.05)),
                    pinned: None,
                })
                .collect();
            let ind = run_cluster(spec, &jobs, Coordination::Independent);
            let coop = run_cluster(spec, &jobs, Coordination::Cooperative);
            prop_assert_eq!(coop.wasted_cpu_seconds, 0.0);
            prop_assert!(ind.wasted_cpu_seconds >= 0.0);
            prop_assert!(ind.exec_secs.iter().all(|&t| t > 0.0));
            prop_assert!(coop.exec_secs.iter().all(|&t| t > 0.0));
        }
    }
}
