//! The PDPA multiprogramming-level policy (§4.3).
//!
//! Traditional schedulers either fix the multiprogramming level (causing
//! fragmentation) or leave it uncontrolled (overloading the machine). PDPA
//! coordinates the two scheduling levels instead: "we leave the decision
//! about when to start a new application to the processor scheduling
//! policy, and we leave the selection of which application to start to the
//! queuing system".
//!
//! The decision itself is a pure function, [`ml_allows_start`], driven by a
//! snapshot of the running jobs' states.

use crate::params::PdpaParams;

/// What the admission decision needs to know about the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MlSnapshot {
    /// Jobs currently running.
    pub running: usize,
    /// Processors not allocated to any job.
    pub free_cpus: usize,
    /// True when every running job's allocation is settled (it is `STABLE`,
    /// `DEC`, or already holds its full request).
    pub all_settled: bool,
    /// True when some running job shows bad performance (`DEC`): its
    /// processors are on their way back to the system.
    pub any_bad: bool,
}

/// Decides whether the queuing system may start one more job (§4.3 plus the
/// default multiprogramming level of §5).
///
/// A new job is admitted when a free processor exists for it, and either
///
/// - fewer than `base_ml` jobs are running (the default level), or
/// - coordination is enabled and the allocation of every running job is
///   settled: `STABLE`, at its full request, or showing bad performance
///   (`DEC` — "some applications show bad performance": a shrinking job only
///   *releases* processors, so it never competes with the newcomer).
///
/// Jobs still searching upward (`NO_REF`, `INC`) block admission: the free
/// processors they are waiting for must not be stolen by newcomers — that is
/// precisely the coordination the paper adds over uncontrolled admission.
pub fn ml_allows_start(params: &PdpaParams, snap: &MlSnapshot) -> bool {
    if snap.free_cpus == 0 {
        // Run-to-completion requires at least one processor for the
        // newcomer; nothing can start on a full machine.
        return false;
    }
    if snap.running < params.base_ml {
        return true;
    }
    if !params.coordinate_ml {
        return false;
    }
    // Above the default level, a newcomer must find at least `step` free
    // processors: starting a parallel application on a one-processor scrap
    // only adds churn, and the first allocation doubles as the search's
    // starting point.
    snap.all_settled && snap.free_cpus >= params.step
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(running: usize, free: usize, all_settled: bool, any_bad: bool) -> MlSnapshot {
        MlSnapshot {
            running,
            free_cpus: free,
            all_settled,
            any_bad,
        }
    }

    #[test]
    fn full_machine_admits_nobody() {
        let p = PdpaParams::default();
        assert!(!ml_allows_start(&p, &snap(1, 0, true, false)));
    }

    #[test]
    fn below_base_ml_admits_freely() {
        let p = PdpaParams::default(); // base_ml 4
        assert!(ml_allows_start(&p, &snap(0, 60, true, false)));
        assert!(ml_allows_start(&p, &snap(3, 1, false, false)));
    }

    #[test]
    fn above_base_ml_requires_stability() {
        let p = PdpaParams::default();
        assert!(!ml_allows_start(&p, &snap(4, 10, false, false)));
        assert!(ml_allows_start(&p, &snap(4, 10, true, false)));
    }

    #[test]
    fn bad_performance_alone_does_not_bypass_searchers() {
        // A DEC job marks `any_bad`, but another job still searching upward
        // (`all_settled` false) keeps the door closed: the searcher gets
        // first claim on freed processors.
        let p = PdpaParams::default();
        assert!(!ml_allows_start(&p, &snap(6, 4, false, true)));
    }

    #[test]
    fn all_bad_performers_admit() {
        // Every running job is DEC (settled downward): their processors are
        // on the way back, so a newcomer may start.
        let p = PdpaParams::default();
        assert!(ml_allows_start(&p, &snap(6, 4, true, true)));
    }

    #[test]
    fn ml_can_grow_far_beyond_base() {
        // Workload 3 reached a multiprogramming level of 34: admission only
        // depends on stability and free processors, not on a cap.
        let p = PdpaParams::default();
        assert!(ml_allows_start(&p, &snap(33, 4, true, false)));
        // But above the default level a newcomer needs at least `step` free
        // processors to be worth starting.
        assert!(!ml_allows_start(&p, &snap(33, 2, true, false)));
    }

    #[test]
    fn coordination_ablation_restores_fixed_ml() {
        let p = PdpaParams {
            coordinate_ml: false,
            ..PdpaParams::default()
        };
        assert!(!ml_allows_start(&p, &snap(4, 30, true, false)));
        assert!(ml_allows_start(&p, &snap(3, 30, false, false)));
    }
}
