//! Performance-Driven Processor Allocation (PDPA).
//!
//! This crate is the paper's primary contribution: a coordinated scheduling
//! policy that decides both the **processor allocation** and the
//! **multiprogramming level** from application performance measured at
//! runtime (§4).
//!
//! - The *allocation policy* runs a per-application search for the largest
//!   allocation whose efficiency still clears a **target efficiency**,
//!   using the state machine of Fig. 2 (`NO_REF → INC/DEC/STABLE`).
//! - The *multiprogramming-level policy* admits a new job when free
//!   processors exist and every running job's allocation is settled, or
//!   when some job shows bad performance (its processors are about to be
//!   returned).
//!
//! The public entry point is [`Pdpa`], which implements
//! [`pdpa_policies::SchedulingPolicy`] and can be handed to the execution
//! engine exactly like any baseline policy.
//!
//! # Example
//!
//! ```
//! use pdpa_core::{Pdpa, PdpaParams};
//! use pdpa_policies::SchedulingPolicy;
//!
//! let pdpa = Pdpa::new(PdpaParams::default());
//! assert_eq!(pdpa.name(), "PDPA");
//! assert_eq!(pdpa.params().target_eff, 0.7);
//! ```

pub mod mlevel;
pub mod params;
pub mod pdpa;
pub mod state;

pub use mlevel::{ml_allows_start, MlSnapshot};
pub use params::{PdpaParams, TargetMode};
pub use pdpa::Pdpa;
pub use state::{evaluate, AppState, Transition};
