//! The PDPA application state machine (Fig. 2).
//!
//! Each running application is in one of four states reflecting what PDPA
//! knows about its performance at the last evaluation:
//!
//! - [`AppState::NoRef`] — no performance knowledge yet (starting point);
//! - [`AppState::Inc`] — performed *very well* last time; the allocation is
//!   growing and the growth is on probation;
//! - [`AppState::Dec`] — performed *badly* last time; the allocation is
//!   shrinking toward the target efficiency;
//! - [`AppState::Stable`] — holds "the maximum number of processors that
//!   PDPA considers acceptable"; the allocation is maintained.
//!
//! [`evaluate`] is the pure transition function: given the state, the fresh
//! performance sample, the remembered history, and the policy parameters, it
//! produces the next state and the next target allocation. Keeping it pure
//! makes every paragraph of §4.2 directly testable.

use pdpa_perf::{PerfHistory, PerfSample};

use crate::params::PdpaParams;

/// The four PDPA application states (Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppState {
    /// No performance knowledge (§4.2.1).
    NoRef,
    /// Good performance — searching upward (§4.2.2).
    Inc,
    /// Bad performance — searching downward (§4.2.3).
    Dec,
    /// Acceptable performance — allocation maintained (§4.2.4).
    Stable,
}

impl AppState {
    /// True when the application's allocation is *settled*: the search is
    /// not going to claim more processors at the next evaluation. `STABLE`
    /// is settled by definition; `DEC` is settled in the sense that it can
    /// only release processors ("bad performance" is the paper's second
    /// admission trigger).
    pub fn is_settled(self) -> bool {
        matches!(self, AppState::Stable | AppState::Dec)
    }

    /// The paper's name for the state (Fig. 2 labels), used in decision
    /// events and trace exports.
    pub fn name(self) -> &'static str {
        match self {
            AppState::NoRef => "NO_REF",
            AppState::Inc => "INC",
            AppState::Dec => "DEC",
            AppState::Stable => "STABLE",
        }
    }
}

/// The outcome of one PDPA evaluation: the next state and allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// The state the application moves to.
    pub next: AppState,
    /// The allocation the application should hold during the next quantum.
    pub target_alloc: usize,
}

/// Context needed by [`evaluate`] beyond the sample itself.
#[derive(Clone, Copy, Debug)]
pub struct EvalCtx {
    /// Processors the application requested at submission (hard cap).
    pub request: usize,
    /// Free processors available for growth.
    pub free_cpus: usize,
    /// Times the application has already left `STABLE` (ping-pong bound).
    pub stable_exits: u32,
    /// The efficiency the application showed when it settled into `STABLE`
    /// at its current allocation (`None` outside `STABLE` or before the
    /// first settled report). `STABLE` re-enters the upward search only when
    /// the measured efficiency *rises* past this reference by the policy's
    /// `stable_band` — §4.2.4 reacts to performance *changes*, not to the
    /// steady value that made the application settle.
    pub stable_ref_eff: Option<f64>,
}

/// Evaluates one performance report and decides the next state and
/// allocation, per §4.2. `history` must already contain the fresh sample
/// (recorded by the caller), so `history.last_other_than(sample.procs)`
/// yields the *previous* allocation's measurements.
pub fn evaluate(
    state: AppState,
    sample: &PerfSample,
    history: &PerfHistory,
    params: &PdpaParams,
    ctx: EvalCtx,
) -> Transition {
    let p = sample.procs;
    let eff = sample.efficiency;
    match state {
        AppState::NoRef => {
            if eff > params.high_eff {
                grow(p, params, ctx)
            } else if eff < params.target_eff {
                shrink(p, params)
            } else {
                stay(p)
            }
        }
        AppState::Inc => {
            let keeps_growing = eff > params.high_eff
                && speedup_improved(sample, history)
                && relative_speedup_holds(sample, history, params);
            if keeps_growing {
                grow(p, params, ctx)
            } else if eff < params.target_eff {
                // The probationary processors did not pay off: give back the
                // last increment (§4.2.2 — "the application will loose the
                // step additional processors received in the last
                // transition, only if the current efficiency is less than
                // target_eff").
                let revert = history
                    .last_other_than(p)
                    .map(|prev| prev.procs.min(p))
                    .unwrap_or_else(|| p.saturating_sub(params.step).max(1));
                Transition {
                    next: AppState::Stable,
                    target_alloc: revert.max(1),
                }
            } else {
                stay(p)
            }
        }
        AppState::Dec => {
            if eff < params.target_eff && p > 1 {
                shrink(p, params)
            } else if eff < params.target_eff {
                // Already at the one-processor floor; nothing left to take.
                Transition {
                    next: AppState::Dec,
                    target_alloc: 1,
                }
            } else {
                stay(p)
            }
        }
        AppState::Stable => {
            if ctx.stable_exits >= params.max_stable_exits {
                // Frozen: the system bounds STABLE exits to avoid ping-pong.
                return stay(p);
            }
            if eff < params.target_eff {
                shrink(p, params)
            } else if eff > params.high_eff
                && p < ctx.request
                && ctx.free_cpus > 0
                && performance_rose(eff, ctx.stable_ref_eff, params.stable_band)
            {
                grow(p, params, ctx)
            } else {
                stay(p)
            }
        }
    }
}

/// Grow by `min(step, free)` processors, capped by the request. Hitting the
/// request cap means the search is over: the application holds the maximum
/// it may ever get, so it settles.
fn grow(p: usize, params: &PdpaParams, ctx: EvalCtx) -> Transition {
    if p >= ctx.request {
        return Transition {
            next: AppState::Stable,
            target_alloc: ctx.request,
        };
    }
    let add = params.step.min(ctx.free_cpus);
    if add == 0 {
        // Nothing free right now; keep probing from the same allocation.
        return Transition {
            next: AppState::Inc,
            target_alloc: p,
        };
    }
    Transition {
        next: AppState::Inc,
        target_alloc: (p + add).min(ctx.request),
    }
}

/// Shrink by `step`, to a floor of one processor (run-to-completion).
fn shrink(p: usize, params: &PdpaParams) -> Transition {
    Transition {
        next: AppState::Dec,
        target_alloc: p.saturating_sub(params.step).max(1),
    }
}

fn stay(p: usize) -> Transition {
    Transition {
        next: AppState::Stable,
        target_alloc: p.max(1),
    }
}

/// §4.2.4: a settled application re-opens the upward search only when its
/// performance *changed* — the measured efficiency rose past the remembered
/// settling efficiency by the relative `band`. Without a reference (first
/// settled report) the steady value is, by definition, unchanged.
fn performance_rose(eff: f64, reference: Option<f64>, band: f64) -> bool {
    match reference {
        Some(r) => eff > r * (1.0 + band),
        None => false,
    }
}

/// §4.2.2 condition 2: "the current speedup obtained is greater than the
/// previous speedup obtained". Vacuously true when there is no previous
/// allocation on record.
fn speedup_improved(sample: &PerfSample, history: &PerfHistory) -> bool {
    match history.last_other_than(sample.procs) {
        Some(prev) => sample.speedup > prev.speedup,
        None => true,
    }
}

/// §4.2.2 condition 3: the *RelativeSpeedup* — the execution-time ratio
/// between the last allocation and the current one — must exceed the
/// proportional processor growth scaled by `high_eff`. This is what detects
/// "situations where the speedup is superlinear within a range of
/// processors, but later the speedup progression is not maintained".
fn relative_speedup_holds(sample: &PerfSample, history: &PerfHistory, params: &PdpaParams) -> bool {
    if !params.use_relative_speedup {
        return true;
    }
    let Some(prev) = history.last_other_than(sample.procs) else {
        return true;
    };
    if prev.procs == 0 || prev.procs >= sample.procs {
        // Growth comparison is only meaningful against a smaller previous
        // allocation.
        return true;
    }
    // Prefer the execution-time formulation; fall back to the speedup ratio
    // when a time is unavailable (they coincide for iteration-stable codes).
    let relative = if !prev.iter_time.is_zero() && !sample.iter_time.is_zero() {
        prev.iter_time / sample.iter_time
    } else if prev.speedup > 0.0 {
        sample.speedup / prev.speedup
    } else {
        return true;
    };
    let proportional_growth = sample.procs as f64 / prev.procs as f64;
    relative > proportional_growth * params.high_eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_sim::SimDuration;

    fn params() -> PdpaParams {
        PdpaParams::default()
    }

    fn ctx(request: usize, free: usize) -> EvalCtx {
        EvalCtx {
            request,
            free_cpus: free,
            stable_exits: 0,
            stable_ref_eff: None,
        }
    }

    fn stable_ctx(request: usize, free: usize, ref_eff: f64) -> EvalCtx {
        EvalCtx {
            stable_ref_eff: Some(ref_eff),
            ..ctx(request, free)
        }
    }

    fn sample(procs: usize, speedup: f64, iter_secs: f64) -> PerfSample {
        PerfSample {
            procs,
            speedup,
            efficiency: if procs == 0 {
                0.0
            } else {
                speedup / procs as f64
            },
            iter_time: SimDuration::from_secs(iter_secs),
            iteration: 0,
        }
    }

    fn history_of(entries: &[(usize, f64, f64)]) -> PerfHistory {
        let mut h = PerfHistory::default();
        for &(p, s, t) in entries {
            h.record(p, s, SimDuration::from_secs(t));
        }
        h
    }

    // --- NO_REF (§4.2.1) ---

    #[test]
    fn noref_good_performance_goes_inc() {
        let s = sample(8, 7.6, 1.0); // eff 0.95 > 0.9
        let h = history_of(&[(8, 7.6, 1.0)]);
        let t = evaluate(AppState::NoRef, &s, &h, &params(), ctx(30, 20));
        assert_eq!(t.next, AppState::Inc);
        assert_eq!(t.target_alloc, 12, "grows by step");
    }

    #[test]
    fn noref_bad_performance_goes_dec() {
        let s = sample(8, 4.0, 1.0); // eff 0.5 < 0.7
        let h = history_of(&[(8, 4.0, 1.0)]);
        let t = evaluate(AppState::NoRef, &s, &h, &params(), ctx(30, 20));
        assert_eq!(t.next, AppState::Dec);
        assert_eq!(t.target_alloc, 4, "shrinks by step");
    }

    #[test]
    fn noref_acceptable_performance_goes_stable() {
        let s = sample(8, 6.4, 1.0); // eff 0.8 in [0.7, 0.9]
        let h = history_of(&[(8, 6.4, 1.0)]);
        let t = evaluate(AppState::NoRef, &s, &h, &params(), ctx(30, 20));
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 8
            }
        );
    }

    #[test]
    fn growth_is_limited_by_free_processors() {
        let s = sample(8, 7.6, 1.0);
        let h = history_of(&[(8, 7.6, 1.0)]);
        let t = evaluate(AppState::NoRef, &s, &h, &params(), ctx(30, 2));
        assert_eq!(t.target_alloc, 10, "only two processors were free");
        assert_eq!(t.next, AppState::Inc);
    }

    #[test]
    fn growth_with_no_free_processors_waits_in_inc() {
        let s = sample(8, 7.6, 1.0);
        let h = history_of(&[(8, 7.6, 1.0)]);
        let t = evaluate(AppState::NoRef, &s, &h, &params(), ctx(30, 0));
        assert_eq!(
            t,
            Transition {
                next: AppState::Inc,
                target_alloc: 8
            }
        );
    }

    #[test]
    fn growth_at_request_cap_settles() {
        let s = sample(30, 29.0, 1.0); // superlinear-good at its request
        let h = history_of(&[(30, 29.0, 1.0)]);
        let t = evaluate(AppState::NoRef, &s, &h, &params(), ctx(30, 20));
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 30
            }
        );
    }

    // --- INC (§4.2.2) ---

    #[test]
    fn inc_keeps_growing_while_all_conditions_hold() {
        // 8 → 12 procs: time 1.0 → 0.64, speedup 7.6 → 11.8.
        // eff(12) = 0.98 > 0.9; speedup improved; relative speedup
        // 1.0/0.64 = 1.5625 > (12/8)·0.9 = 1.35.
        let h = history_of(&[(8, 7.6, 1.0), (12, 11.8, 0.64)]);
        let s = sample(12, 11.8, 0.64);
        let t = evaluate(AppState::Inc, &s, &h, &params(), ctx(30, 20));
        assert_eq!(
            t,
            Transition {
                next: AppState::Inc,
                target_alloc: 16
            }
        );
    }

    #[test]
    fn inc_stops_when_relative_speedup_fades() {
        // 16 → 20 procs, speedup 15.0 → 16.0 (still eff 0.8 but relative
        // speedup 16/15 = 1.067 < (20/16)·0.9 = 1.125): growth stops, and
        // because eff ≥ target the probationary processors are kept.
        let h = history_of(&[(16, 15.0, 1.0), (20, 16.0, 15.0 / 16.0)]);
        let s = sample(20, 16.0, 15.0 / 16.0);
        let t = evaluate(AppState::Inc, &s, &h, &params(), ctx(30, 20));
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 20
            }
        );
    }

    #[test]
    fn inc_reverts_probation_when_below_target() {
        // Superlinear cliff: 16 → 20 procs and efficiency collapses under
        // target_eff; the step processors go back.
        let h = history_of(&[(16, 15.5, 1.0), (20, 13.0, 15.5 / 13.0)]);
        let s = sample(20, 13.0, 15.5 / 13.0); // eff 0.65 < 0.7
        let t = evaluate(AppState::Inc, &s, &h, &params(), ctx(30, 20));
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 16
            }
        );
    }

    #[test]
    fn inc_requires_speedup_improvement() {
        // More processors but a *lower* speedup: condition 2 fails. The
        // efficiency is still above target, so the allocation is kept.
        let h = history_of(&[(16, 15.5, 1.0), (20, 15.0, 1.03)]);
        let s = sample(20, 15.0, 1.03); // eff 0.75
        let t = evaluate(AppState::Inc, &s, &h, &params(), ctx(30, 20));
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 20
            }
        );
    }

    #[test]
    fn inc_without_relative_speedup_test_is_greedier() {
        // Same fading-scalability scenario as above, with the ablation that
        // disables the relative-speedup test: efficiency alone (0.9+) keeps
        // the growth going. This is the behaviour the test exists to avoid.
        let mut p = params();
        p.use_relative_speedup = false;
        let h = history_of(&[(16, 15.0, 1.0), (20, 18.2, 15.0 / 18.2)]);
        let s = sample(20, 18.2, 15.0 / 18.2); // eff 0.91, marginal gain poor
        let t = evaluate(AppState::Inc, &s, &h, &p, ctx(30, 20));
        assert_eq!(t.next, AppState::Inc);
        assert_eq!(t.target_alloc, 24);
    }

    // --- DEC (§4.2.3) ---

    #[test]
    fn dec_keeps_shrinking_below_target() {
        let h = history_of(&[(26, 9.0, 1.0)]);
        let s = sample(26, 9.0, 1.0); // eff 0.35
        let t = evaluate(AppState::Dec, &s, &h, &params(), ctx(30, 0));
        assert_eq!(
            t,
            Transition {
                next: AppState::Dec,
                target_alloc: 22
            }
        );
    }

    #[test]
    fn dec_settles_when_target_reached() {
        let h = history_of(&[(10, 7.1, 1.0)]);
        let s = sample(10, 7.1, 1.0); // eff 0.71 ≥ 0.7
        let t = evaluate(AppState::Dec, &s, &h, &params(), ctx(30, 0));
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 10
            }
        );
    }

    #[test]
    fn dec_floors_at_one_processor() {
        let h = history_of(&[(1, 0.5, 1.0)]);
        let s = sample(1, 0.5, 1.0); // hopeless, but run-to-completion
        let t = evaluate(AppState::Dec, &s, &h, &params(), ctx(30, 0));
        assert_eq!(
            t,
            Transition {
                next: AppState::Dec,
                target_alloc: 1
            }
        );
    }

    #[test]
    fn dec_shrink_clamps_to_floor() {
        let h = history_of(&[(3, 1.2, 1.0)]);
        let s = sample(3, 1.2, 1.0); // eff 0.4, step 4 would go negative
        let t = evaluate(AppState::Dec, &s, &h, &params(), ctx(30, 0));
        assert_eq!(
            t,
            Transition {
                next: AppState::Dec,
                target_alloc: 1
            }
        );
    }

    // --- STABLE (§4.2.4) ---

    #[test]
    fn stable_holds_with_acceptable_performance() {
        let h = history_of(&[(20, 16.0, 1.0)]);
        let s = sample(20, 16.0, 1.0); // eff 0.8
        let t = evaluate(AppState::Stable, &s, &h, &params(), ctx(30, 10));
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 20
            }
        );
    }

    #[test]
    fn stable_reacts_to_performance_drop() {
        let h = history_of(&[(20, 12.0, 1.0)]);
        let s = sample(20, 12.0, 1.0); // eff 0.6 < 0.7
        let t = evaluate(AppState::Stable, &s, &h, &params(), ctx(30, 10));
        assert_eq!(
            t,
            Transition {
                next: AppState::Dec,
                target_alloc: 16
            }
        );
    }

    #[test]
    fn stable_reacts_to_performance_jump() {
        // The application settled at efficiency 0.8; it now measures 0.95 —
        // a real performance change, so the upward search re-opens.
        let h = history_of(&[(20, 19.0, 1.0)]);
        let s = sample(20, 19.0, 1.0); // eff 0.95 > 0.9
        let t = evaluate(AppState::Stable, &s, &h, &params(), stable_ctx(30, 10, 0.8));
        assert_eq!(
            t,
            Transition {
                next: AppState::Inc,
                target_alloc: 24
            }
        );
    }

    #[test]
    fn stable_does_not_chase_its_own_steady_value() {
        // A superlinear application settles at efficiency 1.1; the same 1.1
        // next report is not a change and must not re-trigger INC.
        let h = history_of(&[(20, 22.0, 1.0)]);
        let s = sample(20, 22.0, 1.0); // eff 1.1 > high_eff
        let t = evaluate(AppState::Stable, &s, &h, &params(), stable_ctx(30, 10, 1.1));
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 20
            }
        );
        // With no reference yet (first settled report) the value is steady
        // by definition.
        let t = evaluate(AppState::Stable, &s, &h, &params(), ctx(30, 10));
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 20
            }
        );
    }

    #[test]
    fn stable_band_requires_a_real_rise() {
        // Reference 0.92, measured 0.95: inside the 10 % band — no change.
        let h = history_of(&[(20, 19.0, 1.0)]);
        let s = sample(20, 19.0, 1.0); // eff 0.95
        let t = evaluate(
            AppState::Stable,
            &s,
            &h,
            &params(),
            stable_ctx(30, 10, 0.92),
        );
        assert_eq!(t.next, AppState::Stable);
    }

    #[test]
    fn stable_exit_budget_freezes_the_state() {
        let h = history_of(&[(20, 12.0, 1.0)]);
        let s = sample(20, 12.0, 1.0); // would normally trigger DEC
        let frozen = EvalCtx {
            request: 30,
            free_cpus: 10,
            stable_exits: params().max_stable_exits,
            stable_ref_eff: None,
        };
        let t = evaluate(AppState::Stable, &s, &h, &params(), frozen);
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 20
            }
        );
    }

    #[test]
    fn stable_does_not_grow_past_request() {
        let h = history_of(&[(30, 29.5, 1.0)]);
        let s = sample(30, 29.5, 1.0); // eff 0.98 but request is 30
        let t = evaluate(AppState::Stable, &s, &h, &params(), ctx(30, 10));
        assert_eq!(
            t,
            Transition {
                next: AppState::Stable,
                target_alloc: 30
            }
        );
    }

    #[test]
    fn settled_states() {
        assert!(AppState::Stable.is_settled());
        assert!(AppState::Dec.is_settled());
        assert!(!AppState::Inc.is_settled());
        assert!(!AppState::NoRef.is_settled());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pdpa_sim::SimDuration;
    use proptest::prelude::*;

    fn arb_state() -> impl Strategy<Value = AppState> {
        prop_oneof![
            Just(AppState::NoRef),
            Just(AppState::Inc),
            Just(AppState::Dec),
            Just(AppState::Stable),
        ]
    }

    proptest! {
        /// The transition function never allocates zero processors and never
        /// exceeds the request or the machine.
        #[test]
        fn alloc_always_in_bounds(
            state in arb_state(),
            procs in 1usize..=60,
            speedup in 0.1f64..70.0,
            request in 1usize..=60,
            free in 0usize..=60,
            exits in 0u32..6,
        ) {
            let s = PerfSample {
                procs,
                speedup,
                efficiency: speedup / procs as f64,
                iter_time: SimDuration::from_secs(1.0),
                iteration: 0,
            };
            let mut h = PerfHistory::default();
            h.record(procs, speedup, SimDuration::from_secs(1.0));
            let params = PdpaParams::default();
            let ctx = EvalCtx { request, free_cpus: free, stable_exits: exits, stable_ref_eff: None };
            let t = evaluate(state, &s, &h, &params, ctx);
            prop_assert!(t.target_alloc >= 1, "run-to-completion floor");
            // Growth may not exceed the request; shrink/stay are bounded by
            // the current allocation.
            prop_assert!(t.target_alloc <= procs.max(request));
            // Any *growth* beyond current is bounded by step and free.
            if t.target_alloc > procs {
                prop_assert!(t.target_alloc - procs <= params.step.min(free));
            }
        }

        /// A bad sample never grows the allocation; a great sample never
        /// shrinks it below the revert point.
        #[test]
        fn monotone_reactions(
            state in arb_state(),
            procs in 2usize..=60,
        ) {
            let bad = PerfSample {
                procs,
                speedup: procs as f64 * 0.3,
                efficiency: 0.3,
                iter_time: SimDuration::from_secs(1.0),
                iteration: 0,
            };
            let mut h = PerfHistory::default();
            h.record(procs, bad.speedup, bad.iter_time);
            let params = PdpaParams::default();
            let ctx = EvalCtx { request: 60, free_cpus: 60, stable_exits: 0, stable_ref_eff: None };
            let t = evaluate(state, &bad, &h, &params, ctx);
            prop_assert!(t.target_alloc <= procs, "bad performance never grows");
        }
    }
}
