//! PDPA policy parameters.

/// How the target efficiency is chosen (§4.1: "The system administrator
/// defines the target efficiency … Alternatively, it is dynamically set
/// depending on the load of the system").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TargetMode {
    /// A fixed target efficiency (`target_eff`), as in the paper's
    /// evaluation.
    Fixed,
    /// Load-adaptive: the effective target interpolates between `min`
    /// (machine idle — be generous with processors) and `max` (jobs queued —
    /// demand high efficiency so more jobs fit), driven by the ratio of
    /// queued to running jobs.
    LoadAdaptive {
        /// Target when the queue is empty.
        min: f64,
        /// Target when the queue is at least as long as the running set.
        max: f64,
    },
}

impl TargetMode {
    /// The effective target given the configured fixed value and the
    /// current queue pressure.
    pub fn effective_target(&self, fixed: f64, queued: usize, running: usize) -> f64 {
        match *self {
            TargetMode::Fixed => fixed,
            TargetMode::LoadAdaptive { min, max } => {
                let pressure = if queued == 0 {
                    0.0
                } else {
                    (queued as f64 / running.max(1) as f64).min(1.0)
                };
                min + (max - min) * pressure
            }
        }
    }
}

/// Tunable parameters of the PDPA policy (§4.2).
///
/// "The PDPA parameters are: 1) the efficiency considered very good
/// (`high_eff`), 2) the target efficiency (`target_eff`), and 3) the number
/// of processors that will be used to increment/decrement the application
/// processor allocation (`step`). These parameters can be modified at
/// runtime."
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PdpaParams {
    /// Efficiency below which an allocation is *bad performance* and must
    /// shrink. The paper's evaluation uses 0.7.
    pub target_eff: f64,
    /// Efficiency above which performance is *very good* and the allocation
    /// may grow. The paper's evaluation uses 0.9.
    pub high_eff: f64,
    /// Processors added or removed per search move.
    pub step: usize,
    /// Default multiprogramming level: up to this many jobs are admitted
    /// without waiting for the stability condition (the paper's PDPA "used
    /// also a default multiprogramming level of four applications", §5).
    pub base_ml: usize,
    /// Maximum number of times an application may leave the `STABLE` state
    /// because its measured performance drifted — the anti-ping-pong bound
    /// of §4.2.4 ("the number of transitions from STABLE to either DEC or
    /// INC may be limited by the system").
    pub max_stable_exits: u32,
    /// Relative efficiency change (vs. the efficiency remembered when the
    /// application settled) required before a `STABLE` application re-enters
    /// the upward search (§4.2.4 reacts "if the application performance
    /// changes" — not to the steady value that made it settle, however
    /// high). Bad performance (below `target_eff`) always reacts.
    pub stable_band: f64,
    /// How the target efficiency is chosen: fixed (the paper's evaluation)
    /// or dynamically from system load (§4.1's alternative).
    pub target_mode: TargetMode,
    /// Apply the relative-speedup test in the `INC` state (§4.2.2).
    /// Disabled only by the ablation benchmarks.
    pub use_relative_speedup: bool,
    /// Coordinate with the queuing system: allow the multiprogramming level
    /// to rise above `base_ml` when running jobs are settled. Disabled only
    /// by the ablation benchmarks (which turns PDPA into a fixed-ML
    /// allocation-only policy).
    pub coordinate_ml: bool,
}

impl Default for PdpaParams {
    /// The paper's evaluation configuration: `target_eff` 0.7, `high_eff`
    /// 0.9, step 4, default multiprogramming level 4.
    fn default() -> Self {
        PdpaParams {
            target_eff: 0.7,
            high_eff: 0.9,
            step: 4,
            base_ml: 4,
            max_stable_exits: 3,
            stable_band: 0.05,
            target_mode: TargetMode::Fixed,
            use_relative_speedup: true,
            coordinate_ml: true,
        }
    }
}

impl PdpaParams {
    /// Validates the parameter combination.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint:
    /// efficiencies must satisfy `0 < target_eff ≤ high_eff ≤ 1.5` (a
    /// high-efficiency bound above 1 is legitimate — superlinear
    /// applications exceed efficiency 1), and `step`/`base_ml` must be
    /// positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.target_eff.is_nan() || self.target_eff <= 0.0 {
            return Err(format!("target_eff must be positive: {}", self.target_eff));
        }
        if self.high_eff < self.target_eff {
            return Err(format!(
                "high_eff ({}) must be at least target_eff ({})",
                self.high_eff, self.target_eff
            ));
        }
        if self.high_eff > 1.5 {
            return Err(format!("high_eff unreasonably large: {}", self.high_eff));
        }
        if self.step == 0 {
            return Err("step must be at least 1".to_owned());
        }
        if self.base_ml == 0 {
            return Err("base_ml must be at least 1".to_owned());
        }
        if !(0.0..1.0).contains(&self.stable_band) {
            return Err(format!("stable_band {} out of [0, 1)", self.stable_band));
        }
        if let TargetMode::LoadAdaptive { min, max } = self.target_mode {
            if !(min > 0.0 && min <= max) {
                return Err(format!("adaptive target range inverted: [{min}, {max}]"));
            }
            if max > self.high_eff {
                return Err(format!(
                    "adaptive target max ({max}) must not exceed high_eff ({})",
                    self.high_eff
                ));
            }
        }
        Ok(())
    }

    /// Builder-style override of the target efficiency.
    pub fn with_target_eff(mut self, v: f64) -> Self {
        self.target_eff = v;
        self
    }

    /// Builder-style override of the high efficiency.
    pub fn with_high_eff(mut self, v: f64) -> Self {
        self.high_eff = v;
        self
    }

    /// Builder-style override of the step.
    pub fn with_step(mut self, v: usize) -> Self {
        self.step = v;
        self
    }

    /// Builder-style override of the default multiprogramming level.
    pub fn with_base_ml(mut self, v: usize) -> Self {
        self.base_ml = v;
        self
    }

    /// Builder-style override of the target mode.
    pub fn with_target_mode(mut self, v: TargetMode) -> Self {
        self.target_mode = v;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = PdpaParams::default();
        assert_eq!(p.target_eff, 0.7);
        assert_eq!(p.high_eff, 0.9);
        assert_eq!(p.step, 4);
        assert_eq!(p.base_ml, 4);
        assert!(p.use_relative_speedup);
        assert!(p.coordinate_ml);
        p.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let p = PdpaParams::default()
            .with_target_eff(0.5)
            .with_high_eff(0.8)
            .with_step(2)
            .with_base_ml(2);
        assert_eq!(
            (p.target_eff, p.high_eff, p.step, p.base_ml),
            (0.5, 0.8, 2, 2)
        );
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_inverted_efficiencies() {
        let p = PdpaParams::default().with_target_eff(0.95);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_step() {
        let p = PdpaParams::default().with_step(0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn superlinear_high_eff_is_allowed() {
        let p = PdpaParams::default().with_high_eff(1.2);
        p.validate().unwrap();
    }

    #[test]
    fn fixed_mode_ignores_load() {
        let m = TargetMode::Fixed;
        assert_eq!(m.effective_target(0.7, 0, 4), 0.7);
        assert_eq!(m.effective_target(0.7, 100, 1), 0.7);
    }

    #[test]
    fn adaptive_target_tracks_queue_pressure() {
        let m = TargetMode::LoadAdaptive {
            min: 0.5,
            max: 0.85,
        };
        // Idle queue: be generous.
        assert_eq!(m.effective_target(0.7, 0, 4), 0.5);
        // Queue as long as the running set: full pressure.
        assert_eq!(m.effective_target(0.7, 4, 4), 0.85);
        // Half pressure interpolates.
        let half = m.effective_target(0.7, 2, 4);
        assert!((half - 0.675).abs() < 1e-12);
        // Pressure saturates at 1.
        assert_eq!(m.effective_target(0.7, 50, 4), 0.85);
    }

    #[test]
    fn adaptive_validation() {
        let bad =
            PdpaParams::default().with_target_mode(TargetMode::LoadAdaptive { min: 0.9, max: 0.5 });
        assert!(bad.validate().is_err());
        let too_high = PdpaParams::default().with_target_mode(TargetMode::LoadAdaptive {
            min: 0.5,
            max: 0.95,
        });
        assert!(too_high.validate().is_err());
        let ok = PdpaParams::default().with_target_mode(TargetMode::LoadAdaptive {
            min: 0.5,
            max: 0.85,
        });
        ok.validate().unwrap();
    }
}
