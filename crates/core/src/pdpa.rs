//! The PDPA scheduling policy.
//!
//! [`Pdpa`] ties the state machine ([`crate::state`]) and the
//! multiprogramming-level policy ([`crate::mlevel`]) into an implementation
//! of [`SchedulingPolicy`] that the execution engine can drive.

use std::collections::HashMap;

use pdpa_perf::{PerfHistory, PerfSample};
use pdpa_policies::{Decisions, PolicyCtx, SchedulingPolicy};
use pdpa_sim::JobId;

use pdpa_sim::SimDuration;

use crate::mlevel::{ml_allows_start, MlSnapshot};
use crate::params::PdpaParams;
use crate::state::{evaluate, AppState, EvalCtx};

/// Exponentially smoothed measurements at one allocation.
///
/// PDPA's robustness to measurement noise — the property the paper contrasts
/// with Equal_efficiency's thrashing — comes from not acting on single noisy
/// samples: successive reports at the same allocation are blended before the
/// state machine sees them, and the initial (`NO_REF`) classification waits
/// for a second confirming sample.
#[derive(Clone, Copy, Debug)]
struct Smoothed {
    procs: usize,
    efficiency: f64,
    speedup: f64,
    iter_secs: f64,
    samples: u32,
}

impl Smoothed {
    const ALPHA: f64 = 0.5;

    fn from_sample(sample: &PerfSample) -> Self {
        Smoothed {
            procs: sample.procs,
            efficiency: sample.efficiency,
            speedup: sample.speedup,
            iter_secs: sample.iter_time.as_secs(),
            samples: 1,
        }
    }

    fn blend(&mut self, sample: &PerfSample) {
        let a = Self::ALPHA;
        self.efficiency = (1.0 - a) * self.efficiency + a * sample.efficiency;
        self.speedup = (1.0 - a) * self.speedup + a * sample.speedup;
        self.iter_secs = (1.0 - a) * self.iter_secs + a * sample.iter_time.as_secs();
        self.samples += 1;
    }

    fn as_sample(&self, iteration: u32) -> PerfSample {
        PerfSample {
            procs: self.procs,
            speedup: self.speedup,
            efficiency: self.efficiency,
            iter_time: SimDuration::from_secs(self.iter_secs),
            iteration,
        }
    }
}

/// Per-job bookkeeping.
#[derive(Clone, Debug)]
struct JobRecord {
    state: AppState,
    history: PerfHistory,
    stable_exits: u32,
    /// Efficiency remembered when the job settled into `STABLE` (cleared on
    /// leaving the state or on a runtime parameter change).
    stable_ref_eff: Option<f64>,
    /// Smoothed measurements at the job's current allocation.
    smooth: Option<Smoothed>,
}

impl JobRecord {
    fn new() -> Self {
        JobRecord {
            state: AppState::NoRef,
            history: PerfHistory::default(),
            stable_exits: 0,
            stable_ref_eff: None,
            smooth: None,
        }
    }
}

/// The Performance-Driven Processor Allocation policy.
#[derive(Clone, Debug)]
pub struct Pdpa {
    params: PdpaParams,
    jobs: HashMap<JobId, JobRecord>,
}

impl Pdpa {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`PdpaParams::validate`].
    pub fn new(params: PdpaParams) -> Self {
        params.validate().expect("invalid PDPA parameters");
        Pdpa {
            params,
            jobs: HashMap::new(),
        }
    }

    /// The paper's evaluation configuration (`target_eff` 0.7, `high_eff`
    /// 0.9, step 4, default multiprogramming level 4).
    pub fn paper_default() -> Self {
        Self::new(PdpaParams::default())
    }

    /// The parameters in use.
    pub fn params(&self) -> &PdpaParams {
        &self.params
    }

    /// Replaces the parameters at runtime (§4.2: "these parameters can be
    /// modified at runtime"). Applications re-evaluate against the new
    /// values at their next performance report; `STABLE` jobs may move to
    /// `INC` or `DEC` accordingly.
    ///
    /// # Panics
    ///
    /// Panics if the new parameters fail validation.
    pub fn set_params(&mut self, params: PdpaParams) {
        params.validate().expect("invalid PDPA parameters");
        self.params = params;
        // A parameter change re-opens every frozen STABLE state and resets
        // the settled-performance references.
        for rec in self.jobs.values_mut() {
            rec.stable_exits = 0;
            rec.stable_ref_eff = None;
        }
    }

    /// The PDPA state of a running job, if known.
    pub fn job_state(&self, job: JobId) -> Option<AppState> {
        self.jobs.get(&job).map(|r| r.state)
    }

    /// True when a job's allocation is settled (used by the admission
    /// snapshot): the job is `STABLE`, `DEC`, or already holds its full
    /// request.
    fn is_settled(&self, view_alloc: usize, view_request: usize, state: AppState) -> bool {
        state.is_settled() || view_alloc >= view_request
    }

    /// Builds the admission snapshot from the policy context.
    fn snapshot(&self, ctx: &PolicyCtx) -> MlSnapshot {
        let mut all_settled = true;
        let mut any_bad = false;
        for view in ctx.jobs {
            let state = self
                .jobs
                .get(&view.id)
                .map(|r| r.state)
                .unwrap_or(AppState::NoRef);
            if !self.is_settled(view.allocated, view.request, state) {
                all_settled = false;
            }
            if state == AppState::Dec {
                any_bad = true;
            }
        }
        MlSnapshot {
            running: ctx.running(),
            free_cpus: ctx.free_cpus,
            all_settled,
            any_bad,
        }
    }
}

impl SchedulingPolicy for Pdpa {
    fn name(&self) -> &'static str {
        "PDPA"
    }

    fn on_job_arrival(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        self.jobs.insert(job, JobRecord::new());
        let Some(view) = ctx.job(job) else {
            return Decisions::none();
        };
        // §4.2.1: "PDPA initially allocates the minimum between the number
        // of processors requested and the number of free processors". With
        // zero free processors the job gets nothing and waits: allocating a
        // floor of one would overcommit a full machine.
        let initial = view.request.min(ctx.free_cpus);
        if initial == 0 {
            return Decisions::none();
        }
        Decisions::one(job, initial)
    }

    fn on_job_completion(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        self.jobs.remove(&job);
        // Freed processors flow to INC jobs at their next report and to the
        // queuing system through `may_start_new_job`; PDPA does not force a
        // global reallocation here (allocations change only on state
        // transitions, §4.2). The exception is stalled jobs — admitted when
        // the machine was full (or cut to zero by a CPU failure), they
        // produce no reports and would otherwise wait forever.
        let mut free = ctx.free_cpus;
        let mut d = Decisions::none();
        for view in ctx.jobs.iter().filter(|v| v.allocated == 0) {
            if free == 0 {
                break;
            }
            let grant = view.request.min(free);
            d.set(view.id, grant);
            free -= grant;
        }
        d
    }

    fn on_performance_report(
        &mut self,
        ctx: &PolicyCtx,
        job: JobId,
        sample: PerfSample,
    ) -> Decisions {
        let Some(view) = ctx.job(job) else {
            return Decisions::none();
        };
        let Some(rec) = self.jobs.get_mut(&job) else {
            return Decisions::none();
        };
        // A report for an allocation the job no longer holds is stale — the
        // iteration started before the last reallocation. Deciding on it
        // would double-apply a transition.
        if sample.procs != view.allocated {
            return Decisions::none();
        }
        // Blend into the smoothed measurement at this allocation (reset on
        // allocation change).
        let smoothed = match rec.smooth.as_mut() {
            Some(s) if s.procs == sample.procs => {
                s.blend(&sample);
                *s
            }
            _ => {
                let s = Smoothed::from_sample(&sample);
                rec.smooth = Some(s);
                s
            }
        };
        // The one-shot NO_REF classification decides the job's whole search
        // direction; wait for a confirming second sample before taking it.
        if rec.state == AppState::NoRef && smoothed.samples < 2 {
            return Decisions::none();
        }
        let sample = smoothed.as_sample(sample.iteration);
        rec.history
            .record(sample.procs, sample.speedup, sample.iter_time);
        let eval_ctx = EvalCtx {
            request: view.request,
            free_cpus: ctx.free_cpus,
            stable_exits: rec.stable_exits,
            stable_ref_eff: rec.stable_ref_eff,
        };
        // §4.1: the target efficiency may be set dynamically from the load
        // of the system (queue pressure); the evaluation uses the effective
        // value.
        let mut params = self.params;
        params.target_eff = self.params.target_mode.effective_target(
            self.params.target_eff,
            ctx.queued_jobs,
            ctx.running(),
        );
        let t = evaluate(rec.state, &sample, &rec.history, &params, eval_ctx);
        if rec.state == AppState::Stable && t.next != AppState::Stable {
            rec.stable_exits += 1;
        }
        // Maintain the settled-performance reference: the first report that
        // confirms STABLE at the held allocation pins it; leaving STABLE
        // clears it.
        if t.next == AppState::Stable {
            if t.target_alloc == view.allocated && rec.stable_ref_eff.is_none() {
                rec.stable_ref_eff = Some(sample.efficiency);
            }
        } else {
            rec.stable_ref_eff = None;
        }
        let prev_state = rec.state;
        rec.state = t.next;
        let mut d = Decisions::none();
        if t.next != prev_state {
            d.note_transition(job, prev_state.name(), t.next.name());
        }
        if t.target_alloc != view.allocated {
            d.set(job, t.target_alloc);
        }
        d
    }

    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool {
        ml_allows_start(&self.params, &self.snapshot(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_policies::JobView;
    use pdpa_sim::{SimDuration, SimTime};

    fn view(id: u32, request: usize, allocated: usize) -> JobView {
        JobView {
            id: JobId(id),
            request,
            allocated,
            last_sample: None,
            remaining_secs: 100.0,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView], free: usize) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::ZERO,
            total_cpus: 60,
            free_cpus: free,
            jobs,
            queued_jobs: 0,
            next_request: None,
        }
    }

    fn sample(procs: usize, speedup: f64) -> PerfSample {
        PerfSample {
            procs,
            speedup,
            efficiency: speedup / procs as f64,
            iter_time: SimDuration::from_secs(10.0 / speedup),
            iteration: 0,
        }
    }

    #[test]
    fn arrival_allocates_min_of_request_and_free() {
        let mut p = Pdpa::paper_default();
        let jobs = vec![view(0, 30, 0)];
        let d = p.on_job_arrival(&ctx(&jobs, 60), JobId(0));
        assert_eq!(d.allocations, vec![(JobId(0), 30)]);
        assert_eq!(p.job_state(JobId(0)), Some(AppState::NoRef));

        let jobs2 = vec![view(0, 30, 30), view(1, 30, 0)];
        let d = p.on_job_arrival(&ctx(&jobs2, 12), JobId(1));
        assert_eq!(d.allocations, vec![(JobId(1), 12)]);
    }

    #[test]
    fn arrival_with_no_free_cpus_defers_instead_of_overcommitting() {
        // Regression: the old `.max(1)` floor handed out a processor that
        // did not exist whenever the machine was full.
        let mut p = Pdpa::paper_default();
        let jobs = vec![view(0, 30, 30), view(1, 30, 30), view(2, 8, 0)];
        let d = p.on_job_arrival(&ctx(&jobs, 0), JobId(2));
        assert!(d.allocations.is_empty(), "nothing free, nothing granted");
        // The job is tracked and picked up as soon as a completion frees
        // processors.
        assert_eq!(p.job_state(JobId(2)), Some(AppState::NoRef));
        let after = vec![view(1, 30, 30), view(2, 8, 0)];
        let d = p.on_job_completion(&ctx(&after, 30), JobId(0));
        assert_eq!(d.allocations, vec![(JobId(2), 8)]);
    }

    #[test]
    fn search_walks_down_to_the_efficiency_knee() {
        // A hydro2d-like run: the job starts at 30 with terrible efficiency
        // and must walk down by `step` per report until efficiency ≥ 0.7.
        let mut p = Pdpa::paper_default();
        let mut alloc = 30usize;
        let jobs = vec![view(0, 30, alloc)];
        p.on_job_arrival(&ctx(&jobs, 30), JobId(0));
        // The NO_REF classification waits for a confirming second sample.
        let first = p.on_performance_report(&ctx(&jobs, 30), JobId(0), sample(30, 10.0));
        assert!(first.is_empty(), "one sample is not enough to classify");
        // True speedups from the hydro2d shape.
        let truth = |procs: usize| -> f64 {
            match procs {
                30 => 10.0,
                26 => 9.9,
                22 => 9.7,
                18 => 9.3,
                14 => 8.5,
                10 => 7.1,
                _ => panic!("unexpected allocation {procs}"),
            }
        };
        for _ in 0..10 {
            let jobs = vec![view(0, 30, alloc)];
            let d = p.on_performance_report(&ctx(&jobs, 30), JobId(0), sample(alloc, truth(alloc)));
            match d.allocations.first() {
                Some(&(_, next)) => alloc = next,
                None => break,
            }
        }
        assert_eq!(alloc, 10, "settles at the 0.7-efficiency knee");
        assert_eq!(p.job_state(JobId(0)), Some(AppState::Stable));
    }

    #[test]
    fn search_grows_while_scalable() {
        // A bt-like run starting small: grows by step while conditions hold.
        let mut p = Pdpa::paper_default();
        let jobs = vec![view(0, 30, 8)];
        p.on_job_arrival(&ctx(&jobs, 8), JobId(0));
        assert!(p
            .on_performance_report(&ctx(&jobs, 20), JobId(0), sample(8, 7.8))
            .is_empty());
        let d = p.on_performance_report(&ctx(&jobs, 20), JobId(0), sample(8, 7.8));
        assert_eq!(d.allocations, vec![(JobId(0), 12)]);
        assert_eq!(p.job_state(JobId(0)), Some(AppState::Inc));
        let jobs = vec![view(0, 30, 12)];
        let d = p.on_performance_report(&ctx(&jobs, 16), JobId(0), sample(12, 11.6));
        assert_eq!(d.allocations, vec![(JobId(0), 16)]);
    }

    #[test]
    fn stale_reports_are_ignored() {
        let mut p = Pdpa::paper_default();
        let jobs = vec![view(0, 30, 12)];
        p.on_job_arrival(&ctx(&jobs, 20), JobId(0));
        // The job holds 12 processors but the report is for an 8-processor
        // iteration that finished before the reallocation.
        let d = p.on_performance_report(&ctx(&jobs, 20), JobId(0), sample(8, 7.8));
        assert!(d.is_empty());
        assert_eq!(p.job_state(JobId(0)), Some(AppState::NoRef));
    }

    #[test]
    fn completion_forgets_the_job() {
        let mut p = Pdpa::paper_default();
        let jobs = vec![view(0, 30, 30)];
        p.on_job_arrival(&ctx(&jobs, 30), JobId(0));
        p.on_job_completion(&ctx(&[], 60), JobId(0));
        assert_eq!(p.job_state(JobId(0)), None);
    }

    #[test]
    fn admission_below_base_ml_is_free() {
        let p = Pdpa::paper_default();
        let jobs = vec![view(0, 30, 30)];
        assert!(p.may_start_new_job(&ctx(&jobs, 30)));
    }

    #[test]
    fn admission_above_base_ml_waits_for_stability() {
        let mut p = Pdpa::paper_default();
        let jobs: Vec<JobView> = (0..4).map(|i| view(i, 30, 10)).collect();
        for i in 0..4 {
            p.on_job_arrival(&ctx(&jobs, 20), JobId(i));
        }
        // All four NO_REF: not settled, no admission.
        assert!(!p.may_start_new_job(&ctx(&jobs, 20)));
        // Drive every job to STABLE (efficiency 0.8 at its allocation);
        // the classification takes two confirming samples.
        for i in 0..4 {
            p.on_performance_report(&ctx(&jobs, 20), JobId(i), sample(10, 8.0));
            p.on_performance_report(&ctx(&jobs, 20), JobId(i), sample(10, 8.0));
        }
        assert!(p.may_start_new_job(&ctx(&jobs, 20)));
    }

    #[test]
    fn admission_with_bad_performers() {
        let mut p = Pdpa::paper_default();
        let jobs: Vec<JobView> = (0..4).map(|i| view(i, 30, 10)).collect();
        for i in 0..4 {
            p.on_job_arrival(&ctx(&jobs, 20), JobId(i));
        }
        // One job reports terrible efficiency → DEC; the others stay NO_REF,
        // so the system is not settled and nobody is admitted yet.
        p.on_performance_report(&ctx(&jobs, 20), JobId(0), sample(10, 2.0));
        p.on_performance_report(&ctx(&jobs, 20), JobId(0), sample(10, 2.0));
        assert_eq!(p.job_state(JobId(0)), Some(AppState::Dec));
        assert!(
            !p.may_start_new_job(&ctx(&jobs, 20)),
            "NO_REF searchers still block admission"
        );
        // Once the rest settle (acceptable efficiency), the DEC job does not
        // block: it only releases processors.
        for i in 1..4 {
            p.on_performance_report(&ctx(&jobs, 20), JobId(i), sample(10, 8.0));
            p.on_performance_report(&ctx(&jobs, 20), JobId(i), sample(10, 8.0));
        }
        assert!(p.may_start_new_job(&ctx(&jobs, 20)));
    }

    #[test]
    fn admission_requires_free_processors() {
        let p = Pdpa::paper_default();
        let jobs = vec![view(0, 30, 30), view(1, 30, 30)];
        assert!(!p.may_start_new_job(&ctx(&jobs, 0)));
    }

    #[test]
    fn at_request_jobs_count_as_settled() {
        let mut p = Pdpa::paper_default();
        let jobs: Vec<JobView> = (0..4).map(|i| view(i, 10, 10)).collect();
        for i in 0..4 {
            p.on_job_arrival(&ctx(&jobs, 20), JobId(i));
        }
        // Still NO_REF, but every job already holds its full request: the
        // allocation cannot move upward, so the system is settled.
        assert!(p.may_start_new_job(&ctx(&jobs, 20)));
    }

    #[test]
    fn runtime_parameter_change_reopens_frozen_jobs() {
        let mut p = Pdpa::paper_default();
        let jobs = vec![view(0, 30, 10)];
        p.on_job_arrival(&ctx(&jobs, 20), JobId(0));
        p.on_performance_report(&ctx(&jobs, 20), JobId(0), sample(10, 8.0));
        p.on_performance_report(&ctx(&jobs, 20), JobId(0), sample(10, 8.0));
        assert_eq!(p.job_state(JobId(0)), Some(AppState::Stable));
        // Raise the bar: 0.8 efficiency is no longer acceptable.
        let stricter = PdpaParams::default()
            .with_target_eff(0.85)
            .with_high_eff(0.95);
        p.set_params(stricter);
        let d = p.on_performance_report(&ctx(&jobs, 20), JobId(0), sample(10, 8.0));
        assert_eq!(p.job_state(JobId(0)), Some(AppState::Dec));
        assert_eq!(d.allocations, vec![(JobId(0), 6)]);
    }

    #[test]
    fn paper_name() {
        assert_eq!(Pdpa::paper_default().name(), "PDPA");
    }

    #[test]
    fn adaptive_target_shrinks_only_under_queue_pressure() {
        use crate::params::TargetMode;
        let params = PdpaParams::default().with_target_mode(TargetMode::LoadAdaptive {
            min: 0.5,
            max: 0.85,
        });
        // An application at measured efficiency 0.6: acceptable when the
        // queue is empty (target 0.5), bad once jobs queue up (target 0.85).
        let mut relaxed = Pdpa::new(params);
        let jobs = vec![view(0, 30, 10)];
        relaxed.on_job_arrival(&ctx(&jobs, 20), JobId(0));
        relaxed.on_performance_report(&ctx(&jobs, 20), JobId(0), sample(10, 6.0));
        relaxed.on_performance_report(&ctx(&jobs, 20), JobId(0), sample(10, 6.0));
        assert_eq!(relaxed.job_state(JobId(0)), Some(AppState::Stable));

        let mut pressured = Pdpa::new(params);
        let congested = PolicyCtx {
            queued_jobs: 8,
            ..ctx(&jobs, 20)
        };
        pressured.on_job_arrival(&congested, JobId(0));
        pressured.on_performance_report(&congested, JobId(0), sample(10, 6.0));
        let d = pressured.on_performance_report(&congested, JobId(0), sample(10, 6.0));
        assert_eq!(pressured.job_state(JobId(0)), Some(AppState::Dec));
        assert_eq!(d.allocations, vec![(JobId(0), 6)]);
    }
}
