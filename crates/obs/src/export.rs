//! Text exporters: the metrics JSON document and the Fig.-8-style
//! MPL/allocation time-series CSV.

use crate::collector::ExperimentFailure;
use crate::event::{ObsEvent, TimedEvent};
use crate::metrics::{CounterSnapshot, MetricsSnapshot};
use std::fmt::Write;

/// Schema tag written into [`metrics_json`] documents.
pub const METRICS_SCHEMA: &str = "pdpa-obs-metrics/v1";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn counters_obj(c: &CounterSnapshot, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"runs\": {},\n{indent}  \"events_pushed\": {},\n\
         {indent}  \"events_popped\": {},\n{indent}  \"events_stale_dropped\": {},\n\
         {indent}  \"decisions\": {},\n{indent}  \"memo_hits\": {},\n\
         {indent}  \"memo_misses\": {},\n{indent}  \"memo_hit_rate\": {}\n{indent}}}",
        c.runs,
        c.events_pushed,
        c.events_popped,
        c.events_stale_dropped,
        c.decisions,
        c.memo_hits,
        c.memo_misses,
        fmt_f64(c.memo_hit_rate()),
    )
}

/// Renders a metrics snapshot (plus any recorded experiment failures) as a
/// standalone JSON document. The same object — minus the schema tag — is
/// what the bench trajectory embeds as its `metrics` block.
pub fn metrics_json(snapshot: &MetricsSnapshot, failures: &[ExperimentFailure]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{METRICS_SCHEMA}\",");
    let _ = writeln!(
        out,
        "  \"engine\": {},",
        counters_obj(&snapshot.engine, "  ")
    );
    out.push_str("  \"scopes\": {");
    for (i, (name, c)) in snapshot.scopes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", esc(name), counters_obj(c, "    "));
    }
    if snapshot.scopes.is_empty() {
        out.push_str("},\n");
    } else {
        out.push_str("\n  },\n");
    }
    out.push_str("  \"histograms\": {");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{\n      \"count\": {},\n      \"mean\": {},\n      \
             \"p50\": {},\n      \"p90\": {},\n      \"p99\": {},\n      \"max\": {}\n    }}",
            esc(name),
            h.count,
            fmt_f64(h.mean),
            h.p50,
            h.p90,
            h.p99,
            h.max
        );
    }
    if snapshot.histograms.is_empty() {
        out.push_str("},\n");
    } else {
        out.push_str("\n  },\n");
    }
    out.push_str("  \"failures\": [");
    for (i, f) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"message\": \"{}\"}}",
            esc(&f.name),
            esc(&f.message)
        );
    }
    if failures.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Renders the MPL/allocation history of recorded runs as CSV — the data
/// behind a Fig.-8-style plot. One row per [`ObsEvent::MplChanged`]:
/// `run,sim_secs,running,allocated`.
pub fn mpl_series_csv(runs: &[(String, Vec<TimedEvent>)]) -> String {
    let mut out = String::from("run,sim_secs,running,allocated\n");
    for (key, events) in runs {
        for te in events {
            if let ObsEvent::MplChanged {
                running,
                total_alloc,
            } = te.event
            {
                let _ = writeln!(
                    out,
                    "{},{},{},{}",
                    key,
                    te.at.as_secs(),
                    running,
                    total_alloc
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
    use pdpa_sim::{JobId, SimTime};

    fn snapshot() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.engine.runs = 3;
        s.engine.events_popped = 42;
        s.engine.decisions = 7;
        s.scopes = vec![("fig5".to_string(), s.engine)];
        s.histograms = vec![(
            "decision_ns".to_string(),
            HistogramSnapshot {
                count: 10,
                mean: 1500.0,
                p50: 1536,
                p90: 3072,
                p99: 3072,
                max: 3100,
            },
        )];
        s
    }

    #[test]
    fn metrics_json_has_schema_and_counters() {
        let json = metrics_json(
            &snapshot(),
            &[ExperimentFailure {
                name: "bad".to_string(),
                message: "it \"broke\"".to_string(),
            }],
        );
        assert!(json.contains("\"schema\": \"pdpa-obs-metrics/v1\""));
        assert!(json.contains("\"events_popped\": 42"));
        assert!(json.contains("\"fig5\""));
        assert!(json.contains("\"decision_ns\""));
        assert!(json.contains("it \\\"broke\\\""));
    }

    #[test]
    fn metrics_json_empty_sections() {
        let json = metrics_json(&MetricsSnapshot::default(), &[]);
        assert!(json.contains("\"scopes\": {}"));
        assert!(json.contains("\"histograms\": {}"));
        assert!(json.contains("\"failures\": []"));
    }

    #[test]
    fn mpl_csv_rows() {
        let runs = vec![(
            "fig8/PDPA".to_string(),
            vec![
                TimedEvent {
                    at: SimTime::from_secs(0.0),
                    seq: 0,
                    event: ObsEvent::MplChanged {
                        running: 1,
                        total_alloc: 32,
                    },
                },
                TimedEvent {
                    at: SimTime::from_secs(5.5),
                    seq: 1,
                    event: ObsEvent::JobFinished { job: JobId(0) },
                },
                TimedEvent {
                    at: SimTime::from_secs(5.5),
                    seq: 2,
                    event: ObsEvent::MplChanged {
                        running: 0,
                        total_alloc: 0,
                    },
                },
            ],
        )];
        let csv = mpl_series_csv(&runs);
        assert_eq!(
            csv,
            "run,sim_secs,running,allocated\nfig8/PDPA,0,1,32\nfig8/PDPA,5.5,0,0\n"
        );
    }
}
