//! The decision-event bus: [`Observer`] plus the two standard sinks.

use crate::event::{ObsEvent, TimedEvent};
use pdpa_sim::SimTime;

/// A sink for engine decision events.
///
/// The engine caches [`Observer::is_enabled`] into a local bool at run
/// start and skips both event *construction* and the virtual call when it
/// is false, so a [`NullObserver`] run pays only one branch per publish
/// site.
pub trait Observer {
    /// Whether this observer wants events at all. Checked once per run.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Receives one event at simulated instant `at`. Events arrive in
    /// publication order, which is nondecreasing in `at`.
    fn on_event(&mut self, at: SimTime, event: &ObsEvent);
}

/// Discards everything; `is_enabled()` is `false` so the engine never even
/// builds the events.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn is_enabled(&self) -> bool {
        false
    }

    fn on_event(&mut self, _at: SimTime, _event: &ObsEvent) {}
}

/// Records every event as a [`TimedEvent`] with a per-run monotonic
/// sequence number.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: Vec<TimedEvent>,
    next_seq: u64,
}

impl RecordingObserver {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events recorded so far, in `(sim_time, seq)` order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Consumes the recorder, returning the stream sorted by
    /// `(sim_time, seq)`. Publication order is already nondecreasing in
    /// sim time and `seq` is monotonic, so the stable sort is a no-op
    /// normalization — it exists to make the ordering contract explicit
    /// and deterministic regardless of how the stream was produced.
    pub fn take_events(self) -> Vec<TimedEvent> {
        let mut events = self.events;
        events.sort_by(|a, b| {
            a.at.partial_cmp(&b.at)
                .expect("sim times are finite")
                .then(a.seq.cmp(&b.seq))
        });
        events
    }
}

impl Observer for RecordingObserver {
    fn on_event(&mut self, at: SimTime, event: &ObsEvent) {
        self.events.push(TimedEvent {
            at,
            seq: self.next_seq,
            event: event.clone(),
        });
        self.next_seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsEvent;
    use pdpa_sim::JobId;

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.is_enabled());
    }

    #[test]
    fn recorder_assigns_monotonic_seq_and_sorts() {
        let mut rec = RecordingObserver::new();
        rec.on_event(
            SimTime::from_secs(1.0),
            &ObsEvent::JobSubmitted { job: JobId(0) },
        );
        rec.on_event(
            SimTime::from_secs(1.0),
            &ObsEvent::JobStarted {
                job: JobId(0),
                request: 8,
            },
        );
        rec.on_event(
            SimTime::from_secs(2.0),
            &ObsEvent::JobFinished { job: JobId(0) },
        );
        let events = rec.take_events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
