//! The decision-event bus: [`Observer`] plus the two standard sinks.

use crate::event::{ObsEvent, TimedEvent};
use pdpa_sim::SimTime;

/// A sink for engine decision events.
///
/// The engine caches [`Observer::is_enabled`] into a local bool at run
/// start and skips both event *construction* and the virtual call when it
/// is false, so a [`NullObserver`] run pays only one branch per publish
/// site.
pub trait Observer {
    /// Whether this observer wants events at all. Checked once per run.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Receives one event at simulated instant `at`. Events arrive in
    /// publication order, which is nondecreasing in `at`.
    fn on_event(&mut self, at: SimTime, event: &ObsEvent);
}

/// Discards everything; `is_enabled()` is `false` so the engine never even
/// builds the events.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn is_enabled(&self) -> bool {
        false
    }

    fn on_event(&mut self, _at: SimTime, _event: &ObsEvent) {}
}

/// Records every event as a [`TimedEvent`] with a per-run monotonic
/// sequence number.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: Vec<TimedEvent>,
    next_seq: u64,
    /// Events with seq below this are counted but not stored — the
    /// rebuild window of a restored run.
    first_kept_seq: u64,
}

impl RecordingObserver {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that counts but discards the first `first_seq` events,
    /// recording only from sequence number `first_seq` onward. A restored
    /// run replays its journal to rebuild scheduler state, re-publishing
    /// events the pre-snapshot instance already wrote; this constructor
    /// lets the continuation stream start exactly where the old one
    /// stopped while keeping sequence numbers globally continuous.
    pub fn with_first_seq(first_seq: u64) -> Self {
        RecordingObserver {
            events: Vec::new(),
            next_seq: 0,
            first_kept_seq: first_seq,
        }
    }

    /// The sequence number the next event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Events recorded so far, in `(sim_time, seq)` order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Consumes the recorder, returning the stream sorted by
    /// `(sim_time, seq)`. Publication order is already nondecreasing in
    /// sim time and `seq` is monotonic, so the stable sort is a no-op
    /// normalization — it exists to make the ordering contract explicit
    /// and deterministic regardless of how the stream was produced.
    pub fn take_events(self) -> Vec<TimedEvent> {
        let mut events = self.events;
        events.sort_by(|a, b| {
            a.at.partial_cmp(&b.at)
                .expect("sim times are finite")
                .then(a.seq.cmp(&b.seq))
        });
        events
    }
}

impl Observer for RecordingObserver {
    fn on_event(&mut self, at: SimTime, event: &ObsEvent) {
        if self.next_seq >= self.first_kept_seq {
            self.events.push(TimedEvent {
                at,
                seq: self.next_seq,
                event: event.clone(),
            });
        }
        self.next_seq += 1;
    }
}

/// A set of event kinds, parsed from a comma-separated list of labels from
/// [`ObsEvent::KINDS`]. The substrate of `pdpa replay --obs-filter`: a
/// 250 ms-quantum IRIX run floods the stream with `cpu`/`state` churn, and
/// keeping only the kinds under study makes such traces affordable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KindFilter {
    mask: u32,
}

impl KindFilter {
    /// Parses `"kind1,kind2,..."`. Unknown labels are an error listing the
    /// full vocabulary; an empty spec is an error (an all-excluding filter
    /// is never what the operator meant).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut mask = 0u32;
        for label in spec.split(',').map(str::trim).filter(|l| !l.is_empty()) {
            let idx = ObsEvent::KINDS
                .iter()
                .position(|k| *k == label)
                .ok_or_else(|| {
                    format!(
                        "unknown event kind '{label}' (expected one of: {})",
                        ObsEvent::KINDS.join(", ")
                    )
                })?;
            mask |= 1 << idx;
        }
        if mask == 0 {
            return Err("event-kind filter selects nothing".to_string());
        }
        Ok(KindFilter { mask })
    }

    /// Whether the filter keeps this event.
    pub fn allows(&self, event: &ObsEvent) -> bool {
        self.mask & (1 << event.kind_index()) != 0
    }

    /// The kept kind labels, in [`ObsEvent::KINDS`] order.
    pub fn kinds(&self) -> Vec<&'static str> {
        ObsEvent::KINDS
            .iter()
            .enumerate()
            .filter(|(i, _)| self.mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .collect()
    }
}

/// Forwards only the kinds a [`KindFilter`] keeps to the wrapped observer.
/// Wraps the *outside* of an observer chain, so everything downstream (the
/// recorder, a live tap) sees the same reduced stream.
pub struct FilterObserver<'a> {
    inner: &'a mut dyn Observer,
    filter: KindFilter,
}

impl std::fmt::Debug for FilterObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterObserver")
            .field("filter", &self.filter)
            .finish_non_exhaustive()
    }
}

impl<'a> FilterObserver<'a> {
    /// Wraps `inner`, keeping only kinds allowed by `filter`.
    pub fn new(inner: &'a mut dyn Observer, filter: KindFilter) -> Self {
        FilterObserver { inner, filter }
    }
}

impl Observer for FilterObserver<'_> {
    fn is_enabled(&self) -> bool {
        self.inner.is_enabled()
    }

    fn on_event(&mut self, at: SimTime, event: &ObsEvent) {
        if self.filter.allows(event) {
            self.inner.on_event(at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsEvent;
    use pdpa_sim::JobId;

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.is_enabled());
    }

    #[test]
    fn kind_filter_parses_and_rejects() {
        let f = KindFilter::parse("decision, iter").expect("valid kinds");
        assert_eq!(f.kinds(), vec!["iter", "decision"]);
        assert!(f.allows(&ObsEvent::Decision {
            trigger: crate::event::DecisionTrigger::Report,
            job: JobId(0),
            from_alloc: 4,
            to_alloc: 2,
            transition: None,
        }));
        assert!(!f.allows(&ObsEvent::JobSubmitted { job: JobId(0) }));

        let err = KindFilter::parse("decision,bogus").expect_err("unknown kind");
        assert!(err.contains("bogus"), "got: {err}");
        assert!(err.contains("submit"), "error lists vocabulary: {err}");
        assert!(KindFilter::parse("").is_err(), "empty spec selects nothing");
    }

    #[test]
    fn filter_observer_drops_excluded_kinds() {
        let mut rec = RecordingObserver::new();
        {
            let filter = KindFilter::parse("finish").expect("valid");
            let mut filtered = FilterObserver::new(&mut rec, filter);
            assert!(filtered.is_enabled());
            filtered.on_event(
                SimTime::from_secs(1.0),
                &ObsEvent::JobSubmitted { job: JobId(0) },
            );
            filtered.on_event(
                SimTime::from_secs(2.0),
                &ObsEvent::JobFinished { job: JobId(0) },
            );
        }
        let events = rec.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event.kind(), "finish");
    }

    #[test]
    fn recorder_with_first_seq_counts_but_skips_the_rebuild_window() {
        let mut rec = RecordingObserver::with_first_seq(2);
        for i in 0..4 {
            rec.on_event(
                SimTime::from_secs(f64::from(i)),
                &ObsEvent::JobSubmitted { job: JobId(i) },
            );
        }
        assert_eq!(rec.next_seq(), 4, "suppressed events still advance seq");
        let events = rec.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3],
            "recorded stream continues the global numbering"
        );
    }

    #[test]
    fn recorder_assigns_monotonic_seq_and_sorts() {
        let mut rec = RecordingObserver::new();
        rec.on_event(
            SimTime::from_secs(1.0),
            &ObsEvent::JobSubmitted { job: JobId(0) },
        );
        rec.on_event(
            SimTime::from_secs(1.0),
            &ObsEvent::JobStarted {
                job: JobId(0),
                request: 8,
            },
        );
        rec.on_event(
            SimTime::from_secs(2.0),
            &ObsEvent::JobFinished { job: JobId(0) },
        );
        let events = rec.take_events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
