//! The binary observer stream format (`PDPAOBS1`).
//!
//! A compact, length-prefixed frame encoding of [`TimedEvent`] streams —
//! the wire format the future `pdpad` daemon will speak, and an on-disk
//! alternative to the text lines of [`TimedEvent::to_line`]. Design goals,
//! in order: **exact round trip** (decoding reproduces the event
//! bit-for-bit, floats included — pinned against the text parser by
//! proptest), **streamability** (each frame is self-delimiting, so a
//! reader can process a stream incrementally and a truncated tail is
//! detected, not misparsed), and **compactness** (varints for ids and
//! counters, raw IEEE-754 bits for floats).
//!
//! # Layout
//!
//! A stream is the 8-byte magic [`MAGIC`] (`PDPAOBS1`) followed by zero or
//! more frames. Each frame is:
//!
//! ```text
//! uvarint payload_len | payload
//! ```
//!
//! where the payload is:
//!
//! ```text
//! u8 kind | f64le at | uvarint seq | per-kind fields
//! ```
//!
//! `uvarint` is unsigned LEB128 (7 bits per byte, high bit = continuation).
//! `f64le` is the 8 IEEE-754 bytes, little-endian — never reformatted, so
//! the round trip is exact by construction. Strings are `uvarint len`
//! followed by UTF-8 bytes. Options are a `u8` tag (0 = none, 1 = some)
//! followed by the value. Kind codes follow [`ObsEvent`] declaration order
//! (0 = `submit` … 15 = `failed`); the full field tables live in
//! OBSERVABILITY.md.

use std::io::{self, Write};

use pdpa_sim::{CpuId, JobId, SimTime};

use crate::event::{intern, DecisionTrigger, ObsEvent, TimedEvent};

/// The stream header: `PDPAOBS1` in ASCII. Doubles as the format version —
/// an incompatible revision bumps the trailing digit.
pub const MAGIC: [u8; 8] = *b"PDPAOBS1";

/// True when `bytes` starts with the binary-stream magic. The text format
/// can never collide: its first byte is an ASCII digit of the timestamp.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over one frame payload with diagnostic-bearing reads.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn byte(&mut self, what: &str) -> Result<u8, String> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| format!("frame truncated reading {what}"))?;
        self.pos += 1;
        Ok(b)
    }

    fn uvarint(&mut self, what: &str) -> Result<u64, String> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte(what)?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(format!("varint overflow reading {what}"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn f64(&mut self, what: &str) -> Result<f64, String> {
        if self.buf.len() - self.pos < 8 {
            return Err(format!("frame truncated reading {what}"));
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    fn str(&mut self, what: &str) -> Result<String, String> {
        let len = self.uvarint(what)? as usize;
        if self.buf.len() - self.pos < len {
            return Err(format!("frame truncated reading {what}"));
        }
        let s = std::str::from_utf8(&self.buf[self.pos..self.pos + len])
            .map_err(|_| format!("{what} is not valid UTF-8"))?
            .to_string();
        self.pos += len;
        Ok(s)
    }

    fn usize(&mut self, what: &str) -> Result<usize, String> {
        usize::try_from(self.uvarint(what)?).map_err(|_| format!("{what} does not fit in usize"))
    }

    fn job(&mut self) -> Result<JobId, String> {
        let v = self.uvarint("job")?;
        Ok(JobId(
            u32::try_from(v).map_err(|_| format!("job id {v} out of range"))?,
        ))
    }

    fn cpu(&mut self) -> Result<CpuId, String> {
        let v = self.uvarint("cpu")?;
        Ok(CpuId(
            u16::try_from(v).map_err(|_| format!("cpu id {v} out of range"))?,
        ))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn kind_code(event: &ObsEvent) -> u8 {
    match event {
        ObsEvent::JobSubmitted { .. } => 0,
        ObsEvent::JobDequeued { .. } => 1,
        ObsEvent::JobStarted { .. } => 2,
        ObsEvent::JobFinished { .. } => 3,
        ObsEvent::IterationMeasured { .. } => 4,
        ObsEvent::Decision { .. } => 5,
        ObsEvent::StateChanged { .. } => 6,
        ObsEvent::MplChanged { .. } => 7,
        ObsEvent::ReallocCost { .. } => 8,
        ObsEvent::CpuAssigned { .. } => 9,
        ObsEvent::CpuFailed { .. } => 10,
        ObsEvent::CpuRecovered { .. } => 11,
        ObsEvent::DegradedCapacity { .. } => 12,
        ObsEvent::JobRetried { .. } => 13,
        ObsEvent::JobFailed { .. } => 14,
        ObsEvent::ExperimentFailed { .. } => 15,
    }
}

fn trigger_code(t: DecisionTrigger) -> u8 {
    match t {
        DecisionTrigger::Arrival => 0,
        DecisionTrigger::Report => 1,
        DecisionTrigger::Completion => 2,
        DecisionTrigger::Fault => 3,
    }
}

fn encode_payload(ev: &TimedEvent, out: &mut Vec<u8>) {
    out.push(kind_code(&ev.event));
    put_f64(out, ev.at.as_secs());
    put_uvarint(out, ev.seq);
    match &ev.event {
        ObsEvent::JobSubmitted { job }
        | ObsEvent::JobDequeued { job }
        | ObsEvent::JobFinished { job } => {
            put_uvarint(out, u64::from(job.0));
        }
        ObsEvent::JobStarted { job, request } => {
            put_uvarint(out, u64::from(job.0));
            put_uvarint(out, *request as u64);
        }
        ObsEvent::IterationMeasured {
            job,
            procs,
            iter_secs,
            speedup,
            efficiency,
            estimated,
        } => {
            put_uvarint(out, u64::from(job.0));
            put_uvarint(out, *procs as u64);
            put_f64(out, *iter_secs);
            put_f64(out, *speedup);
            put_f64(out, *efficiency);
            out.push(u8::from(*estimated));
        }
        ObsEvent::Decision {
            trigger,
            job,
            from_alloc,
            to_alloc,
            transition,
        } => {
            out.push(trigger_code(*trigger));
            put_uvarint(out, u64::from(job.0));
            put_uvarint(out, *from_alloc as u64);
            put_uvarint(out, *to_alloc as u64);
            match transition {
                None => out.push(0),
                Some((from, to)) => {
                    out.push(1);
                    put_str(out, from);
                    put_str(out, to);
                }
            }
        }
        ObsEvent::StateChanged { job, from, to } => {
            put_uvarint(out, u64::from(job.0));
            put_str(out, from);
            put_str(out, to);
        }
        ObsEvent::MplChanged {
            running,
            total_alloc,
        } => {
            put_uvarint(out, *running as u64);
            put_uvarint(out, *total_alloc as u64);
        }
        ObsEvent::ReallocCost {
            job,
            penalty_secs,
            gained,
            lost,
        } => {
            put_uvarint(out, u64::from(job.0));
            put_f64(out, *penalty_secs);
            put_uvarint(out, *gained as u64);
            put_uvarint(out, *lost as u64);
        }
        ObsEvent::CpuAssigned { cpu, job } => {
            put_uvarint(out, u64::from(cpu.0));
            match job {
                None => out.push(0),
                Some(j) => {
                    out.push(1);
                    put_uvarint(out, u64::from(j.0));
                }
            }
        }
        ObsEvent::CpuFailed { cpu } | ObsEvent::CpuRecovered { cpu } => {
            put_uvarint(out, u64::from(cpu.0));
        }
        ObsEvent::DegradedCapacity { alive, total } => {
            put_uvarint(out, *alive as u64);
            put_uvarint(out, *total as u64);
        }
        ObsEvent::JobRetried {
            job,
            attempt,
            backoff_secs,
        } => {
            put_uvarint(out, u64::from(job.0));
            put_uvarint(out, u64::from(*attempt));
            put_f64(out, *backoff_secs);
        }
        ObsEvent::JobFailed { job, attempts } => {
            put_uvarint(out, u64::from(job.0));
            put_uvarint(out, u64::from(*attempts));
        }
        ObsEvent::ExperimentFailed { name, message } => {
            put_str(out, name);
            put_str(out, message);
        }
    }
}

fn decode_payload(payload: &[u8]) -> Result<TimedEvent, String> {
    let mut cur = Cur::new(payload);
    let kind = cur.byte("event kind")?;
    let at = cur.f64("timestamp")?;
    let seq = cur.uvarint("seq")?;
    let event = match kind {
        0 => ObsEvent::JobSubmitted { job: cur.job()? },
        1 => ObsEvent::JobDequeued { job: cur.job()? },
        2 => ObsEvent::JobStarted {
            job: cur.job()?,
            request: cur.usize("request")?,
        },
        3 => ObsEvent::JobFinished { job: cur.job()? },
        4 => ObsEvent::IterationMeasured {
            job: cur.job()?,
            procs: cur.usize("procs")?,
            iter_secs: cur.f64("iter_secs")?,
            speedup: cur.f64("speedup")?,
            efficiency: cur.f64("efficiency")?,
            estimated: cur.byte("estimated")? != 0,
        },
        5 => {
            let trigger = match cur.byte("trigger")? {
                0 => DecisionTrigger::Arrival,
                1 => DecisionTrigger::Report,
                2 => DecisionTrigger::Completion,
                3 => DecisionTrigger::Fault,
                other => return Err(format!("unknown trigger code {other}")),
            };
            let job = cur.job()?;
            let from_alloc = cur.usize("from_alloc")?;
            let to_alloc = cur.usize("to_alloc")?;
            let transition = match cur.byte("transition tag")? {
                0 => None,
                1 => {
                    let from = cur.str("transition from")?;
                    let to = cur.str("transition to")?;
                    Some((intern(&from), intern(&to)))
                }
                other => return Err(format!("bad option tag {other} for transition")),
            };
            ObsEvent::Decision {
                trigger,
                job,
                from_alloc,
                to_alloc,
                transition,
            }
        }
        6 => {
            let job = cur.job()?;
            let from = cur.str("from state")?;
            let to = cur.str("to state")?;
            ObsEvent::StateChanged {
                job,
                from: intern(&from),
                to: intern(&to),
            }
        }
        7 => ObsEvent::MplChanged {
            running: cur.usize("running")?,
            total_alloc: cur.usize("total_alloc")?,
        },
        8 => ObsEvent::ReallocCost {
            job: cur.job()?,
            penalty_secs: cur.f64("penalty_secs")?,
            gained: cur.usize("gained")?,
            lost: cur.usize("lost")?,
        },
        9 => {
            let cpu = cur.cpu()?;
            let job = match cur.byte("occupant tag")? {
                0 => None,
                1 => Some(cur.job()?),
                other => return Err(format!("bad option tag {other} for occupant")),
            };
            ObsEvent::CpuAssigned { cpu, job }
        }
        10 => ObsEvent::CpuFailed { cpu: cur.cpu()? },
        11 => ObsEvent::CpuRecovered { cpu: cur.cpu()? },
        12 => ObsEvent::DegradedCapacity {
            alive: cur.usize("alive")?,
            total: cur.usize("total")?,
        },
        13 => ObsEvent::JobRetried {
            job: cur.job()?,
            attempt: cur.uvarint("attempt")? as u32,
            backoff_secs: cur.f64("backoff_secs")?,
        },
        14 => ObsEvent::JobFailed {
            job: cur.job()?,
            attempts: cur.uvarint("attempts")? as u32,
        },
        15 => ObsEvent::ExperimentFailed {
            name: cur.str("name")?,
            message: cur.str("message")?,
        },
        other => return Err(format!("unknown event kind code {other}")),
    };
    if !cur.done() {
        return Err(format!(
            "frame for kind code {kind} has {} trailing bytes",
            payload.len() - cur.pos
        ));
    }
    Ok(TimedEvent {
        at: SimTime::from_secs(at),
        seq,
        event,
    })
}

// ---------------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------------

/// Streaming frame writer: emits the magic on construction, one frame per
/// [`BinaryWriter::write`]. Works over any `io::Write` (file, socket,
/// `Vec<u8>`), which is what makes it reusable as the `pdpad` wire
/// protocol.
pub struct BinaryWriter<W: Write> {
    out: W,
    scratch: Vec<u8>,
    frames: u64,
}

impl<W: Write> BinaryWriter<W> {
    /// Wraps `out` and writes the stream magic.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&MAGIC)?;
        Ok(BinaryWriter {
            out,
            scratch: Vec::with_capacity(64),
            frames: 0,
        })
    }

    /// Appends one event frame.
    pub fn write(&mut self, ev: &TimedEvent) -> io::Result<()> {
        self.scratch.clear();
        encode_payload(ev, &mut self.scratch);
        let mut len = Vec::with_capacity(2);
        put_uvarint(&mut len, self.scratch.len() as u64);
        self.out.write_all(&len)?;
        self.out.write_all(&self.scratch)?;
        self.frames += 1;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Encodes a whole stream into a buffer (magic + frames).
pub fn write_stream(events: &[TimedEvent]) -> Vec<u8> {
    let mut w = BinaryWriter::new(Vec::new()).expect("Vec write cannot fail");
    for ev in events {
        w.write(ev).expect("Vec write cannot fail");
    }
    w.finish().expect("Vec flush cannot fail")
}

/// Decodes a binary stream (must start with [`MAGIC`]).
///
/// # Errors
///
/// Returns a diagnostic naming the frame index, the absolute byte offset of
/// the frame's start within the stream, and the offending field on
/// malformed or truncated input — enough to seek straight to the first bad
/// frame of a corrupt capture.
pub fn read_stream(bytes: &[u8]) -> Result<Vec<TimedEvent>, String> {
    if !is_binary(bytes) {
        return Err("not a PDPAOBS1 binary stream (bad magic)".to_string());
    }
    let mut events = Vec::new();
    let mut rest = &bytes[MAGIC.len()..];
    while !rest.is_empty() {
        // Absolute offset of this frame's length prefix: everything already
        // consumed, magic included.
        let frame_at = bytes.len() - rest.len();
        let mut cur = Cur::new(rest);
        let len = cur
            .uvarint("frame length")
            .map_err(|e| format!("frame {} at byte {frame_at}: {e}", events.len()))?;
        let start = cur.pos;
        let len = usize::try_from(len).map_err(|_| {
            format!(
                "frame {} at byte {frame_at}: length {len} does not fit in memory",
                events.len()
            )
        })?;
        if rest.len() - start < len {
            return Err(format!(
                "frame {} at byte {frame_at}: stream truncated \
                 ({} payload bytes present, {len} declared)",
                events.len(),
                rest.len() - start
            ));
        }
        let ev = decode_payload(&rest[start..start + len])
            .map_err(|e| format!("frame {} at byte {frame_at}: {e}", events.len()))?;
        events.push(ev);
        rest = &rest[start + len..];
    }
    Ok(events)
}

/// Serializes a stream in the text format: one [`TimedEvent::to_line`]
/// line per event, `\n`-terminated. The inverse of the text path of
/// [`parse_stream`].
pub fn write_text_stream(events: &[TimedEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_line());
        out.push('\n');
    }
    out
}

/// Parses an observer stream of either format, auto-detected by magic
/// bytes: `PDPAOBS1` → binary frames, anything else → text lines through
/// [`TimedEvent::parse_line`].
///
/// # Errors
///
/// Returns the underlying codec's diagnostic, prefixed with the line
/// number for text streams.
pub fn parse_stream(bytes: &[u8]) -> Result<Vec<TimedEvent>, String> {
    if is_binary(bytes) {
        return read_stream(bytes);
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|_| "stream is neither PDPAOBS1 binary nor UTF-8 text".to_string())?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        events.push(TimedEvent::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn te(at: f64, seq: u64, event: ObsEvent) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event,
        }
    }

    fn sample_events() -> Vec<TimedEvent> {
        vec![
            te(0.5, 0, ObsEvent::JobSubmitted { job: JobId(3) }),
            te(
                1.0,
                1,
                ObsEvent::Decision {
                    trigger: DecisionTrigger::Report,
                    job: JobId(3),
                    from_alloc: 30,
                    to_alloc: 26,
                    transition: Some(("NO_REF", "DEC")),
                },
            ),
            te(
                1.0,
                2,
                ObsEvent::IterationMeasured {
                    job: JobId(3),
                    procs: 26,
                    iter_secs: 0.123456789,
                    speedup: 11.5,
                    efficiency: 0.442,
                    estimated: true,
                },
            ),
            te(
                2.0,
                3,
                ObsEvent::CpuAssigned {
                    cpu: CpuId(59),
                    job: None,
                },
            ),
            te(
                3.0,
                4,
                ObsEvent::ExperimentFailed {
                    name: "table2".into(),
                    message: "panic: \"quoted\"\nwith newline".into(),
                },
            ),
        ]
    }

    #[test]
    fn round_trips_sample_events() {
        let events = sample_events();
        let bytes = write_stream(&events);
        assert!(is_binary(&bytes));
        assert_eq!(read_stream(&bytes).expect("decodes"), events);
    }

    #[test]
    fn parse_stream_auto_detects_both_formats() {
        let events = sample_events();
        let binary = write_stream(&events);
        let text = write_text_stream(&events);
        assert!(!is_binary(text.as_bytes()));
        assert_eq!(parse_stream(&binary).expect("binary decodes"), events);
        assert_eq!(parse_stream(text.as_bytes()).expect("text parses"), events);
    }

    #[test]
    fn truncated_stream_is_a_diagnostic_not_a_misparse() {
        let bytes = write_stream(&sample_events());
        let cut = &bytes[..bytes.len() - 3];
        let err = read_stream(cut).expect_err("truncation must error");
        assert!(err.contains("truncated"), "got: {err}");
    }

    #[test]
    fn truncation_error_names_frame_index_and_byte_offset() {
        let events = sample_events();
        let bytes = write_stream(&events);
        // Find where frame 2 starts by decoding the first two frames by
        // hand: magic, then per frame a uvarint length plus that many
        // payload bytes.
        let mut offset = MAGIC.len();
        for _ in 0..2 {
            let mut cur = Cur::new(&bytes[offset..]);
            let len = cur.uvarint("len").expect("valid stream") as usize;
            offset += cur.pos + len;
        }
        // Cut in the middle of frame 2's payload: the error must name
        // frame 2 and its absolute starting byte offset.
        let cut = &bytes[..offset + 3];
        let err = read_stream(cut).expect_err("mid-frame truncation must error");
        assert!(
            err.contains(&format!("frame 2 at byte {offset}")),
            "got: {err}"
        );
        assert!(err.contains("truncated"), "got: {err}");
    }

    #[test]
    fn corrupt_frame_error_names_byte_offset() {
        let events = sample_events();
        let mut bytes = write_stream(&events);
        // Frame 0 starts right after the magic; corrupt its kind byte
        // (first payload byte after the 1-byte length prefix).
        let frame_at = MAGIC.len();
        bytes[frame_at + 1] = 0xFF;
        let err = read_stream(&bytes).expect_err("bad kind must error");
        assert!(
            err.contains(&format!("frame 0 at byte {frame_at}")),
            "got: {err}"
        );
    }

    #[test]
    fn trailing_frame_bytes_are_rejected() {
        let ev = te(1.0, 0, ObsEvent::JobFinished { job: JobId(1) });
        let mut payload = Vec::new();
        encode_payload(&ev, &mut payload);
        payload.push(0xAA); // junk past the decoded fields
        let mut bytes = MAGIC.to_vec();
        put_uvarint(&mut bytes, payload.len() as u64);
        bytes.extend_from_slice(&payload);
        let err = read_stream(&bytes).expect_err("trailing bytes must error");
        assert!(err.contains("trailing"), "got: {err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_stream(b"NOTMAGIC").expect_err("bad magic must error");
        assert!(err.contains("magic"), "got: {err}");
    }

    #[test]
    fn varints_span_the_u64_range() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            buf.clear();
            put_uvarint(&mut buf, v);
            let mut cur = Cur::new(&buf);
            assert_eq!(cur.uvarint("v").expect("decodes"), v);
            assert!(cur.done());
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, 0.1 + 0.2] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let mut cur = Cur::new(&buf);
            assert_eq!(cur.f64("v").expect("decodes").to_bits(), v.to_bits());
        }
    }
}
