//! Structured observability for the PDPA reproduction.
//!
//! The engine emits only final `RunResult` aggregates; this crate adds
//! the layer that lets the harness (and a human) *watch the scheduler
//! act* — the paper's evaluation is built on exactly that kind of
//! visibility (Fig. 5 execution views, Fig. 8 multiprogramming-level
//! history, Table 2 migration statistics, and the per-application PDPA
//! state transitions of §4.2).
//!
//! Three pieces:
//!
//! - the **decision-event bus** ([`Observer`], [`ObsEvent`]): the engine
//!   publishes typed events — job arrival/start/finish, per-iteration
//!   measurements, policy decisions with the PDPA state transition behind
//!   them, multiprogramming-level changes, reallocation costs, per-CPU
//!   occupancy. [`NullObserver`] keeps the disabled path free (the engine
//!   caches `is_enabled()` into a bool and skips event construction);
//!   [`RecordingObserver`] captures a deterministic `(sim_time, seq)`
//!   ordered stream.
//! - the **metrics registry** ([`metrics`]): process-wide monotonic
//!   counters and lock-free log₂-bucket streaming histograms (p50/p90/p99)
//!   with no external dependencies, fed by the engine's hot paths.
//! - the **exporters** ([`chrome`], [`export`]): Chrome `trace_event`
//!   JSON viewable in Perfetto / `chrome://tracing`, a Fig.-8-style
//!   MPL/allocation time-series CSV, and a metrics JSON document.
//! - the **stream codecs** ([`binary`]): recorded event streams serialize
//!   to stable text lines ([`TimedEvent::to_line`]) or to the compact
//!   length-prefixed `PDPAOBS1` binary frame format, with magic-byte
//!   auto-detection on read ([`parse_stream`]).
//!
//! `RunResult` above refers to `pdpa_engine::RunResult`; this crate sits
//! below the engine (it depends only on `pdpa-sim`) so every layer —
//! engine, trace, parallel harness, CLI — can publish and subscribe
//! without dependency cycles.

pub mod binary;
pub mod chrome;
pub mod collector;
pub mod event;
pub mod export;
pub mod metrics;
pub mod observer;
pub mod scope;

pub use binary::{
    is_binary, parse_stream, read_stream, write_stream, write_text_stream, BinaryWriter,
};
pub use chrome::chrome_trace;
pub use collector::ExperimentFailure;
pub use event::{DecisionTrigger, ObsEvent, TimedEvent};
pub use export::{metrics_json, mpl_series_csv};
pub use metrics::{Counter, Histogram, MetricsSnapshot, Registry, RunCounters};
pub use observer::{FilterObserver, KindFilter, NullObserver, Observer, RecordingObserver};
