//! Process-wide collection point for recorded event streams and
//! experiment failures.
//!
//! The parallel harness can't thread a `RecordingObserver` back through
//! `fn() -> String` experiment entry points, so when recording is enabled
//! each observed engine run deposits its stream here under a
//! deterministic key (`<scope>/<run key>`), and the harness drains it
//! once at the end. Failures captured by the harness's `catch_unwind`
//! land here too, so a panicking experiment is visible in the metrics
//! export rather than just a nonzero exit.

use crate::event::TimedEvent;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One experiment's panic, preserved for the metrics export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentFailure {
    /// Registry name of the experiment that panicked.
    pub name: String,
    /// The panic payload (or a placeholder when it wasn't a string).
    pub message: String,
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static RUNS: Mutex<Vec<(String, Vec<TimedEvent>)>> = Mutex::new(Vec::new());
static FAILURES: Mutex<Vec<ExperimentFailure>> = Mutex::new(Vec::new());

/// Turns event-stream recording on or off for subsequent engine runs.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether observed runs should record their event streams.
pub fn is_recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Deposits one run's recorded stream under `key`. Keys should be
/// deterministic (derived from experiment/run parameters, not from
/// execution order) so the drained set is identical however the runs were
/// scheduled.
pub fn record_run(key: String, events: Vec<TimedEvent>) {
    RUNS.lock().unwrap().push((key, events));
}

/// Drains all recorded runs, sorted by key — a deterministic set
/// regardless of worker interleaving.
pub fn take_runs() -> Vec<(String, Vec<TimedEvent>)> {
    let mut runs = std::mem::take(&mut *RUNS.lock().unwrap());
    runs.sort_by(|a, b| a.0.cmp(&b.0));
    runs
}

/// Records a panicking experiment.
pub fn record_failure(name: &str, message: String) {
    FAILURES.lock().unwrap().push(ExperimentFailure {
        name: name.to_string(),
        message,
    });
}

/// Drains recorded failures, sorted by experiment name.
pub fn take_failures() -> Vec<ExperimentFailure> {
    let mut fails = std::mem::take(&mut *FAILURES.lock().unwrap());
    fails.sort_by(|a, b| a.name.cmp(&b.name));
    fails
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsEvent;
    use pdpa_sim::{JobId, SimTime};

    #[test]
    fn runs_drain_sorted_and_empty_after_take() {
        let ev = |j| {
            vec![TimedEvent {
                at: SimTime::ZERO,
                seq: 0,
                event: ObsEvent::JobSubmitted { job: JobId(j) },
            }]
        };
        record_run("b".to_string(), ev(1));
        record_run("a".to_string(), ev(0));
        let runs = take_runs();
        assert_eq!(
            runs.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert!(take_runs().is_empty());
    }

    #[test]
    fn failures_drain_sorted() {
        record_failure("z", "boom".to_string());
        record_failure("a", "pow".to_string());
        let fails = take_failures();
        assert_eq!(fails.len(), 2);
        assert_eq!(fails[0].name, "a");
        assert_eq!(fails[1].message, "boom");
        assert!(take_failures().is_empty());
    }
}
