//! Thread-local attribution scope.
//!
//! The parallel harness runs many experiments concurrently on worker
//! threads; the scope label (the experiment's registry name) lets the
//! global metrics [`collector`](crate::collector) and
//! [`Registry`](crate::metrics::Registry) attribute counters and recorded
//! event streams to the experiment that produced them. `pdpa-parallel`
//! propagates the spawning thread's scope into its workers.

use std::cell::RefCell;

thread_local! {
    static SCOPE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The current thread's scope label, if any.
pub fn current() -> Option<String> {
    SCOPE.with(|s| s.borrow().clone())
}

/// Sets the current thread's scope label, returning an RAII guard that
/// restores the previous label on drop.
pub fn enter(label: &str) -> ScopeGuard {
    let prev = SCOPE.with(|s| s.borrow_mut().replace(label.to_string()));
    ScopeGuard { prev }
}

/// Restores the previous scope label when dropped. See [`enter`].
#[must_use = "dropping the guard immediately exits the scope"]
pub struct ScopeGuard {
    prev: Option<String>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        SCOPE.with(|s| *s.borrow_mut() = prev);
    }
}

/// Sets the current thread's scope from an owned label without a guard;
/// used by worker threads that live exactly as long as one scope.
pub fn set(label: Option<String>) {
    SCOPE.with(|s| *s.borrow_mut() = label);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_nests_and_restores() {
        assert_eq!(current(), None);
        {
            let _outer = enter("fig5");
            assert_eq!(current().as_deref(), Some("fig5"));
            {
                let _inner = enter("fig8");
                assert_eq!(current().as_deref(), Some("fig8"));
            }
            assert_eq!(current().as_deref(), Some("fig5"));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn set_overrides_directly() {
        set(Some("worker".to_string()));
        assert_eq!(current().as_deref(), Some("worker"));
        set(None);
        assert_eq!(current(), None);
    }
}
