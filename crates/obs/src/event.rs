//! The typed decision-event taxonomy published by the engine.

use pdpa_sim::{CpuId, JobId, SimTime};

/// Which policy activation produced a decision (§4.1: the policy runs at
/// arrival, completion, and each performance report).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionTrigger {
    /// `on_job_arrival`.
    Arrival,
    /// `on_performance_report`.
    Report,
    /// `on_job_completion`.
    Completion,
    /// `on_capacity_change` — a CPU failed or recovered under the policy.
    Fault,
}

impl DecisionTrigger {
    /// Stable lowercase label used in serialized streams.
    pub fn label(self) -> &'static str {
        match self {
            DecisionTrigger::Arrival => "arrival",
            DecisionTrigger::Report => "report",
            DecisionTrigger::Completion => "completion",
            DecisionTrigger::Fault => "fault",
        }
    }
}

/// One structured event on the observability bus.
#[derive(Clone, Debug, PartialEq)]
pub enum ObsEvent {
    /// A job's submission instant passed: it joined the queue.
    JobSubmitted {
        /// The job.
        job: JobId,
    },
    /// The queuing system handed a waiting job to the engine: it left the
    /// queue and is about to start. The gap from [`ObsEvent::JobSubmitted`]
    /// (or from a retry's backoff expiry) to this instant is the job's
    /// queue wait, measurable from the stream even under faults/retries.
    JobDequeued {
        /// The job.
        job: JobId,
    },
    /// The queuing system started a job (it is running, allocation pending).
    JobStarted {
        /// The job.
        job: JobId,
        /// Processors the job requested at submission.
        request: usize,
    },
    /// A job completed its last iteration.
    JobFinished {
        /// The job.
        job: JobId,
    },
    /// The SelfAnalyzer timed one clean iteration.
    IterationMeasured {
        /// The job.
        job: JobId,
        /// Processors the iteration effectively used.
        procs: usize,
        /// Measured wall-clock seconds of the iteration (noise included).
        iter_secs: f64,
        /// Estimated speedup (0 while the analyzer is still baselining).
        speedup: f64,
        /// Estimated efficiency (0 while the analyzer is still baselining).
        efficiency: f64,
        /// True when the measurement produced a performance estimate that
        /// reached the policy (false during the baseline phase).
        estimated: bool,
    },
    /// The engine applied a policy decision that changed a job's
    /// allocation.
    Decision {
        /// The activation that produced the decision.
        trigger: DecisionTrigger,
        /// The job whose allocation changed.
        job: JobId,
        /// Processors held before the change.
        from_alloc: usize,
        /// Processors held after the change.
        to_alloc: usize,
        /// The PDPA state transition that caused the change, as
        /// `(from_state, to_state)` names, when the policy reported one.
        transition: Option<(&'static str, &'static str)>,
    },
    /// A policy state machine moved without an allocation change (e.g.
    /// `NO_REF → STABLE` at the held allocation).
    StateChanged {
        /// The job whose state moved.
        job: JobId,
        /// State left.
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
    /// The multiprogramming level changed (admission or completion).
    MplChanged {
        /// Running jobs after the change.
        running: usize,
        /// Sum of all running jobs' allocations after the change.
        total_alloc: usize,
    },
    /// A reallocation penalty was charged to a running job ("reallocations
    /// are not free", §5.1).
    ReallocCost {
        /// The job charged.
        job: JobId,
        /// Penalty in simulated seconds of progress debt.
        penalty_secs: f64,
        /// Processors gained by the resize.
        gained: usize,
        /// Processors lost by the resize.
        lost: usize,
    },
    /// A CPU's occupant changed (`None` = idle). This is the stream the
    /// Fig.-5 trace collector is built from.
    CpuAssigned {
        /// The CPU.
        cpu: CpuId,
        /// The new occupant.
        job: Option<JobId>,
    },
    /// A CPU failed (fault injection): it is out of the allocatable set
    /// until a matching [`ObsEvent::CpuRecovered`].
    CpuFailed {
        /// The failed CPU.
        cpu: CpuId,
    },
    /// A failed CPU came back.
    CpuRecovered {
        /// The recovered CPU.
        cpu: CpuId,
    },
    /// The machine's alive capacity changed (published alongside CPU
    /// failures and recoveries so capacity is plottable as a counter).
    DegradedCapacity {
        /// CPUs currently alive.
        alive: usize,
        /// CPUs in the topology.
        total: usize,
    },
    /// A crashed job was scheduled for a retry after its backoff.
    JobRetried {
        /// The job.
        job: JobId,
        /// Which retry this is (1 = first retry).
        attempt: u32,
        /// Backoff charged before the job rejoins the queue.
        backoff_secs: f64,
    },
    /// A crashed job exhausted its retries; its resources were freed and it
    /// will never complete.
    JobFailed {
        /// The job.
        job: JobId,
        /// Crashes the job suffered in total.
        attempts: u32,
    },
    /// A harness experiment panicked; the payload is preserved so failures
    /// are observable in the metrics export, not just a nonzero exit.
    ExperimentFailed {
        /// Registry name of the experiment.
        name: String,
        /// The panic payload.
        message: String,
    },
}

impl ObsEvent {
    /// Every kind label, in declaration (= binary kind-code) order. The
    /// authoritative vocabulary for `--obs-filter` and other by-kind
    /// selections.
    pub const KINDS: [&'static str; 16] = [
        "submit",
        "dequeue",
        "start",
        "finish",
        "iter",
        "decision",
        "state",
        "mpl",
        "cost",
        "cpu",
        "cpu_failed",
        "cpu_recovered",
        "degraded",
        "retry",
        "job_failed",
        "failed",
    ];

    /// This event's index into [`ObsEvent::KINDS`] (its binary kind code).
    pub fn kind_index(&self) -> usize {
        match self {
            ObsEvent::JobSubmitted { .. } => 0,
            ObsEvent::JobDequeued { .. } => 1,
            ObsEvent::JobStarted { .. } => 2,
            ObsEvent::JobFinished { .. } => 3,
            ObsEvent::IterationMeasured { .. } => 4,
            ObsEvent::Decision { .. } => 5,
            ObsEvent::StateChanged { .. } => 6,
            ObsEvent::MplChanged { .. } => 7,
            ObsEvent::ReallocCost { .. } => 8,
            ObsEvent::CpuAssigned { .. } => 9,
            ObsEvent::CpuFailed { .. } => 10,
            ObsEvent::CpuRecovered { .. } => 11,
            ObsEvent::DegradedCapacity { .. } => 12,
            ObsEvent::JobRetried { .. } => 13,
            ObsEvent::JobFailed { .. } => 14,
            ObsEvent::ExperimentFailed { .. } => 15,
        }
    }

    /// Stable kind label (the first token of [`TimedEvent::to_line`]).
    pub fn kind(&self) -> &'static str {
        Self::KINDS[self.kind_index()]
    }
}

/// An [`ObsEvent`] stamped with its simulated instant and a per-run
/// monotonic sequence number.
///
/// The `(at, seq)` pair is a total order: simulated time breaks ties by
/// publication order within the run, which is what makes recorded streams
/// byte-identical between sequential and parallel harness executions.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// Simulated instant of publication.
    pub at: SimTime,
    /// Per-run monotonic sequence number (assigned by the recorder).
    pub seq: u64,
    /// The event.
    pub event: ObsEvent,
}

impl TimedEvent {
    /// Serializes the event as one stable text line. Floats use Rust's
    /// shortest round-trip formatting, so two bit-identical runs produce
    /// byte-identical lines.
    pub fn to_line(&self) -> String {
        let t = self.at.as_secs();
        let seq = self.seq;
        let body = match &self.event {
            ObsEvent::JobSubmitted { job } => format!("job={}", job.0),
            ObsEvent::JobDequeued { job } => format!("job={}", job.0),
            ObsEvent::JobStarted { job, request } => {
                format!("job={} request={}", job.0, request)
            }
            ObsEvent::JobFinished { job } => format!("job={}", job.0),
            ObsEvent::IterationMeasured {
                job,
                procs,
                iter_secs,
                speedup,
                efficiency,
                estimated,
            } => format!(
                "job={} procs={} iter_secs={} speedup={} efficiency={} estimated={}",
                job.0, procs, iter_secs, speedup, efficiency, estimated
            ),
            ObsEvent::Decision {
                trigger,
                job,
                from_alloc,
                to_alloc,
                transition,
            } => {
                let tr = match transition {
                    Some((from, to)) => format!(" transition={from}->{to}"),
                    None => String::new(),
                };
                format!(
                    "trigger={} job={} from={} to={}{}",
                    trigger.label(),
                    job.0,
                    from_alloc,
                    to_alloc,
                    tr
                )
            }
            ObsEvent::StateChanged { job, from, to } => {
                format!("job={} from={} to={}", job.0, from, to)
            }
            ObsEvent::MplChanged {
                running,
                total_alloc,
            } => format!("running={running} total_alloc={total_alloc}"),
            ObsEvent::ReallocCost {
                job,
                penalty_secs,
                gained,
                lost,
            } => format!(
                "job={} penalty_secs={} gained={} lost={}",
                job.0, penalty_secs, gained, lost
            ),
            ObsEvent::CpuAssigned { cpu, job } => match job {
                Some(j) => format!("cpu={} job={}", cpu.0, j.0),
                None => format!("cpu={} job=idle", cpu.0),
            },
            ObsEvent::CpuFailed { cpu } => format!("cpu={}", cpu.0),
            ObsEvent::CpuRecovered { cpu } => format!("cpu={}", cpu.0),
            ObsEvent::DegradedCapacity { alive, total } => {
                format!("alive={alive} total={total}")
            }
            ObsEvent::JobRetried {
                job,
                attempt,
                backoff_secs,
            } => format!(
                "job={} attempt={} backoff_secs={}",
                job.0, attempt, backoff_secs
            ),
            ObsEvent::JobFailed { job, attempts } => {
                format!("job={} attempts={}", job.0, attempts)
            }
            ObsEvent::ExperimentFailed { name, message } => {
                format!("name={name} message={message:?}")
            }
        };
        format!("{t} {seq} {} {body}", self.event.kind())
    }

    /// Parses a line produced by [`TimedEvent::to_line`] back into the
    /// event. Together they form an exact round trip: floats re-parse to
    /// the same bits (shortest formatting), and state names are interned
    /// so `&'static str` fields compare equal.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the offending token on malformed input.
    pub fn parse_line(line: &str) -> Result<TimedEvent, String> {
        parse::line(line)
    }
}

pub(crate) use parse::intern;

/// The [`TimedEvent::to_line`] inverse.
mod parse {
    use super::{DecisionTrigger, ObsEvent, TimedEvent};
    use pdpa_sim::{CpuId, JobId, SimTime};
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};

    /// Returns a `'static` copy of `s`. PDPA state names come from a tiny
    /// fixed vocabulary, so the common case is a table hit; genuinely new
    /// names are leaked once and reused from then on. Shared with the
    /// binary decoder in `crate::binary`, which has the same need.
    pub(crate) fn intern(s: &str) -> &'static str {
        for known in [
            "NO_REF",
            "INC",
            "DEC",
            "STABLE",
            "arrival",
            "report",
            "completion",
            "fault",
        ] {
            if s == known {
                return known;
            }
        }
        static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
        let mut pool = POOL
            .get_or_init(|| Mutex::new(BTreeSet::new()))
            .lock()
            .expect("intern pool poisoned");
        if let Some(existing) = pool.get(s) {
            return existing;
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        pool.insert(leaked);
        leaked
    }

    fn trigger(label: &str) -> Result<DecisionTrigger, String> {
        match label {
            "arrival" => Ok(DecisionTrigger::Arrival),
            "report" => Ok(DecisionTrigger::Report),
            "completion" => Ok(DecisionTrigger::Completion),
            "fault" => Ok(DecisionTrigger::Fault),
            other => Err(format!("unknown decision trigger {other:?}")),
        }
    }

    /// Splits a `key=value` token, checking the key.
    fn kv<'a>(token: Option<&'a str>, key: &str) -> Result<&'a str, String> {
        let token = token.ok_or_else(|| format!("missing field {key}"))?;
        let (k, v) = token
            .split_once('=')
            .ok_or_else(|| format!("malformed field {token:?}"))?;
        if k != key {
            return Err(format!("expected field {key}, got {k}"));
        }
        Ok(v)
    }

    fn num<T: std::str::FromStr>(v: &str, key: &str) -> Result<T, String> {
        v.parse()
            .map_err(|_| format!("field {key} has unparseable value {v:?}"))
    }

    /// Undoes Rust's `{:?}` string escaping (the `ExperimentFailed`
    /// message encoding).
    fn unquote(v: &str) -> Result<String, String> {
        let inner = v
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("message {v:?} is not a quoted string"))?;
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('\'') => out.push('\''),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some('u') => {
                    let hex: String = chars
                        .by_ref()
                        .skip(1) // the `{`
                        .take_while(|&c| c != '}')
                        .collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape in {v:?}"))?;
                    out.push(
                        char::from_u32(code).ok_or_else(|| format!("bad \\u escape in {v:?}"))?,
                    );
                }
                other => return Err(format!("bad escape \\{other:?} in {v:?}")),
            }
        }
        Ok(out)
    }

    fn job(v: &str) -> Result<JobId, String> {
        Ok(JobId(num(v, "job")?))
    }

    fn cpu(v: &str) -> Result<CpuId, String> {
        Ok(CpuId(num(v, "cpu")?))
    }

    pub(super) fn line(line: &str) -> Result<TimedEvent, String> {
        let mut tok = line.split(' ');
        let at: f64 = num(tok.next().ok_or("empty line")?, "time")?;
        if !(at.is_finite() && at >= 0.0) {
            return Err(format!("time {at} out of range"));
        }
        let seq: u64 = num(tok.next().ok_or("line has no sequence number")?, "seq")?;
        let kind = tok.next().ok_or("line has no event kind")?;
        let event = match kind {
            "submit" => ObsEvent::JobSubmitted {
                job: job(kv(tok.next(), "job")?)?,
            },
            "dequeue" => ObsEvent::JobDequeued {
                job: job(kv(tok.next(), "job")?)?,
            },
            "start" => ObsEvent::JobStarted {
                job: job(kv(tok.next(), "job")?)?,
                request: num(kv(tok.next(), "request")?, "request")?,
            },
            "finish" => ObsEvent::JobFinished {
                job: job(kv(tok.next(), "job")?)?,
            },
            "iter" => ObsEvent::IterationMeasured {
                job: job(kv(tok.next(), "job")?)?,
                procs: num(kv(tok.next(), "procs")?, "procs")?,
                iter_secs: num(kv(tok.next(), "iter_secs")?, "iter_secs")?,
                speedup: num(kv(tok.next(), "speedup")?, "speedup")?,
                efficiency: num(kv(tok.next(), "efficiency")?, "efficiency")?,
                estimated: num(kv(tok.next(), "estimated")?, "estimated")?,
            },
            "decision" => {
                let trigger = trigger(kv(tok.next(), "trigger")?)?;
                let job = job(kv(tok.next(), "job")?)?;
                let from_alloc = num(kv(tok.next(), "from")?, "from")?;
                let to_alloc = num(kv(tok.next(), "to")?, "to")?;
                let transition = match tok.next() {
                    None => None,
                    Some(t) => {
                        let v = kv(Some(t), "transition")?;
                        let (from, to) = v
                            .split_once("->")
                            .ok_or_else(|| format!("malformed transition {v:?}"))?;
                        Some((intern(from), intern(to)))
                    }
                };
                ObsEvent::Decision {
                    trigger,
                    job,
                    from_alloc,
                    to_alloc,
                    transition,
                }
            }
            "state" => ObsEvent::StateChanged {
                job: job(kv(tok.next(), "job")?)?,
                from: intern(kv(tok.next(), "from")?),
                to: intern(kv(tok.next(), "to")?),
            },
            "mpl" => ObsEvent::MplChanged {
                running: num(kv(tok.next(), "running")?, "running")?,
                total_alloc: num(kv(tok.next(), "total_alloc")?, "total_alloc")?,
            },
            "cost" => ObsEvent::ReallocCost {
                job: job(kv(tok.next(), "job")?)?,
                penalty_secs: num(kv(tok.next(), "penalty_secs")?, "penalty_secs")?,
                gained: num(kv(tok.next(), "gained")?, "gained")?,
                lost: num(kv(tok.next(), "lost")?, "lost")?,
            },
            "cpu" => {
                let cpu = cpu(kv(tok.next(), "cpu")?)?;
                let occupant = kv(tok.next(), "job")?;
                let job = if occupant == "idle" {
                    None
                } else {
                    Some(job(occupant)?)
                };
                ObsEvent::CpuAssigned { cpu, job }
            }
            "cpu_failed" => ObsEvent::CpuFailed {
                cpu: cpu(kv(tok.next(), "cpu")?)?,
            },
            "cpu_recovered" => ObsEvent::CpuRecovered {
                cpu: cpu(kv(tok.next(), "cpu")?)?,
            },
            "degraded" => ObsEvent::DegradedCapacity {
                alive: num(kv(tok.next(), "alive")?, "alive")?,
                total: num(kv(tok.next(), "total")?, "total")?,
            },
            "retry" => ObsEvent::JobRetried {
                job: job(kv(tok.next(), "job")?)?,
                attempt: num(kv(tok.next(), "attempt")?, "attempt")?,
                backoff_secs: num(kv(tok.next(), "backoff_secs")?, "backoff_secs")?,
            },
            "job_failed" => ObsEvent::JobFailed {
                job: job(kv(tok.next(), "job")?)?,
                attempts: num(kv(tok.next(), "attempts")?, "attempts")?,
            },
            "failed" => {
                // The message is debug-quoted and may contain spaces, so the
                // body is split on the ` message=` marker, not on spaces.
                let body = tok.collect::<Vec<_>>().join(" ");
                let (name_part, message_part) = body
                    .split_once(" message=")
                    .ok_or_else(|| format!("malformed failure body {body:?}"))?;
                // The whole tail was the body; return directly, there can
                // be no trailing tokens left to check.
                return Ok(TimedEvent {
                    at: SimTime::from_secs(at),
                    seq,
                    event: ObsEvent::ExperimentFailed {
                        name: kv(Some(name_part), "name")?.to_string(),
                        message: unquote(message_part)?,
                    },
                });
            }
            other => return Err(format!("unknown event kind {other:?}")),
        };
        if tok.next().is_some() {
            return Err(format!("trailing tokens on {kind} line"));
        }
        Ok(TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn te(at: f64, seq: u64, event: ObsEvent) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event,
        }
    }

    #[test]
    fn lines_are_stable_and_distinct() {
        let a = te(1.5, 0, ObsEvent::JobSubmitted { job: JobId(3) });
        assert_eq!(a.to_line(), "1.5 0 submit job=3");
        let b = te(
            2.0,
            1,
            ObsEvent::Decision {
                trigger: DecisionTrigger::Report,
                job: JobId(3),
                from_alloc: 30,
                to_alloc: 26,
                transition: Some(("NO_REF", "DEC")),
            },
        );
        assert_eq!(
            b.to_line(),
            "2 1 decision trigger=report job=3 from=30 to=26 transition=NO_REF->DEC"
        );
        let c = te(
            2.0,
            2,
            ObsEvent::CpuAssigned {
                cpu: CpuId(5),
                job: None,
            },
        );
        assert_eq!(c.to_line(), "2 2 cpu cpu=5 job=idle");
    }

    #[test]
    fn fault_events_serialize() {
        let fail = te(10.0, 0, ObsEvent::CpuFailed { cpu: CpuId(7) });
        assert_eq!(fail.to_line(), "10 0 cpu_failed cpu=7");
        let recover = te(20.0, 1, ObsEvent::CpuRecovered { cpu: CpuId(7) });
        assert_eq!(recover.to_line(), "20 1 cpu_recovered cpu=7");
        let degraded = te(
            10.0,
            2,
            ObsEvent::DegradedCapacity {
                alive: 59,
                total: 60,
            },
        );
        assert_eq!(degraded.to_line(), "10 2 degraded alive=59 total=60");
        let retried = te(
            30.0,
            3,
            ObsEvent::JobRetried {
                job: JobId(2),
                attempt: 1,
                backoff_secs: 30.0,
            },
        );
        assert_eq!(
            retried.to_line(),
            "30 3 retry job=2 attempt=1 backoff_secs=30"
        );
        let failed = te(
            99.0,
            4,
            ObsEvent::JobFailed {
                job: JobId(2),
                attempts: 3,
            },
        );
        assert_eq!(failed.to_line(), "99 4 job_failed job=2 attempts=3");
        assert_eq!(DecisionTrigger::Fault.label(), "fault");
    }

    #[test]
    fn every_kind_has_a_label() {
        let kinds = [
            ObsEvent::JobSubmitted { job: JobId(0) }.kind(),
            ObsEvent::MplChanged {
                running: 1,
                total_alloc: 2,
            }
            .kind(),
            ObsEvent::ExperimentFailed {
                name: "x".into(),
                message: "y".into(),
            }
            .kind(),
        ];
        assert_eq!(kinds, ["submit", "mpl", "failed"]);
    }
}
