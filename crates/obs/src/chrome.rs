//! Chrome `trace_event` JSON exporter.
//!
//! Produces the JSON-object format (`{"traceEvents": [...]}`) understood
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! *process* per recorded run, one *track* (thread) per job, `B`/`E` span
//! pairs for job lifetimes, instant events for decisions / state changes /
//! reallocation charges, and a counter track for the multiprogramming
//! level. Timestamps are simulated time in microseconds — the viewer's
//! timeline reads directly as simulated seconds.

use crate::event::{ObsEvent, TimedEvent};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Escapes `s` as the inside of a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Simulated seconds → trace microseconds.
fn us(secs: f64) -> f64 {
    secs * 1e6
}

struct EventWriter {
    out: String,
    first: bool,
}

impl EventWriter {
    fn new() -> Self {
        Self {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Appends one raw trace-event object (without braces).
    fn push(&mut self, body: String) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(&body);
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Renders recorded runs as a Chrome trace. `runs` holds `(run key,
/// events)` pairs as drained from the collector; run keys become process
/// names, jobs become threads.
pub fn chrome_trace(runs: &[(String, Vec<TimedEvent>)]) -> String {
    let mut w = EventWriter::new();
    for (pid0, (key, events)) in runs.iter().enumerate() {
        let pid = pid0 + 1;
        w.push(format!(
            "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}",
            esc(key)
        ));
        // Open B spans per tid, so every span gets a matching E even when
        // a run ends with jobs still in flight.
        let mut open: BTreeMap<u64, ()> = BTreeMap::new();
        let mut last_ts = 0.0f64;
        for te in events {
            let ts = us(te.at.as_secs());
            last_ts = last_ts.max(ts);
            match &te.event {
                ObsEvent::JobStarted { job, request } => {
                    let tid = job.0 as u64 + 1;
                    w.push(format!(
                        "\"name\":\"job {}\",\"ph\":\"B\",\"ts\":{ts},\"pid\":{pid},\
                         \"tid\":{tid},\"args\":{{\"request\":{request}}}",
                        job.0
                    ));
                    open.insert(tid, ());
                }
                ObsEvent::JobFinished { job } => {
                    let tid = job.0 as u64 + 1;
                    if open.remove(&tid).is_some() {
                        w.push(format!(
                            "\"ph\":\"E\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}"
                        ));
                    }
                }
                ObsEvent::Decision {
                    trigger,
                    job,
                    from_alloc,
                    to_alloc,
                    transition,
                } => {
                    let tid = job.0 as u64 + 1;
                    let tr = match transition {
                        Some((from, to)) => format!(",\"transition\":\"{from}->{to}\""),
                        None => String::new(),
                    };
                    w.push(format!(
                        "\"name\":\"decision {}->{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                         \"pid\":{pid},\"tid\":{tid},\"args\":{{\"trigger\":\"{}\",\
                         \"from\":{from_alloc},\"to\":{to_alloc}{tr}}}",
                        from_alloc,
                        to_alloc,
                        trigger.label()
                    ));
                }
                ObsEvent::StateChanged { job, from, to } => {
                    let tid = job.0 as u64 + 1;
                    w.push(format!(
                        "\"name\":\"state {from}->{to}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                         \"pid\":{pid},\"tid\":{tid},\"args\":{{\"from\":\"{from}\",\"to\":\"{to}\"}}"
                    ));
                }
                ObsEvent::ReallocCost {
                    job,
                    penalty_secs,
                    gained,
                    lost,
                } => {
                    let tid = job.0 as u64 + 1;
                    w.push(format!(
                        "\"name\":\"realloc cost\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                         \"pid\":{pid},\"tid\":{tid},\"args\":{{\"penalty_secs\":{penalty_secs},\
                         \"gained\":{gained},\"lost\":{lost}}}"
                    ));
                }
                ObsEvent::MplChanged {
                    running,
                    total_alloc,
                } => {
                    w.push(format!(
                        "\"name\":\"mpl\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\
                         \"args\":{{\"running\":{running},\"allocated\":{total_alloc}}}"
                    ));
                }
                ObsEvent::CpuFailed { cpu } => {
                    w.push(format!(
                        "\"name\":\"cpu{} failed\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\
                         \"pid\":{pid},\"tid\":0,\"args\":{{\"cpu\":{}}}",
                        cpu.0, cpu.0
                    ));
                }
                ObsEvent::CpuRecovered { cpu } => {
                    w.push(format!(
                        "\"name\":\"cpu{} recovered\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\
                         \"pid\":{pid},\"tid\":0,\"args\":{{\"cpu\":{}}}",
                        cpu.0, cpu.0
                    ));
                }
                ObsEvent::DegradedCapacity { alive, total } => {
                    w.push(format!(
                        "\"name\":\"capacity\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\
                         \"args\":{{\"alive\":{alive},\"dead\":{}}}",
                        total - alive
                    ));
                }
                ObsEvent::JobRetried {
                    job,
                    attempt,
                    backoff_secs,
                } => {
                    // The crash ends the job's current span; the retry's
                    // JobStarted opens a fresh one.
                    let tid = job.0 as u64 + 1;
                    if open.remove(&tid).is_some() {
                        w.push(format!(
                            "\"ph\":\"E\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}"
                        ));
                    }
                    w.push(format!(
                        "\"name\":\"retry {attempt}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                         \"pid\":{pid},\"tid\":{tid},\"args\":{{\"attempt\":{attempt},\
                         \"backoff_secs\":{backoff_secs}}}"
                    ));
                }
                ObsEvent::JobFailed { job, attempts } => {
                    let tid = job.0 as u64 + 1;
                    if open.remove(&tid).is_some() {
                        w.push(format!(
                            "\"ph\":\"E\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}"
                        ));
                    }
                    w.push(format!(
                        "\"name\":\"job {} failed\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                         \"pid\":{pid},\"tid\":{tid},\"args\":{{\"attempts\":{attempts}}}",
                        job.0
                    ));
                }
                ObsEvent::ExperimentFailed { name, message } => {
                    w.push(format!(
                        "\"name\":\"FAILED {}\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{ts},\
                         \"pid\":{pid},\"tid\":0,\"args\":{{\"message\":\"{}\"}}",
                        esc(name),
                        esc(message)
                    ));
                }
                // High-volume / low-value on a decision timeline: the CPU
                // map is pdpa-trace's job, iteration samples would dwarf
                // everything else, and queue-level events (submit/dequeue)
                // are pdpa-analyze's raw material.
                ObsEvent::CpuAssigned { .. }
                | ObsEvent::IterationMeasured { .. }
                | ObsEvent::JobSubmitted { .. }
                | ObsEvent::JobDequeued { .. } => {}
            }
        }
        // Close any span still open at the run's end so B/E always pair.
        for (tid, ()) in open {
            w.push(format!(
                "\"ph\":\"E\",\"ts\":{last_ts},\"pid\":{pid},\"tid\":{tid}"
            ));
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DecisionTrigger;
    use pdpa_sim::{JobId, SimTime};

    fn te(at: f64, seq: u64, event: ObsEvent) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event,
        }
    }

    fn sample_runs() -> Vec<(String, Vec<TimedEvent>)> {
        vec![(
            "fig5/PDPA".to_string(),
            vec![
                te(
                    0.0,
                    0,
                    ObsEvent::JobStarted {
                        job: JobId(0),
                        request: 32,
                    },
                ),
                te(
                    1.0,
                    1,
                    ObsEvent::Decision {
                        trigger: DecisionTrigger::Report,
                        job: JobId(0),
                        from_alloc: 32,
                        to_alloc: 28,
                        transition: Some(("NO_REF", "DEC")),
                    },
                ),
                te(
                    2.0,
                    2,
                    ObsEvent::MplChanged {
                        running: 1,
                        total_alloc: 28,
                    },
                ),
                te(3.0, 3, ObsEvent::JobFinished { job: JobId(0) }),
                // A job that never finishes: must still get a closing E.
                te(
                    4.0,
                    4,
                    ObsEvent::JobStarted {
                        job: JobId(1),
                        request: 16,
                    },
                ),
            ],
        )]
    }

    #[test]
    fn spans_pair_b_with_e() {
        let json = chrome_trace(&sample_runs());
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 2);
        assert_eq!(b, e, "every B span must be closed:\n{json}");
    }

    #[test]
    fn output_is_structurally_sound_json() {
        let json = chrome_trace(&sample_runs());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // Brace/bracket balance outside string literals.
        let (mut depth, mut in_str, mut escaped) = (0i64, false, false);
        for c in json.chars() {
            if in_str {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => in_str = false,
                    _ => {}
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0);
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn fault_events_render_and_keep_spans_paired() {
        use pdpa_sim::CpuId;
        let runs = vec![(
            "chaos/PDPA".to_string(),
            vec![
                te(
                    0.0,
                    0,
                    ObsEvent::JobStarted {
                        job: JobId(0),
                        request: 8,
                    },
                ),
                te(1.0, 1, ObsEvent::CpuFailed { cpu: CpuId(3) }),
                te(
                    1.0,
                    2,
                    ObsEvent::DegradedCapacity {
                        alive: 59,
                        total: 60,
                    },
                ),
                te(
                    2.0,
                    3,
                    ObsEvent::JobRetried {
                        job: JobId(0),
                        attempt: 1,
                        backoff_secs: 30.0,
                    },
                ),
                te(
                    32.0,
                    4,
                    ObsEvent::JobStarted {
                        job: JobId(0),
                        request: 8,
                    },
                ),
                te(
                    40.0,
                    5,
                    ObsEvent::JobFailed {
                        job: JobId(0),
                        attempts: 2,
                    },
                ),
                te(50.0, 6, ObsEvent::CpuRecovered { cpu: CpuId(3) }),
            ],
        )];
        let json = chrome_trace(&runs);
        assert!(json.contains("cpu3 failed"));
        assert!(json.contains("cpu3 recovered"));
        assert!(json.contains("\"name\":\"capacity\""));
        assert!(json.contains("\"name\":\"retry 1\""));
        assert!(json.contains("job 0 failed"));
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 2, "two starts (initial + retry)");
        assert_eq!(b, e, "retry/failure must close spans:\n{json}");
    }

    #[test]
    fn strings_are_escaped() {
        let runs = vec![(
            "evil\"key\n".to_string(),
            vec![te(
                0.0,
                0,
                ObsEvent::ExperimentFailed {
                    name: "x".to_string(),
                    message: "panicked: \"oh no\"\nline2".to_string(),
                },
            )],
        )];
        let json = chrome_trace(&runs);
        assert!(json.contains("evil\\\"key\\n"));
        assert!(json.contains("\\\"oh no\\\"\\nline2"));
    }

    #[test]
    fn empty_input_is_valid() {
        let json = chrome_trace(&[]);
        assert_eq!(json, "{\"traceEvents\":[\n\n]}\n");
    }
}
