//! Process-wide metrics registry: monotonic counters and streaming
//! histograms with p50/p90/p99, no external dependencies.
//!
//! Counters and histogram buckets are plain atomics, so the hot path
//! (engine runs on harness worker threads) never takes a lock; the
//! registry's name→metric maps are behind mutexes but are only touched on
//! first registration and at snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonic, saturating counter.
///
/// Saturates at `u64::MAX` instead of wrapping, so a counter can never
/// appear to move backwards however long the process runs.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests only — production counters are monotonic).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets; covers the full `u64` range.
const BUCKETS: usize = 64;

/// A lock-free streaming histogram over `u64` samples (typically
/// nanoseconds), bucketed by the sample's binary magnitude.
///
/// Bucket `i` holds samples whose highest set bit is `i` (bucket 0 also
/// holds zero), represented by `1.5·2^i` — the bucket midpoint — so
/// quantile estimates carry at most ~33% relative error, plenty for
/// p50/p90/p99 of span durations spread over orders of magnitude.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Representative value for bucket `i` (its midpoint, saturating for
    /// the top bucket).
    fn bucket_value(i: usize) -> u64 {
        if i >= 63 {
            return u64::MAX;
        }
        // 1.5 * 2^i == 2^i + 2^(i-1); bucket 0 represents {0, 1}.
        (1u64 << i) + (1u64 << i >> 1)
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (exact, unlike the bucketed quantiles).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`) by cumulative walk over
    /// the buckets. Monotone in `q` by construction: a larger `q` can only
    /// stop at the same or a later bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based; q=0 → first, q=1 → last.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_value(i).min(self.max());
            }
        }
        self.max()
    }

    /// Per-bucket sample counts, low magnitude first. Bucket `i` holds
    /// samples in `[2^i, 2^(i+1))` (bucket 0 also holds zero), which is
    /// exactly the shape a cumulative-bucket exporter (Prometheus text
    /// exposition) needs: the upper bound of bucket `i` is `2^(i+1) - 1`.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the top bucket).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Resets all buckets (tests only).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Per-engine-run counter deltas, reported once per `Engine` run and
/// accumulated into the global registry (and per-scope breakdown).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Events pushed onto the simulation queue.
    pub events_pushed: u64,
    /// Events popped and dispatched.
    pub events_popped: u64,
    /// Stale events dropped by the epoch filter without dispatch.
    pub events_stale_dropped: u64,
    /// Policy decisions the engine applied (allocation changes).
    pub decisions: u64,
    /// Speedup-memo cache hits.
    pub memo_hits: u64,
    /// Speedup-memo cache misses (model evaluations).
    pub memo_misses: u64,
}

impl RunCounters {
    fn accumulate(&self, into: &ScopeCounters) {
        into.runs.inc();
        into.events_pushed.add(self.events_pushed);
        into.events_popped.add(self.events_popped);
        into.events_stale_dropped.add(self.events_stale_dropped);
        into.decisions.add(self.decisions);
        into.memo_hits.add(self.memo_hits);
        into.memo_misses.add(self.memo_misses);
    }
}

/// Accumulated engine counters, globally or for one scope label.
#[derive(Debug, Default)]
struct ScopeCounters {
    runs: Counter,
    events_pushed: Counter,
    events_popped: Counter,
    events_stale_dropped: Counter,
    decisions: Counter,
    memo_hits: Counter,
    memo_misses: Counter,
}

impl ScopeCounters {
    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            runs: self.runs.get(),
            events_pushed: self.events_pushed.get(),
            events_popped: self.events_popped.get(),
            events_stale_dropped: self.events_stale_dropped.get(),
            decisions: self.decisions.get(),
            memo_hits: self.memo_hits.get(),
            memo_misses: self.memo_misses.get(),
        }
    }
}

/// Point-in-time values of one scope's accumulated counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Engine runs attributed here.
    pub runs: u64,
    /// Events pushed onto simulation queues.
    pub events_pushed: u64,
    /// Events popped and dispatched.
    pub events_popped: u64,
    /// Stale events dropped by the epoch filter.
    pub events_stale_dropped: u64,
    /// Policy decisions applied.
    pub decisions: u64,
    /// Speedup-memo hits.
    pub memo_hits: u64,
    /// Speedup-memo misses.
    pub memo_misses: u64,
}

impl CounterSnapshot {
    /// Memo hit rate in `[0, 1]`, or 0 with no lookups.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// Everything the registry knows, frozen at one instant; the input to the
/// JSON exporter.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Global engine counters (all scopes combined).
    pub engine: CounterSnapshot,
    /// Per-scope engine counters, keyed by scope label, sorted.
    pub scopes: Vec<(String, CounterSnapshot)>,
    /// Named histograms (e.g. `decision_ns`), sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// The process-wide metrics registry.
#[derive(Debug, Default)]
pub struct Registry {
    global: ScopeCounters,
    scopes: Mutex<BTreeMap<String, Arc<ScopeCounters>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(Registry::default)
    }

    /// Accumulates one engine run's counters, attributed to the current
    /// thread's [`scope`](crate::scope) label when one is set.
    pub fn record_run(&self, run: &RunCounters) {
        run.accumulate(&self.global);
        if let Some(label) = crate::scope::current() {
            let scoped = {
                let mut scopes = self.scopes.lock().unwrap();
                Arc::clone(scopes.entry(label).or_default())
            };
            run.accumulate(&scoped);
        }
    }

    /// The named histogram, created on first use. Names are `&'static str`
    /// because the instrumented sites are compiled in.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut h = self.histograms.lock().unwrap();
        Arc::clone(h.entry(name).or_default())
    }

    /// Live handles to every registered histogram, sorted by name. Unlike
    /// [`Registry::snapshot`] this exposes the histograms themselves, so an
    /// exporter that needs raw buckets (Prometheus cumulative `le` series)
    /// can read them without widening [`HistogramSnapshot`].
    pub fn histogram_handles(&self) -> Vec<(&'static str, Arc<Histogram>)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| (*name, Arc::clone(h)))
            .collect()
    }

    /// Freezes the registry's current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let scopes = self
            .scopes
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| (name.clone(), c.snapshot()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| {
                (
                    name.to_string(),
                    HistogramSnapshot {
                        count: h.count(),
                        mean: h.mean(),
                        p50: h.quantile(0.50),
                        p90: h.quantile(0.90),
                        p99: h.quantile(0.99),
                        max: h.max(),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            engine: self.global.snapshot(),
            scopes,
            histograms,
        }
    }

    /// Clears every counter, scope, and histogram (tests only).
    pub fn reset(&self) {
        let g = &self.global;
        for c in [
            &g.runs,
            &g.events_pushed,
            &g.events_popped,
            &g.events_stale_dropped,
            &g.decisions,
            &g.memo_hits,
            &g.memo_misses,
        ] {
            c.reset();
        }
        self.scopes.lock().unwrap().clear();
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
    }
}

/// Convenience: record one run's counters into the global registry.
pub fn record_engine_run(run: &RunCounters) {
    Registry::global().record_run(run);
}

/// An RAII wall-clock timer: records elapsed nanoseconds into a histogram
/// when dropped. Used for per-decision policy spans.
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    started: Instant,
}

impl Span {
    /// Starts timing into `hist`.
    pub fn start(hist: Arc<Histogram>) -> Self {
        Self {
            hist,
            started: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = self.started.elapsed().as_nanos();
        self.hist.record(ns.min(u64::MAX as u128) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_saturates_at_max() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_basic_stats() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1015);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
        // Top quantile lands in 1000's bucket [512, 1024): midpoint 768,
        // capped at the exact max.
        assert_eq!(h.quantile(1.0), 768);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn bucket_counts_expose_raw_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2, "0 and 1 share bucket 0");
        assert_eq!(counts[1], 2, "2 and 3 land in [2, 4)");
        assert_eq!(counts[9], 1, "1000 lands in [512, 1024)");
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(Histogram::bucket_upper_bound(0), 1);
        assert_eq!(Histogram::bucket_upper_bound(9), 1023);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn span_records_into_histogram() {
        let h = Arc::new(Histogram::new());
        {
            let _s = Span::start(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_scoped_attribution() {
        let reg = Registry::default();
        let run = RunCounters {
            events_pushed: 5,
            events_popped: 4,
            events_stale_dropped: 1,
            decisions: 2,
            memo_hits: 3,
            memo_misses: 1,
        };
        {
            let _g = crate::scope::enter("figX");
            reg.record_run(&run);
        }
        reg.record_run(&run);
        let snap = reg.snapshot();
        assert_eq!(snap.engine.runs, 2);
        assert_eq!(snap.engine.events_pushed, 10);
        assert_eq!(snap.scopes.len(), 1);
        assert_eq!(snap.scopes[0].0, "figX");
        assert_eq!(snap.scopes[0].1.runs, 1);
        assert!((snap.scopes[0].1.memo_hit_rate() - 0.75).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn quantiles_are_monotone_in_q(
            samples in proptest::collection::vec(0u64..1_000_000_000, 1..200),
            qa in 0.0f64..1.0,
            qb in 0.0f64..1.0,
        ) {
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            prop_assert!(h.quantile(lo) <= h.quantile(hi));
        }

        #[test]
        fn quantiles_bounded_by_observed_range(
            samples in proptest::collection::vec(0u64..u64::MAX, 1..100),
            q in 0.0f64..1.0,
        ) {
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            prop_assert!(h.quantile(q) <= h.max());
        }

        #[test]
        fn counter_never_decreases(adds in proptest::collection::vec(0u64..u64::MAX, 1..50)) {
            let c = Counter::new();
            let mut prev = 0;
            for &n in &adds {
                c.add(n);
                let now = c.get();
                prop_assert!(now >= prev);
                prev = now;
            }
        }
    }
}
