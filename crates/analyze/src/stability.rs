//! Allocation-stability accounting recomputed from the raw `cpu` stream.
//!
//! The engine's own Table-2 counters live in two places with different
//! semantics, and this module replicates both exactly from nothing but
//! the per-CPU occupancy events:
//!
//! - **space-shared** (`Machine::resize`): a migration is a CPU *gained by
//!   a job that was already running* — initial placement is free. One
//!   resize publishes its gained CPUs as consecutive `cpu` events, and any
//!   other event (the decision itself, a cost charge, another job's
//!   losses) closes the batch; whether the batch counts as migrations or
//!   placements is decided by the job's holdings *at the batch start*, so
//!   a 4-CPU initial placement is four placements, not one placement and
//!   three migrations.
//! - **time-shared** (`QuantumPlacement::advance`, the IRIX model): a
//!   migration is a CPU whose occupant changed *from one running job to
//!   another* across a quantum boundary; placements onto idle CPUs are
//!   not counted. These hand-offs appear in the stream as a direct
//!   `Some(a) → Some(b)` occupant change — something the space-shared
//!   machine can never produce, because it only allocates free CPUs.
//!
//! [`MigrationStats::migrations`] picks the count matching the stream's
//! execution model using exactly that signature: any direct hand-off
//! means the run was time-shared.

use pdpa_obs::{ObsEvent, TimedEvent};
use pdpa_sim::JobId;
use std::collections::BTreeMap;

/// Migration, placement, and release counts of one recorded run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Space-shared migrations: CPUs gained by already-running jobs
    /// (batch-scoped, matching `Machine`'s counter).
    pub space_migrations: u64,
    /// Time-shared migrations: direct occupied → occupied hand-offs
    /// (matching `QuantumPlacement`'s counter). Under gang scheduling this
    /// instead counts slot-rotation switches.
    pub handoff_migrations: u64,
    /// CPUs granted to jobs that held nothing (initial placements).
    pub initial_placements: u64,
    /// CPU releases (occupant → idle).
    pub releases: u64,
}

impl MigrationStats {
    /// The migration count under the stream's execution model: hand-offs
    /// only exist in time-shared streams, so any hand-off selects the
    /// time-shared counter; otherwise the space-shared one applies.
    pub fn migrations(&self) -> u64 {
        if self.handoff_migrations > 0 {
            self.handoff_migrations
        } else {
            self.space_migrations
        }
    }
}

/// Replays the `cpu` occupancy stream into [`MigrationStats`].
pub fn migration_stats(events: &[TimedEvent]) -> MigrationStats {
    let mut stats = MigrationStats::default();
    // Reconstructed machine state: occupant per CPU, CPUs held per job.
    let mut occupant: Vec<Option<JobId>> = Vec::new();
    let mut holdings: BTreeMap<JobId, u64> = BTreeMap::new();
    // The open gain batch: (job, counts-as-migration), decided when the
    // batch opened. Closed by any event that is not a further gain for
    // the same job.
    let mut batch: Option<(JobId, bool)> = None;

    for te in events {
        let ObsEvent::CpuAssigned { cpu, job } = &te.event else {
            batch = None;
            continue;
        };
        let idx = cpu.index();
        if idx >= occupant.len() {
            occupant.resize(idx + 1, None);
        }
        let old = occupant[idx];
        match (old, *job) {
            (old, new) if old == new => {
                // Re-publication without a change (gang slots re-announce
                // the whole machine every quantum): no state to update.
            }
            (None, Some(j)) => {
                // A gain from a free CPU. Extend the open batch or open a
                // new one, deciding migration-vs-placement from the
                // holdings at the batch start.
                let counts_as_migration = match batch {
                    Some((bj, m)) if bj == j => m,
                    _ => {
                        let was_running = holdings.get(&j).copied().unwrap_or(0) > 0;
                        batch = Some((j, was_running));
                        was_running
                    }
                };
                if counts_as_migration {
                    stats.space_migrations += 1;
                } else {
                    stats.initial_placements += 1;
                }
                *holdings.entry(j).or_insert(0) += 1;
                occupant[idx] = Some(j);
            }
            (Some(k), Some(j)) => {
                // A direct hand-off: only the time-shared quantum placement
                // produces these.
                stats.handoff_migrations += 1;
                decrement(&mut holdings, k);
                *holdings.entry(j).or_insert(0) += 1;
                occupant[idx] = Some(j);
                batch = None;
            }
            (Some(k), None) => {
                stats.releases += 1;
                decrement(&mut holdings, k);
                occupant[idx] = None;
                batch = None;
            }
            (None, None) => unreachable!("old == new handled above"),
        }
    }
    stats
}

fn decrement(holdings: &mut BTreeMap<JobId, u64>, job: JobId) {
    if let Some(n) = holdings.get_mut(&job) {
        *n = n.saturating_sub(1);
        if *n == 0 {
            holdings.remove(&job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_sim::{CpuId, SimTime};

    fn cpu_ev(at: f64, seq: u64, cpu: u16, job: Option<u32>) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event: ObsEvent::CpuAssigned {
                cpu: CpuId(cpu),
                job: job.map(JobId),
            },
        }
    }

    fn other(at: f64, seq: u64) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event: ObsEvent::MplChanged {
                running: 1,
                total_alloc: 4,
            },
        }
    }

    #[test]
    fn initial_placement_is_not_a_migration() {
        // One resize grants 3 CPUs to a job holding nothing.
        let stream = vec![
            cpu_ev(0.0, 0, 0, Some(7)),
            cpu_ev(0.0, 1, 1, Some(7)),
            cpu_ev(0.0, 2, 2, Some(7)),
            other(0.0, 3),
        ];
        let s = migration_stats(&stream);
        assert_eq!(s.initial_placements, 3);
        assert_eq!(s.space_migrations, 0);
        assert_eq!(s.migrations(), 0);
    }

    #[test]
    fn growth_of_a_running_job_is_a_migration_per_cpu() {
        let stream = vec![
            // Initial placement: 2 CPUs.
            cpu_ev(0.0, 0, 0, Some(7)),
            cpu_ev(0.0, 1, 1, Some(7)),
            other(0.0, 2),
            // A later resize grants 2 more — the batch boundary (the
            // decision event between resizes) is what separates them.
            cpu_ev(5.0, 3, 2, Some(7)),
            cpu_ev(5.0, 4, 3, Some(7)),
            other(5.0, 5),
        ];
        let s = migration_stats(&stream);
        assert_eq!(s.initial_placements, 2);
        assert_eq!(s.space_migrations, 2);
        assert_eq!(s.handoff_migrations, 0);
        assert_eq!(s.migrations(), 2);
    }

    #[test]
    fn regrowth_after_shrink_to_zero_is_a_placement() {
        // Capacity loss can stall a job at zero CPUs; the engine's Machine
        // then treats a re-grant as a fresh placement (the owner entry was
        // dropped), and so must the replay.
        let stream = vec![
            cpu_ev(0.0, 0, 0, Some(3)),
            other(0.0, 1),
            cpu_ev(4.0, 2, 0, None),
            other(4.0, 3),
            cpu_ev(9.0, 4, 0, Some(3)),
            other(9.0, 5),
        ];
        let s = migration_stats(&stream);
        assert_eq!(s.initial_placements, 2);
        assert_eq!(s.space_migrations, 0);
        assert_eq!(s.releases, 1);
    }

    #[test]
    fn handoffs_select_the_timeshared_counter() {
        let stream = vec![
            // Quantum 1: both CPUs go to job 0 (placements, not counted).
            cpu_ev(0.0, 0, 0, Some(0)),
            cpu_ev(0.0, 1, 1, Some(0)),
            // Quantum 2: CPU 1 hands off to job 1 — one migration; CPU 0
            // re-announces its occupant — no change, no count.
            cpu_ev(1.0, 2, 1, Some(1)),
            cpu_ev(1.0, 3, 0, Some(0)),
            // Quantum 3: CPU 1 hands back.
            cpu_ev(2.0, 4, 1, Some(0)),
        ];
        let s = migration_stats(&stream);
        assert_eq!(s.handoff_migrations, 2);
        assert_eq!(s.migrations(), 2);
    }
}
