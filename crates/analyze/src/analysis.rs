//! One-stop aggregation: every derived metric of a recorded run, plus
//! hand-built JSON export (`pdpa-analyze/v1`).
//!
//! The JSON is assembled by hand for the same reason `pdpa-obs` writes
//! its exports by hand: the repo carries no serialization dependency, and
//! the document is small and flat enough that a builder would cost more
//! than it saves.

use crate::series::{cpu_series, mpl_stats, CpuSeries, MplStats};
use crate::stability::{migration_stats, MigrationStats};
use crate::states::{time_in_state, StateBreakdown};
use crate::timeline::{job_timelines, summarize, JobTimeline, TimelineStats};
use pdpa_obs::{ObsEvent, TimedEvent};
use pdpa_sim::JobId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag carried by every analysis document.
pub const ANALYSIS_SCHEMA: &str = "pdpa-analyze/v1";

/// Decision-rate accounting: how often the policy acted and what the
/// reallocations it ordered cost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecisionStats {
    /// Decisions published, all triggers.
    pub total: u64,
    /// Decisions per trigger label (`arrival`/`report`/`completion`/`fault`).
    pub by_trigger: BTreeMap<&'static str, u64>,
    /// Reallocation-cost charges observed.
    pub realloc_events: u64,
    /// Total repartitioning penalty charged, seconds.
    pub realloc_penalty_secs: f64,
}

/// Every derived metric of one recorded run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunAnalysis {
    /// Events in the stream.
    pub events: usize,
    /// First-to-last event span, seconds of simulated time.
    pub span_secs: f64,
    /// Per-job lifecycle reconstructions.
    pub jobs: BTreeMap<JobId, JobTimeline>,
    /// Run-level timeline aggregates.
    pub timeline: TimelineStats,
    /// PDPA time-in-state breakdown.
    pub states: StateBreakdown,
    /// Migration/placement accounting (Table-2 cross-check).
    pub migrations: MigrationStats,
    /// Integrated CPU busy/idle/fragmentation series.
    pub cpus: CpuSeries,
    /// Multiprogramming-level statistics.
    pub mpl: MplStats,
    /// Decision-rate accounting.
    pub decisions: DecisionStats,
}

impl RunAnalysis {
    /// Replays a recorded stream into the full metric set.
    pub fn from_events(events: &[TimedEvent]) -> Self {
        let jobs = job_timelines(events);
        let timeline = summarize(&jobs);
        let mut decisions = DecisionStats::default();
        for te in events {
            match &te.event {
                ObsEvent::Decision { trigger, .. } => {
                    decisions.total += 1;
                    *decisions.by_trigger.entry(trigger.label()).or_insert(0) += 1;
                }
                ObsEvent::ReallocCost { penalty_secs, .. } => {
                    decisions.realloc_events += 1;
                    decisions.realloc_penalty_secs += penalty_secs;
                }
                _ => {}
            }
        }
        let first = events.first().map_or(0.0, |te| te.at.as_secs());
        let last = events.last().map_or(0.0, |te| te.at.as_secs());
        RunAnalysis {
            events: events.len(),
            span_secs: (last - first).max(0.0),
            timeline,
            states: time_in_state(events),
            migrations: migration_stats(events),
            cpus: cpu_series(events),
            mpl: mpl_stats(events),
            decisions,
            jobs,
        }
    }

    /// The analysis as one JSON object (no schema wrapper; see
    /// [`analysis_json`] for the full document).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_num(&mut out, "events", self.events as f64);
        push_num(&mut out, "span_secs", self.span_secs);
        push_num(&mut out, "jobs", self.timeline.jobs as f64);
        push_num(&mut out, "finished", self.timeline.finished as f64);
        push_num(&mut out, "failed", self.timeline.failed as f64);
        push_num(&mut out, "retries", self.timeline.retries as f64);
        push_num(
            &mut out,
            "avg_queue_wait_secs",
            self.timeline.avg_queue_wait_secs,
        );
        push_num(
            &mut out,
            "avg_response_secs",
            self.timeline.avg_response_secs,
        );
        push_num(&mut out, "avg_slowdown", self.timeline.avg_slowdown);
        if let Some(d) = self.timeline.slowdown_dist {
            let _ = write!(
                out,
                "\"slowdown_dist\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},",
                fmt_f64(d.p50),
                fmt_f64(d.p90),
                fmt_f64(d.p99),
                fmt_f64(d.max)
            );
        }
        out.push_str("\"time_in_state_secs\":{");
        let mut first = true;
        for (state, secs) in &self.states.secs {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", state, fmt_f64(*secs));
        }
        out.push_str("},");
        push_num(
            &mut out,
            "state_transitions",
            self.states.transitions as f64,
        );
        push_num(&mut out, "migrations", self.migrations.migrations() as f64);
        push_num(
            &mut out,
            "initial_placements",
            self.migrations.initial_placements as f64,
        );
        push_num(&mut out, "cpus", self.cpus.cpus as f64);
        push_num(&mut out, "busy_cpu_secs", self.cpus.busy_cpu_secs);
        push_num(&mut out, "idle_cpu_secs", self.cpus.idle_cpu_secs);
        push_num(&mut out, "frag_cpu_secs", self.cpus.frag_cpu_secs);
        push_num(&mut out, "utilization", self.cpus.utilization());
        push_num(&mut out, "peak_busy", self.cpus.peak_busy as f64);
        push_num(&mut out, "mpl_mean_running", self.mpl.mean_running);
        push_num(&mut out, "mpl_mean_allocated", self.mpl.mean_allocated);
        push_num(&mut out, "mpl_max_running", self.mpl.max_running as f64);
        push_num(&mut out, "decisions", self.decisions.total as f64);
        out.push_str("\"decisions_by_trigger\":{");
        let mut first = true;
        for (trigger, n) in &self.decisions.by_trigger {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", trigger, n);
        }
        out.push_str("},");
        push_num(
            &mut out,
            "realloc_events",
            self.decisions.realloc_events as f64,
        );
        let _ = write!(
            out,
            "\"realloc_penalty_secs\":{}",
            fmt_f64(self.decisions.realloc_penalty_secs)
        );
        out.push('}');
        out
    }

    /// Human-readable multi-line rendering for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "events {}  span {:.1}s  jobs {} ({} finished, {} failed, {} retries)",
            self.events,
            self.span_secs,
            self.timeline.jobs,
            self.timeline.finished,
            self.timeline.failed,
            self.timeline.retries
        );
        let _ = writeln!(
            out,
            "queue wait avg {:.2}s  response avg {:.1}s  slowdown avg {:.3}",
            self.timeline.avg_queue_wait_secs,
            self.timeline.avg_response_secs,
            self.timeline.avg_slowdown
        );
        if let Some(d) = self.timeline.slowdown_dist {
            let _ = writeln!(
                out,
                "slowdown dist p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}",
                d.p50, d.p90, d.p99, d.max
            );
        }
        if !self.states.secs.is_empty() {
            let _ = write!(out, "time in state:");
            for (state, secs) in &self.states.secs {
                let _ = write!(out, "  {state} {secs:.1}s");
            }
            let _ = writeln!(out, "  ({} transitions)", self.states.transitions);
        }
        let _ = writeln!(
            out,
            "migrations {}  placements {}  releases {}",
            self.migrations.migrations(),
            self.migrations.initial_placements,
            self.migrations.releases
        );
        let _ = writeln!(
            out,
            "cpus {}  busy {:.1}  idle {:.1}  frag {:.1} cpu-s  util {:.1}%  peak {}",
            self.cpus.cpus,
            self.cpus.busy_cpu_secs,
            self.cpus.idle_cpu_secs,
            self.cpus.frag_cpu_secs,
            self.cpus.utilization() * 100.0,
            self.cpus.peak_busy
        );
        let _ = writeln!(
            out,
            "mpl mean {:.2} running / {:.1} allocated  max {} / {}",
            self.mpl.mean_running,
            self.mpl.mean_allocated,
            self.mpl.max_running,
            self.mpl.max_allocated
        );
        let _ = write!(
            out,
            "decisions {}  realloc charges {} ({:.2}s penalty)",
            self.decisions.total,
            self.decisions.realloc_events,
            self.decisions.realloc_penalty_secs
        );
        for (trigger, n) in &self.decisions.by_trigger {
            let _ = write!(out, "  {trigger}={n}");
        }
        out.push('\n');
        out
    }
}

/// The full `pdpa-analyze/v1` document over one or more named runs.
pub fn analysis_json(runs: &[(String, RunAnalysis)]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"schema\":\"{ANALYSIS_SCHEMA}\",\"runs\":{{");
    for (i, (key, analysis)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(key), analysis.to_json());
    }
    out.push_str("}}");
    out
}

/// Formats an f64 as a JSON number (JSON has no NaN/∞; clamp to 0).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn push_num(out: &mut String, key: &str, v: f64) {
    let _ = write!(out, "\"{}\":{},", key, fmt_f64(v));
}

/// Escapes a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_obs::DecisionTrigger;
    use pdpa_sim::{CpuId, SimTime};

    fn te(at: f64, seq: u64, event: ObsEvent) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event,
        }
    }

    fn small_run() -> Vec<TimedEvent> {
        let j = JobId(0);
        vec![
            te(0.0, 0, ObsEvent::JobSubmitted { job: j }),
            te(1.0, 1, ObsEvent::JobDequeued { job: j }),
            te(1.0, 2, ObsEvent::JobStarted { job: j, request: 2 }),
            te(
                1.0,
                3,
                ObsEvent::CpuAssigned {
                    cpu: CpuId(0),
                    job: Some(j),
                },
            ),
            te(
                1.0,
                4,
                ObsEvent::CpuAssigned {
                    cpu: CpuId(1),
                    job: Some(j),
                },
            ),
            te(
                1.0,
                5,
                ObsEvent::Decision {
                    trigger: DecisionTrigger::Arrival,
                    job: j,
                    from_alloc: 0,
                    to_alloc: 2,
                    transition: None,
                },
            ),
            te(
                5.0,
                6,
                ObsEvent::MplChanged {
                    running: 1,
                    total_alloc: 2,
                },
            ),
            te(
                10.0,
                7,
                ObsEvent::CpuAssigned {
                    cpu: CpuId(0),
                    job: None,
                },
            ),
            te(
                10.0,
                8,
                ObsEvent::CpuAssigned {
                    cpu: CpuId(1),
                    job: None,
                },
            ),
            te(10.0, 9, ObsEvent::JobFinished { job: j }),
        ]
    }

    #[test]
    fn aggregates_cover_every_module() {
        let a = RunAnalysis::from_events(&small_run());
        assert_eq!(a.events, 10);
        assert_eq!(a.span_secs, 10.0);
        assert_eq!(a.timeline.finished, 1);
        assert_eq!(a.migrations.migrations(), 0);
        assert_eq!(a.migrations.initial_placements, 2);
        assert_eq!(a.cpus.cpus, 2);
        assert_eq!(a.decisions.total, 1);
        assert_eq!(a.decisions.by_trigger.get("arrival"), Some(&1));
    }

    #[test]
    fn json_document_is_well_formed() {
        let a = RunAnalysis::from_events(&small_run());
        let doc = analysis_json(&[("w1-PDPA".to_string(), a)]);
        assert!(doc.starts_with("{\"schema\":\"pdpa-analyze/v1\""));
        assert!(doc.contains("\"w1-PDPA\":{"));
        assert!(doc.contains("\"migrations\":0"));
        assert!(doc.ends_with("}}"));
        // Balanced braces (cheap well-formedness check without a parser).
        let opens = doc.matches('{').count();
        let closes = doc.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn render_text_mentions_the_headline_numbers() {
        let a = RunAnalysis::from_events(&small_run());
        let text = a.render_text();
        assert!(text.contains("jobs 1 (1 finished"));
        assert!(text.contains("migrations 0"));
    }
}
