//! Run diffing: where two recorded runs first disagree, and by how much.
//!
//! Two complementary answers. The **first divergent event** is the
//! microscope: streams are compared in their serialized `to_line` form
//! (the canonical total order), so two runs of the same seeded
//! configuration must match line-for-line and any nondeterminism or
//! behavior change pins itself to an exact `(sim_time, seq, kind)`. The
//! **metric deltas** are the telescope: the full [`RunAnalysis`] of both
//! sides, rendered as signed differences, says whether the divergence
//! *mattered* — more migrations, longer queues, worse fragmentation.

use crate::analysis::RunAnalysis;
use pdpa_obs::TimedEvent;
use std::fmt::Write as _;

/// The first point where two streams disagree.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Position in the stream (0-based event index).
    pub index: usize,
    /// Simulated time of the divergent event (from whichever side has
    /// one; side A wins when both do).
    pub at: f64,
    /// Sequence number at the divergence.
    pub seq: u64,
    /// Event kind at the divergence.
    pub kind: &'static str,
    /// Side A's serialized event, if its stream reaches this index.
    pub line_a: Option<String>,
    /// Side B's serialized event, if its stream reaches this index.
    pub line_b: Option<String>,
}

/// A full comparison of two recorded runs.
#[derive(Clone, Debug, PartialEq)]
pub struct RunDiff {
    /// First disagreement, `None` when the streams are identical.
    pub divergence: Option<Divergence>,
    /// Side A's derived metrics.
    pub a: RunAnalysis,
    /// Side B's derived metrics.
    pub b: RunAnalysis,
}

impl RunDiff {
    /// Compares two streams event-for-event and analyzes both sides.
    pub fn compare(a: &[TimedEvent], b: &[TimedEvent]) -> Self {
        let mut divergence = None;
        let limit = a.len().max(b.len());
        for i in 0..limit {
            let ea = a.get(i);
            let eb = b.get(i);
            let same = match (ea, eb) {
                (Some(x), Some(y)) => x.to_line() == y.to_line(),
                _ => false,
            };
            if !same {
                let lead = ea.or(eb).expect("i < max(len)");
                divergence = Some(Divergence {
                    index: i,
                    at: lead.at.as_secs(),
                    seq: lead.seq,
                    kind: lead.event.kind(),
                    line_a: ea.map(TimedEvent::to_line),
                    line_b: eb.map(TimedEvent::to_line),
                });
                break;
            }
        }
        RunDiff {
            divergence,
            a: RunAnalysis::from_events(a),
            b: RunAnalysis::from_events(b),
        }
    }

    /// True when the streams are event-for-event identical.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }

    /// Renders the diff for terminal output.
    pub fn render(&self, label_a: &str, label_b: &str) -> String {
        let mut out = String::new();
        match &self.divergence {
            None => {
                let _ = writeln!(
                    out,
                    "streams identical: {} events, no divergence between {label_a} and {label_b}",
                    self.a.events
                );
            }
            Some(d) => {
                let _ = writeln!(
                    out,
                    "first divergence at event #{} (t={} seq={} kind={}):",
                    d.index, d.at, d.seq, d.kind
                );
                let _ = writeln!(
                    out,
                    "  {label_a}: {}",
                    d.line_a.as_deref().unwrap_or("<stream ended>")
                );
                let _ = writeln!(
                    out,
                    "  {label_b}: {}",
                    d.line_b.as_deref().unwrap_or("<stream ended>")
                );
            }
        }
        let _ = writeln!(out, "metric deltas ({label_b} − {label_a}):");
        for (name, va, vb) in self.metric_rows() {
            let delta = vb - va;
            if delta == 0.0 {
                continue;
            }
            let _ = writeln!(out, "  {name:<24} {va:>12.3} → {vb:>12.3}  ({delta:+.3})");
        }
        out
    }

    /// `(name, side_a, side_b)` rows for every compared metric, including
    /// the union of observed PDPA states.
    pub fn metric_rows(&self) -> Vec<(String, f64, f64)> {
        let (a, b) = (&self.a, &self.b);
        let mut rows = vec![
            ("events".to_string(), a.events as f64, b.events as f64),
            ("span_secs".to_string(), a.span_secs, b.span_secs),
            (
                "migrations".to_string(),
                a.migrations.migrations() as f64,
                b.migrations.migrations() as f64,
            ),
            (
                "initial_placements".to_string(),
                a.migrations.initial_placements as f64,
                b.migrations.initial_placements as f64,
            ),
            (
                "decisions".to_string(),
                a.decisions.total as f64,
                b.decisions.total as f64,
            ),
            (
                "realloc_penalty_secs".to_string(),
                a.decisions.realloc_penalty_secs,
                b.decisions.realloc_penalty_secs,
            ),
            (
                "avg_queue_wait_secs".to_string(),
                a.timeline.avg_queue_wait_secs,
                b.timeline.avg_queue_wait_secs,
            ),
            (
                "avg_response_secs".to_string(),
                a.timeline.avg_response_secs,
                b.timeline.avg_response_secs,
            ),
            (
                "avg_slowdown".to_string(),
                a.timeline.avg_slowdown,
                b.timeline.avg_slowdown,
            ),
            (
                "idle_cpu_secs".to_string(),
                a.cpus.idle_cpu_secs,
                b.cpus.idle_cpu_secs,
            ),
            (
                "frag_cpu_secs".to_string(),
                a.cpus.frag_cpu_secs,
                b.cpus.frag_cpu_secs,
            ),
            (
                "mpl_mean_running".to_string(),
                a.mpl.mean_running,
                b.mpl.mean_running,
            ),
            (
                "mpl_max_running".to_string(),
                a.mpl.max_running as f64,
                b.mpl.max_running as f64,
            ),
        ];
        let mut states: Vec<&'static str> = a
            .states
            .secs
            .keys()
            .chain(b.states.secs.keys())
            .copied()
            .collect();
        states.sort_unstable();
        states.dedup();
        for state in states {
            rows.push((
                format!("state_{state}_secs"),
                a.states.in_state(state),
                b.states.in_state(state),
            ));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_obs::ObsEvent;
    use pdpa_sim::{JobId, SimTime};

    fn te(at: f64, seq: u64, event: ObsEvent) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event,
        }
    }

    fn base() -> Vec<TimedEvent> {
        vec![
            te(0.0, 0, ObsEvent::JobSubmitted { job: JobId(0) }),
            te(1.0, 1, ObsEvent::JobDequeued { job: JobId(0) }),
            te(
                1.0,
                2,
                ObsEvent::JobStarted {
                    job: JobId(0),
                    request: 4,
                },
            ),
            te(9.0, 3, ObsEvent::JobFinished { job: JobId(0) }),
        ]
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        let d = RunDiff::compare(&base(), &base());
        assert!(d.identical());
        assert!(d.render("a", "b").contains("streams identical"));
    }

    #[test]
    fn first_divergence_is_pinpointed() {
        let a = base();
        let mut b = base();
        b[2] = te(
            1.0,
            2,
            ObsEvent::JobStarted {
                job: JobId(0),
                request: 8,
            },
        );
        let d = RunDiff::compare(&a, &b);
        let div = d.divergence.expect("diverges");
        assert_eq!(div.index, 2);
        assert_eq!(div.kind, "start");
        assert_eq!(div.seq, 2);
        assert!(div.line_a.unwrap().contains("request=4"));
        assert!(div.line_b.unwrap().contains("request=8"));
    }

    #[test]
    fn a_longer_stream_diverges_at_the_tail() {
        let a = base();
        let mut b = base();
        b.push(te(10.0, 4, ObsEvent::JobSubmitted { job: JobId(1) }));
        let d = RunDiff::compare(&a, &b);
        let div = d.divergence.as_ref().expect("diverges");
        assert_eq!(div.index, 4);
        assert!(div.line_a.is_none());
        assert!(div.line_b.is_some());
        assert!(d.render("a", "b").contains("<stream ended>"));
    }
}
