//! Trace analytics over recorded decision-event streams.
//!
//! The observability layer (`pdpa-obs`) records what the scheduler *did*;
//! this crate answers what the record *means*. It consumes the
//! `(sim_time, seq)`-ordered [`TimedEvent`](pdpa_obs::TimedEvent) streams
//! a [`RecordingObserver`](pdpa_obs::RecordingObserver) captures and
//! derives the quantities the paper's evaluation is built from:
//!
//! - **per-job timelines** ([`timeline`]) — queue wait (measured from the
//!   `dequeue` hand-off event, so it stays correct under faults and
//!   retries), run spans, response/execution/slowdown;
//! - **PDPA time-in-state** ([`states`]) — how long each application sat
//!   in `NO_REF`/`INC`/`DEC`/`STABLE`, reconstructed from `decision`
//!   transitions and `state` moves (§4.2's narration, quantified);
//! - **allocation stability** ([`stability`]) — migration and placement
//!   accounting recomputed from the raw `cpu` occupancy stream, matching
//!   the engine's own Table-2 counters for both the space-shared and the
//!   time-shared (IRIX) execution models;
//! - **capacity series** ([`series`]) — time-weighted busy/idle CPU
//!   seconds, fragmentation (idle capacity while jobs wait), and
//!   multiprogramming-level statistics (the Fig.-8 dynamics, summarized);
//! - **run diffs** ([`diff`]) — the first divergent event between two
//!   recorded runs plus per-metric deltas, for policy comparisons and
//!   regression hunts across commits.
//!
//! Everything funnels through [`RunAnalysis::from_events`]; the JSON
//! document ([`analysis_json`]) carries the `pdpa-analyze/v1` schema.

pub mod analysis;
pub mod diff;
pub mod series;
pub mod stability;
pub mod states;
pub mod timeline;

pub use analysis::{analysis_json, DecisionStats, RunAnalysis, ANALYSIS_SCHEMA};
pub use diff::{Divergence, RunDiff};
pub use series::{CpuSeries, MplStats};
pub use stability::MigrationStats;
pub use states::StateBreakdown;
pub use timeline::{JobTimeline, SlowdownDist, TimelineStats};
