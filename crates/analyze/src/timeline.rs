//! Per-job timelines: queue wait, run spans, response and slowdown.
//!
//! Queue wait is measured from the stream's explicit queue → start
//! hand-off (`dequeue` events), not inferred from `submit`/`start` gaps:
//! a crashed job re-enters the queue after its retry backoff, and only the
//! hand-off event tells how long the *queue* (rather than the backoff)
//! held it.

use pdpa_obs::{ObsEvent, TimedEvent};
use pdpa_sim::JobId;
use std::collections::BTreeMap;

/// The reconstructed lifecycle of one job.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobTimeline {
    /// Submission instant, seconds.
    pub submitted: Option<f64>,
    /// Processors requested at submission (from the first `start`).
    pub request: Option<usize>,
    /// Every start instant (more than one when the job retried).
    pub starts: Vec<f64>,
    /// Completion instant, when the job finished.
    pub finished: Option<f64>,
    /// Terminal-failure instant, when the job exhausted its retries.
    pub failed: Option<f64>,
    /// Retries scheduled after crashes.
    pub retries: u32,
    /// Total seconds spent waiting in the queue (every visit; retry
    /// backoff is excluded — the queue clock restarts when it expires).
    pub queue_wait_secs: f64,
    /// Total seconds spent running (sum of start → finish/crash spans).
    pub run_secs: f64,
}

impl JobTimeline {
    /// Submission → completion, seconds.
    pub fn response_secs(&self) -> Option<f64> {
        Some(self.finished? - self.submitted?)
    }

    /// First start → completion, seconds.
    pub fn execution_secs(&self) -> Option<f64> {
        Some(self.finished? - *self.starts.first()?)
    }

    /// Response over execution (≥ 1; the paper's slowdown measure).
    pub fn slowdown(&self) -> Option<f64> {
        let exec = self.execution_secs()?;
        if exec > 0.0 {
            Some(self.response_secs()? / exec)
        } else {
            None
        }
    }
}

/// Aggregates over every job of a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelineStats {
    /// Jobs observed (submitted or started).
    pub jobs: usize,
    /// Jobs that completed.
    pub finished: usize,
    /// Jobs that failed terminally.
    pub failed: usize,
    /// Total retries across all jobs.
    pub retries: u64,
    /// Mean queue wait over all jobs, seconds.
    pub avg_queue_wait_secs: f64,
    /// Mean response time over completed jobs, seconds.
    pub avg_response_secs: f64,
    /// Mean slowdown over completed jobs.
    pub avg_slowdown: f64,
    /// Distribution of per-job slowdowns over completed jobs, when any
    /// completed. The headline number for trace replays: means hide the
    /// tail jobs an allocation policy starves.
    pub slowdown_dist: Option<SlowdownDist>,
}

/// Quantiles of the per-job slowdown distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SlowdownDist {
    /// Median slowdown.
    pub p50: f64,
    /// 90th-percentile slowdown.
    pub p90: f64,
    /// 99th-percentile slowdown.
    pub p99: f64,
    /// Worst per-job slowdown.
    pub max: f64,
}

impl SlowdownDist {
    /// Computes the quantiles from an unordered sample; `None` when empty.
    /// Quantiles use the nearest-rank method over the sorted sample, so
    /// every reported value is an actually observed slowdown.
    pub fn from_samples(samples: &[f64]) -> Option<SlowdownDist> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("slowdowns are finite"));
        // Nearest rank in exact integer arithmetic: rank = ⌈percent·n/100⌉,
        // clamped into [1, n]. The float form `(q * n).ceil()` overshoots
        // whenever the product rounds just above an integer (0.9 × 70 =
        // 63.000000000000016 → rank 64 instead of 63), silently reporting
        // a deeper tail value than asked for.
        let rank = |percent: usize| {
            let idx = (percent * sorted.len())
                .div_ceil(100)
                .clamp(1, sorted.len());
            sorted[idx - 1]
        };
        Some(SlowdownDist {
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Replays a stream into per-job timelines.
pub fn job_timelines(events: &[TimedEvent]) -> BTreeMap<JobId, JobTimeline> {
    let mut jobs: BTreeMap<JobId, JobTimeline> = BTreeMap::new();
    // Per-job open-interval state: when the current queue wait began, and
    // when the current run span began.
    let mut wait_from: BTreeMap<JobId, f64> = BTreeMap::new();
    let mut running_since: BTreeMap<JobId, f64> = BTreeMap::new();
    for te in events {
        let now = te.at.as_secs();
        match &te.event {
            ObsEvent::JobSubmitted { job } => {
                jobs.entry(*job).or_default().submitted = Some(now);
                wait_from.insert(*job, now);
            }
            ObsEvent::JobDequeued { job } => {
                if let Some(since) = wait_from.remove(job) {
                    jobs.entry(*job).or_default().queue_wait_secs += (now - since).max(0.0);
                }
            }
            ObsEvent::JobStarted { job, request } => {
                let t = jobs.entry(*job).or_default();
                t.request.get_or_insert(*request);
                t.starts.push(now);
                running_since.insert(*job, now);
            }
            ObsEvent::JobFinished { job } => {
                let t = jobs.entry(*job).or_default();
                t.finished = Some(now);
                if let Some(since) = running_since.remove(job) {
                    t.run_secs += now - since;
                }
            }
            ObsEvent::JobRetried {
                job, backoff_secs, ..
            } => {
                let t = jobs.entry(*job).or_default();
                t.retries += 1;
                if let Some(since) = running_since.remove(job) {
                    t.run_secs += now - since;
                }
                // The job rejoins the queue once the backoff expires; queue
                // wait restarts there, not at the crash.
                wait_from.insert(*job, now + backoff_secs);
            }
            ObsEvent::JobFailed { job, .. } => {
                let t = jobs.entry(*job).or_default();
                t.failed = Some(now);
                if let Some(since) = running_since.remove(job) {
                    t.run_secs += now - since;
                }
                wait_from.remove(job);
            }
            _ => {}
        }
    }
    jobs
}

/// Summarizes timelines into run-level statistics.
pub fn summarize(jobs: &BTreeMap<JobId, JobTimeline>) -> TimelineStats {
    let mut s = TimelineStats {
        jobs: jobs.len(),
        ..TimelineStats::default()
    };
    let mut wait_sum = 0.0;
    let mut response_sum = 0.0;
    let mut slowdowns = Vec::new();
    for t in jobs.values() {
        wait_sum += t.queue_wait_secs;
        s.retries += u64::from(t.retries);
        if t.finished.is_some() {
            s.finished += 1;
        }
        if t.failed.is_some() {
            s.failed += 1;
        }
        if let Some(r) = t.response_secs() {
            response_sum += r;
        }
        if let Some(sd) = t.slowdown() {
            slowdowns.push(sd);
        }
    }
    if s.jobs > 0 {
        s.avg_queue_wait_secs = wait_sum / s.jobs as f64;
    }
    if s.finished > 0 {
        s.avg_response_secs = response_sum / s.finished as f64;
    }
    if !slowdowns.is_empty() {
        s.avg_slowdown = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
    }
    s.slowdown_dist = SlowdownDist::from_samples(&slowdowns);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_sim::SimTime;

    fn te(at: f64, seq: u64, event: ObsEvent) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event,
        }
    }

    #[test]
    fn queue_wait_comes_from_dequeue_events() {
        let j = JobId(0);
        let stream = vec![
            te(10.0, 0, ObsEvent::JobSubmitted { job: j }),
            te(14.0, 1, ObsEvent::JobDequeued { job: j }),
            te(14.0, 2, ObsEvent::JobStarted { job: j, request: 8 }),
            te(50.0, 3, ObsEvent::JobFinished { job: j }),
        ];
        let jobs = job_timelines(&stream);
        let t = &jobs[&j];
        assert_eq!(t.queue_wait_secs, 4.0);
        assert_eq!(t.run_secs, 36.0);
        assert_eq!(t.response_secs(), Some(40.0));
        assert_eq!(t.execution_secs(), Some(36.0));
        assert!((t.slowdown().unwrap() - 40.0 / 36.0).abs() < 1e-12);
    }

    #[test]
    fn retry_backoff_is_not_queue_wait() {
        let j = JobId(1);
        let stream = vec![
            te(0.0, 0, ObsEvent::JobSubmitted { job: j }),
            te(0.0, 1, ObsEvent::JobDequeued { job: j }),
            te(0.0, 2, ObsEvent::JobStarted { job: j, request: 4 }),
            // Crash at t=20 with a 30 s backoff: eligible again at t=50,
            // re-dequeued at t=58 → 8 s of genuine queue wait.
            te(
                20.0,
                3,
                ObsEvent::JobRetried {
                    job: j,
                    attempt: 1,
                    backoff_secs: 30.0,
                },
            ),
            te(58.0, 4, ObsEvent::JobDequeued { job: j }),
            te(58.0, 5, ObsEvent::JobStarted { job: j, request: 4 }),
            te(100.0, 6, ObsEvent::JobFinished { job: j }),
        ];
        let jobs = job_timelines(&stream);
        let t = &jobs[&j];
        assert_eq!(t.retries, 1);
        assert_eq!(t.queue_wait_secs, 8.0);
        assert_eq!(t.run_secs, 20.0 + 42.0);
        assert_eq!(t.starts.len(), 2);
        let stats = summarize(&jobs);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.finished, 1);
    }

    #[test]
    fn terminal_failure_closes_the_run_span() {
        let j = JobId(2);
        let stream = vec![
            te(0.0, 0, ObsEvent::JobSubmitted { job: j }),
            te(1.0, 1, ObsEvent::JobDequeued { job: j }),
            te(1.0, 2, ObsEvent::JobStarted { job: j, request: 2 }),
            te(
                9.0,
                3,
                ObsEvent::JobFailed {
                    job: j,
                    attempts: 3,
                },
            ),
        ];
        let jobs = job_timelines(&stream);
        let t = &jobs[&j];
        assert_eq!(t.failed, Some(9.0));
        assert_eq!(t.run_secs, 8.0);
        assert_eq!(t.response_secs(), None);
        let stats = summarize(&jobs);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.finished, 0);
        assert_eq!(stats.slowdown_dist, None, "no completed jobs");
    }

    #[test]
    fn slowdown_quantiles_use_nearest_rank() {
        // 100 samples: 1.0, 2.0, …, 100.0.
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = SlowdownDist::from_samples(&samples).unwrap();
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p90, 90.0);
        assert_eq!(d.p99, 99.0);
        assert_eq!(d.max, 100.0);
        // A single sample is every quantile at once.
        let one = SlowdownDist::from_samples(&[3.5]).unwrap();
        assert_eq!((one.p50, one.p90, one.p99, one.max), (3.5, 3.5, 3.5, 3.5));
        assert_eq!(SlowdownDist::from_samples(&[]), None);
    }

    #[test]
    fn quantile_rank_is_exact_at_awkward_sample_counts() {
        // Regression: with 70 samples, 0.9 × 70 = 63.000000000000016 in
        // floating point, so the old `(q * n).ceil()` rank picked the 64th
        // order statistic instead of the 63rd.
        let samples: Vec<f64> = (1..=70).map(f64::from).collect();
        let d = SlowdownDist::from_samples(&samples).unwrap();
        assert_eq!(d.p50, 35.0);
        assert_eq!(d.p90, 63.0);
        assert_eq!(d.p99, 70.0, "p99 of n < 100 is the max");
        assert_eq!(d.max, 70.0);
        // Small n: every quantile must stay inside the sample.
        for n in 1..=25usize {
            let samples: Vec<f64> = (1..=n).map(|v| v as f64).collect();
            let d = SlowdownDist::from_samples(&samples).unwrap();
            assert_eq!(d.p99, n as f64, "p99 at n={n} is the max");
            assert_eq!(d.max, n as f64);
        }
    }

    mod quantile_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Nearest-rank quantiles are ordered, and every reported value
            /// is a member of the sample (the defining property of the
            /// method).
            #[test]
            fn quantiles_are_ordered_sample_members(
                samples in proptest::collection::vec(1.0f64..1000.0, 1..300),
            ) {
                let d = SlowdownDist::from_samples(&samples).unwrap();
                prop_assert!(d.p50 <= d.p90);
                prop_assert!(d.p90 <= d.p99);
                prop_assert!(d.p99 <= d.max);
                for q in [d.p50, d.p90, d.p99, d.max] {
                    prop_assert!(
                        samples.contains(&q),
                        "quantile {} is not a sample member", q
                    );
                }
                if samples.len() < 100 {
                    let max = samples.iter().cloned().fold(f64::MIN, f64::max);
                    prop_assert_eq!(d.p99, max, "p99 of n < 100 is the max");
                }
            }
        }
    }

    #[test]
    fn summarize_reports_the_slowdown_distribution() {
        let mut stream = Vec::new();
        // Five jobs, all 10 s of execution, with waits 0,10,20,30,40 s →
        // slowdowns 1,2,3,4,5.
        for i in 0..5u32 {
            let j = JobId(i);
            let wait = f64::from(i) * 10.0;
            stream.push(te(0.0, u64::from(i) * 4, ObsEvent::JobSubmitted { job: j }));
            stream.push(te(
                wait,
                u64::from(i) * 4 + 1,
                ObsEvent::JobDequeued { job: j },
            ));
            stream.push(te(
                wait,
                u64::from(i) * 4 + 2,
                ObsEvent::JobStarted { job: j, request: 1 },
            ));
            stream.push(te(
                wait + 10.0,
                u64::from(i) * 4 + 3,
                ObsEvent::JobFinished { job: j },
            ));
        }
        let stats = summarize(&job_timelines(&stream));
        let d = stats.slowdown_dist.expect("five completed jobs");
        assert_eq!(d.p50, 3.0);
        assert_eq!(d.max, 5.0);
        assert!((stats.avg_slowdown - 3.0).abs() < 1e-12);
    }
}
