//! Time-weighted capacity and multiprogramming-level series.
//!
//! Two views of the same machine: [`cpu_series`] integrates the per-CPU
//! occupancy stream into busy/idle/fragmentation cpu-seconds, and
//! [`mpl_stats`] summarizes the engine's own `mpl` samples (the Fig.-8
//! dynamics) into time-weighted means and peaks. Fragmentation is the
//! paper's complaint about rigid allocation made measurable: idle
//! capacity accumulated *while at least one job was waiting* in the
//! queue.

use pdpa_obs::{ObsEvent, TimedEvent};
use pdpa_sim::JobId;

/// Integrated CPU-occupancy series over one recorded run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CpuSeries {
    /// Machine size: `DegradedCapacity`'s total when published, otherwise
    /// the highest CPU index seen plus one.
    pub cpus: usize,
    /// Occupied cpu-seconds integrated over the run.
    pub busy_cpu_secs: f64,
    /// Alive-but-idle cpu-seconds integrated over the run.
    pub idle_cpu_secs: f64,
    /// Idle cpu-seconds accumulated while ≥ 1 job was queued — capacity
    /// the scheduler could not hand to demonstrably waiting work.
    pub frag_cpu_secs: f64,
    /// Most CPUs simultaneously occupied.
    pub peak_busy: usize,
}

impl CpuSeries {
    /// Busy share of alive capacity, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_cpu_secs + self.idle_cpu_secs;
        if total > 0.0 {
            self.busy_cpu_secs / total
        } else {
            0.0
        }
    }
}

/// Multiprogramming-level statistics from the `mpl` sample stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MplStats {
    /// `mpl` samples observed.
    pub samples: usize,
    /// Time-weighted mean of concurrently running jobs.
    pub mean_running: f64,
    /// Time-weighted mean of total allocated processors.
    pub mean_allocated: f64,
    /// Peak concurrently running jobs.
    pub max_running: usize,
    /// Peak total allocated processors.
    pub max_allocated: usize,
}

/// Integrates the `cpu` occupancy stream (with `submit`/`dequeue`/`retry`
/// queue pressure and `cpu_failed`/`cpu_recovered` capacity changes) into
/// a [`CpuSeries`].
pub fn cpu_series(events: &[TimedEvent]) -> CpuSeries {
    let mut series = CpuSeries::default();
    // Machine size first: prefer the engine's own capacity report.
    let mut max_cpu = None::<usize>;
    for te in events {
        match &te.event {
            ObsEvent::DegradedCapacity { total, .. } => series.cpus = series.cpus.max(*total),
            ObsEvent::CpuAssigned { cpu, .. }
            | ObsEvent::CpuFailed { cpu }
            | ObsEvent::CpuRecovered { cpu } => {
                max_cpu = Some(max_cpu.unwrap_or(0).max(cpu.index()));
            }
            _ => {}
        }
    }
    if series.cpus == 0 {
        series.cpus = max_cpu.map_or(0, |m| m + 1);
    }
    if series.cpus == 0 {
        return series;
    }

    let mut occupant: Vec<Option<JobId>> = vec![None; series.cpus];
    let mut busy = 0usize;
    let mut dead = 0usize;
    let mut waiting = 0i64;
    let mut last = events.first().map_or(0.0, |te| te.at.as_secs());
    for te in events {
        let now = te.at.as_secs();
        let dt = (now - last).max(0.0);
        last = now;
        let idle = series.cpus.saturating_sub(dead).saturating_sub(busy);
        series.busy_cpu_secs += busy as f64 * dt;
        series.idle_cpu_secs += idle as f64 * dt;
        if waiting > 0 {
            series.frag_cpu_secs += idle as f64 * dt;
        }
        match &te.event {
            ObsEvent::CpuAssigned { cpu, job } => {
                let idx = cpu.index();
                if idx < occupant.len() {
                    match (occupant[idx], *job) {
                        (None, Some(_)) => busy += 1,
                        (Some(_), None) => busy -= 1,
                        _ => {}
                    }
                    occupant[idx] = *job;
                    series.peak_busy = series.peak_busy.max(busy);
                }
            }
            ObsEvent::CpuFailed { .. } => dead += 1,
            ObsEvent::CpuRecovered { .. } => dead = dead.saturating_sub(1),
            ObsEvent::JobSubmitted { .. } | ObsEvent::JobRetried { .. } => waiting += 1,
            ObsEvent::JobDequeued { .. } => waiting -= 1,
            _ => {}
        }
    }
    series
}

/// Summarizes the `mpl` sample stream into [`MplStats`]. Each sample's
/// values are weighted by how long they held (until the next sample, or
/// the end of the stream for the last one).
pub fn mpl_stats(events: &[TimedEvent]) -> MplStats {
    let mut stats = MplStats::default();
    let end = events.last().map_or(0.0, |te| te.at.as_secs());
    let mut open: Option<(f64, usize, usize)> = None;
    let mut weighted_running = 0.0;
    let mut weighted_alloc = 0.0;
    let mut span = 0.0;
    for te in events {
        if let ObsEvent::MplChanged {
            running,
            total_alloc,
        } = &te.event
        {
            let now = te.at.as_secs();
            if let Some((since, r, a)) = open.take() {
                let dt = (now - since).max(0.0);
                weighted_running += r as f64 * dt;
                weighted_alloc += a as f64 * dt;
                span += dt;
            }
            stats.samples += 1;
            stats.max_running = stats.max_running.max(*running);
            stats.max_allocated = stats.max_allocated.max(*total_alloc);
            open = Some((now, *running, *total_alloc));
        }
    }
    if let Some((since, r, a)) = open {
        let dt = (end - since).max(0.0);
        weighted_running += r as f64 * dt;
        weighted_alloc += a as f64 * dt;
        span += dt;
    }
    if span > 0.0 {
        stats.mean_running = weighted_running / span;
        stats.mean_allocated = weighted_alloc / span;
    } else if stats.samples > 0 {
        // All samples at one instant: fall back to the last values.
        if let Some((_, r, a)) = open {
            stats.mean_running = r as f64;
            stats.mean_allocated = a as f64;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_sim::{CpuId, SimTime};

    fn te(at: f64, seq: u64, event: ObsEvent) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event,
        }
    }

    fn assign(at: f64, seq: u64, cpu: u16, job: Option<u32>) -> TimedEvent {
        te(
            at,
            seq,
            ObsEvent::CpuAssigned {
                cpu: CpuId(cpu),
                job: job.map(JobId),
            },
        )
    }

    #[test]
    fn busy_idle_and_fragmentation_integrate() {
        let stream = vec![
            // 2-CPU machine (highest index 1). Job 0 takes CPU 0 at t=0.
            te(0.0, 0, ObsEvent::JobSubmitted { job: JobId(0) }),
            te(0.0, 1, ObsEvent::JobDequeued { job: JobId(0) }),
            assign(0.0, 2, 0, Some(0)),
            assign(0.0, 3, 1, None),
            // Job 1 arrives at t=10 and waits 5 s while CPU 1 sits idle.
            te(10.0, 4, ObsEvent::JobSubmitted { job: JobId(1) }),
            te(15.0, 5, ObsEvent::JobDequeued { job: JobId(1) }),
            assign(15.0, 6, 1, Some(1)),
            // Both release at t=20.
            assign(20.0, 7, 0, None),
            assign(20.0, 8, 1, None),
        ];
        let s = cpu_series(&stream);
        assert_eq!(s.cpus, 2);
        // CPU 0 busy 0..20, CPU 1 busy 15..20.
        assert!((s.busy_cpu_secs - 25.0).abs() < 1e-9);
        assert!((s.idle_cpu_secs - 15.0).abs() < 1e-9);
        // Fragmentation: CPU 1 idle while job 1 waited, t=10..15.
        assert!((s.frag_cpu_secs - 5.0).abs() < 1e-9);
        assert_eq!(s.peak_busy, 2);
        assert!((s.utilization() - 25.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn mpl_means_are_time_weighted() {
        let stream = vec![
            te(
                0.0,
                0,
                ObsEvent::MplChanged {
                    running: 1,
                    total_alloc: 8,
                },
            ),
            te(
                10.0,
                1,
                ObsEvent::MplChanged {
                    running: 3,
                    total_alloc: 32,
                },
            ),
            // Stream ends at t=30: the second sample holds for 20 s.
            te(30.0, 2, ObsEvent::JobFinished { job: JobId(0) }),
        ];
        let m = mpl_stats(&stream);
        assert_eq!(m.samples, 2);
        assert_eq!(m.max_running, 3);
        assert_eq!(m.max_allocated, 32);
        assert!((m.mean_running - (1.0 * 10.0 + 3.0 * 20.0) / 30.0).abs() < 1e-9);
        assert!((m.mean_allocated - (8.0 * 10.0 + 32.0 * 20.0) / 30.0).abs() < 1e-9);
    }
}
