//! PDPA time-in-state reconstruction (§4.2, quantified).
//!
//! The engine publishes the state machine's moves two ways: a `decision`
//! event carries the transition that changed an allocation, and a bare
//! `state` event records a move that kept the allocation (e.g.
//! `INC → STABLE` at the held width). Replaying both yields, per job, how
//! long each application sat in every state — the time the policy spent
//! searching (`NO_REF`/`INC`/`DEC`) versus settled (`STABLE`).

use pdpa_obs::{ObsEvent, TimedEvent};
use pdpa_sim::JobId;
use std::collections::BTreeMap;

/// Aggregate time-in-state over a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StateBreakdown {
    /// Seconds spent in each named state, summed over jobs.
    pub secs: BTreeMap<&'static str, f64>,
    /// State-machine moves observed (decisions with a transition plus
    /// bare state events).
    pub transitions: u64,
}

impl StateBreakdown {
    /// Total attributed seconds across all states.
    pub fn total_secs(&self) -> f64 {
        self.secs.values().sum()
    }

    /// Seconds attributed to one state (0 when never entered).
    pub fn in_state(&self, name: &str) -> f64 {
        self.secs.get(name).copied().unwrap_or(0.0)
    }
}

/// Replays a stream into the aggregate time-in-state breakdown.
///
/// A job's clock starts at its (most recent) `start` event: the span from
/// there to its first observed move is attributed to the move's *from*
/// state, later spans to the state currently held, and the span from the
/// last move to the job's finish (or the end of the stream) to the final
/// state.
pub fn time_in_state(events: &[TimedEvent]) -> StateBreakdown {
    let mut breakdown = StateBreakdown::default();
    // Per job: (state we are currently in, since when). `None` state means
    // the job started but has not moved yet — its span is attributed
    // retroactively by the first move's `from` name.
    let mut current: BTreeMap<JobId, (Option<&'static str>, f64)> = BTreeMap::new();
    let end = events.last().map_or(0.0, |te| te.at.as_secs());

    fn close(slot: Option<(Option<&'static str>, f64)>, now: f64, breakdown: &mut StateBreakdown) {
        if let Some((Some(state), since)) = slot {
            *breakdown.secs.entry(state).or_insert(0.0) += (now - since).max(0.0);
        }
    }

    for te in events {
        let now = te.at.as_secs();
        match &te.event {
            ObsEvent::JobStarted { job, .. } => {
                current.insert(*job, (None, now));
            }
            ObsEvent::Decision {
                job,
                transition: Some((from, to)),
                ..
            } => {
                breakdown.transitions += 1;
                let (state, since) = current.remove(job).unwrap_or((None, now));
                // An unobserved stretch (job started, no move yet) belongs
                // to the state the machine is now leaving.
                let leaving = state.unwrap_or(from);
                *breakdown.secs.entry(leaving).or_insert(0.0) += (now - since).max(0.0);
                current.insert(*job, (Some(to), now));
            }
            ObsEvent::StateChanged { job, from, to } => {
                breakdown.transitions += 1;
                let (state, since) = current.remove(job).unwrap_or((None, now));
                let leaving = state.unwrap_or(from);
                *breakdown.secs.entry(leaving).or_insert(0.0) += (now - since).max(0.0);
                current.insert(*job, (Some(to), now));
            }
            ObsEvent::JobFinished { job }
            | ObsEvent::JobFailed { job, .. }
            | ObsEvent::JobRetried { job, .. } => {
                close(current.remove(job), now, &mut breakdown);
            }
            _ => {}
        }
    }
    // Jobs still in flight at the end of the stream.
    for (_, slot) in std::mem::take(&mut current) {
        close(Some(slot), end, &mut breakdown);
    }
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_obs::DecisionTrigger;
    use pdpa_sim::SimTime;

    fn te(at: f64, seq: u64, event: ObsEvent) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event,
        }
    }

    #[test]
    fn spans_attribute_to_the_state_being_left() {
        let j = JobId(0);
        let stream = vec![
            te(
                0.0,
                0,
                ObsEvent::JobStarted {
                    job: j,
                    request: 16,
                },
            ),
            // 10 s unobserved → NO_REF (the state the first move leaves).
            te(
                10.0,
                1,
                ObsEvent::Decision {
                    trigger: DecisionTrigger::Report,
                    job: j,
                    from_alloc: 16,
                    to_alloc: 12,
                    transition: Some(("NO_REF", "DEC")),
                },
            ),
            // 5 s in DEC, then settle.
            te(
                15.0,
                2,
                ObsEvent::StateChanged {
                    job: j,
                    from: "DEC",
                    to: "STABLE",
                },
            ),
            // 20 s in STABLE until completion.
            te(35.0, 3, ObsEvent::JobFinished { job: j }),
        ];
        let b = time_in_state(&stream);
        assert_eq!(b.transitions, 2);
        assert_eq!(b.in_state("NO_REF"), 10.0);
        assert_eq!(b.in_state("DEC"), 5.0);
        assert_eq!(b.in_state("STABLE"), 20.0);
        assert_eq!(b.in_state("INC"), 0.0);
        assert!((b.total_secs() - 35.0).abs() < 1e-12);
    }

    #[test]
    fn open_states_close_at_stream_end() {
        let j = JobId(1);
        let stream = vec![
            te(0.0, 0, ObsEvent::JobStarted { job: j, request: 4 }),
            te(
                2.0,
                1,
                ObsEvent::StateChanged {
                    job: j,
                    from: "NO_REF",
                    to: "STABLE",
                },
            ),
            te(
                12.0,
                2,
                ObsEvent::MplChanged {
                    running: 1,
                    total_alloc: 4,
                },
            ),
        ];
        let b = time_in_state(&stream);
        assert_eq!(b.in_state("NO_REF"), 2.0);
        assert_eq!(b.in_state("STABLE"), 10.0);
    }
}
