//! Property test: the calendar queue is observationally identical to the
//! binary-heap event queue.
//!
//! A randomized script of `push`, `push_batch`, `push_keyed`,
//! `invalidate_key`, `pop`, and `pop_valid` operations is replayed
//! against three queues — the heap [`EventQueue`], the bucketed
//! [`CalendarQueue`], and the migrating [`AdaptiveQueue`] — asserting
//! after every step that popped `(time, payload)` pairs, `peek_time`,
//! lengths, and the pushed/popped/stale counters all agree. Timestamps
//! mix dense clusters, exact ties, and far-future outliers so the
//! calendar's bucket resize and sparse-lap fallback paths are exercised,
//! and the script length straddles [`AdaptiveQueue::UPGRADE_AT`] so the
//! heap → calendar migration happens mid-stream.

use proptest::prelude::*;

use pdpa_sim::{AdaptiveQueue, CalendarQueue, EventQueue, SimTime};

/// One scripted queue operation.
#[derive(Clone, Debug)]
enum Op {
    Push(f64),
    PushKeyed(f64, u64),
    /// Batch of plain pushes (calendar and heap both assign seqs in
    /// slice order).
    PushBatch(Vec<f64>),
    InvalidateKey(u64),
    Pop,
    /// Pop through the payload predicate `payload % 3 != 0`.
    PopValid,
    Peek,
}

fn arb_time() -> impl Strategy<Value = f64> {
    prop_oneof![
        // Dense cluster with frequent exact ties.
        (0u32..200).prop_map(|k| f64::from(k) * 0.5),
        // Spread-out mid-range times.
        0.0f64..10_000.0,
        // Sparse far-future outliers (forces the calendar's full-lap
        // fallback and cursor jumps).
        1.0e6f64..1.0e8,
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! picks uniformly; duplicate the hot arms
    // to weight pushes and pops over the rarer structural ops.
    prop_oneof![
        arb_time().prop_map(Op::Push),
        arb_time().prop_map(Op::Push),
        (arb_time(), 0u64..24).prop_map(|(t, k)| Op::PushKeyed(t, k)),
        (arb_time(), 0u64..24).prop_map(|(t, k)| Op::PushKeyed(t, k)),
        proptest::collection::vec(arb_time(), 1..40).prop_map(Op::PushBatch),
        (0u64..24).prop_map(Op::InvalidateKey),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::PopValid),
        Just(Op::Peek),
    ]
}

/// Drives one op against a queue through a unified closure surface so the
/// same script lands on all implementations identically.
macro_rules! apply_op {
    ($q:expr, $op:expr, $payload:expr) => {
        match $op {
            Op::Push(t) => {
                $q.push(SimTime::from_secs(*t), $payload);
                None
            }
            Op::PushKeyed(t, k) => {
                $q.push_keyed(SimTime::from_secs(*t), *k, $payload);
                None
            }
            Op::PushBatch(ts) => {
                let base = $payload;
                $q.push_batch(
                    ts.iter()
                        .enumerate()
                        .map(|(i, t)| (SimTime::from_secs(*t), base + i as u64)),
                );
                None
            }
            Op::InvalidateKey(k) => {
                $q.invalidate_key(*k);
                None
            }
            Op::Pop => Some($q.pop()),
            Op::PopValid => Some($q.pop_valid(|e| e % 3 != 0)),
            Op::Peek => {
                let _ = $q.peek_time();
                None
            }
        }
    };
}

fn run_script(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut heap: EventQueue<u64> = EventQueue::new();
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    let mut ada: AdaptiveQueue<u64> = AdaptiveQueue::new();
    let mut payload: u64 = 0;
    for op in ops {
        let h = apply_op!(heap, op, payload);
        let c = apply_op!(cal, op, payload);
        let a = apply_op!(ada, op, payload);
        if let Op::PushBatch(ts) = op {
            payload += ts.len() as u64;
        } else {
            payload += 1;
        }
        prop_assert_eq!(&h, &c, "heap vs calendar pop mismatch on {:?}", op);
        prop_assert_eq!(&h, &a, "heap vs adaptive pop mismatch on {:?}", op);
        prop_assert_eq!(heap.peek_time(), cal.peek_time());
        prop_assert_eq!(heap.peek_time(), ada.peek_time());
        prop_assert_eq!(heap.len(), cal.len());
        prop_assert_eq!(heap.len(), ada.len());
        prop_assert_eq!(heap.total_pushed(), cal.total_pushed());
        prop_assert_eq!(heap.total_popped(), cal.total_popped());
        prop_assert_eq!(heap.stale_drops(), cal.stale_drops());
        prop_assert_eq!(heap.total_pushed(), ada.total_pushed());
        prop_assert_eq!(heap.total_popped(), ada.total_popped());
        prop_assert_eq!(heap.stale_drops(), ada.stale_drops());
    }
    // Drain everything left: the full remaining pop order must agree.
    loop {
        let h = heap.pop();
        prop_assert_eq!(&h, &cal.pop());
        prop_assert_eq!(&h, &ada.pop());
        if h.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Short mixed scripts: every op interleaving agrees across all
    /// three queue implementations.
    #[test]
    fn mixed_scripts_agree(ops in proptest::collection::vec(arb_op(), 1..120)) {
        run_script(&ops)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Long push-heavy scripts crossing the adaptive upgrade threshold:
    /// the heap → calendar migration must not disturb order, key
    /// invalidation, or counters.
    #[test]
    fn migration_preserves_order(
        times in proptest::collection::vec(arb_time(), 5_000..6_000),
        invalidate in proptest::collection::vec(0u64..24, 0..10),
    ) {
        let mut ops: Vec<Op> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                if i % 3 == 0 {
                    Op::PushKeyed(t, (i % 24) as u64)
                } else {
                    Op::Push(t)
                }
            })
            .collect();
        for k in invalidate {
            ops.push(Op::InvalidateKey(k));
        }
        for _ in 0..64 {
            ops.push(Op::Pop);
        }
        run_script(&ops)?;
    }
}
