//! A calendar (bucketed) event queue and the size-adaptive wrapper.
//!
//! [`CalendarQueue`] is the classic Brown calendar queue specialized for
//! the engine's access pattern: millions of events whose timestamps are
//! spread roughly uniformly at a stable density. Events hash into
//! `nbuckets` circular day-buckets of `width` seconds; a pop scans only
//! the cursor's bucket for the earliest entry of the current "day", so
//! push and pop are O(1) amortized instead of the binary heap's
//! O(log n). The queue resizes itself (doubling or halving the bucket
//! count and re-estimating the width from the backlog's time span)
//! whenever the occupancy drifts away from ~1 entry per bucket, and
//! memoizes the located minimum so repeated peeks between mutations are
//! O(1).
//!
//! The public surface is identical to [`EventQueue`]: FIFO tie-breaking
//! via a global sequence counter and generation-keyed lazy deletion —
//! the equivalence is property-tested by driving both queues with the
//! same randomized script (`crates/sim/tests/queue_equivalence.rs`).
//!
//! [`AdaptiveQueue`] front-ends both implementations: it starts as a
//! heap (lower constant factor at small sizes) and migrates everything —
//! pending entries, sequence counter, key generations, and statistics —
//! into a calendar once the backlog crosses
//! [`AdaptiveQueue::UPGRADE_AT`]. Pop order is unaffected by the
//! migration point, so callers observe one continuous queue.

use std::cell::Cell;
use std::collections::HashMap;

use crate::event::EventQueue;
use crate::time::SimTime;

/// One stored event. Ordering is by `(at, seq)`; `seq` is globally
/// monotone so same-instant entries pop FIFO.
#[derive(Debug)]
struct CEntry<E> {
    at: SimTime,
    seq: u64,
    /// `(key, generation at push time)` for invalidatable entries.
    key: Option<(u64, u64)>,
    payload: E,
}

/// A bucketed priority queue of `(SimTime, payload)` entries with FIFO
/// tie-breaking and generation-keyed lazy deletion — the calendar-queue
/// counterpart of [`EventQueue`], with the same observable behavior.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<CEntry<E>>>,
    /// Bucket count; always a power of two so the day index masks.
    nbuckets: usize,
    /// Bucket width in seconds.
    width: f64,
    /// The day index (`floor(at / width)`) the cursor is on: every
    /// remaining entry has a day index ≥ `current_day` (pushes into the
    /// past move the cursor back to keep the invariant).
    current_day: u64,
    /// Live + stale entries currently stored.
    len: usize,
    /// Memoized location of the minimum entry `(bucket, index, day)`.
    /// Interior mutability lets `peek_time(&self)` reuse one `locate`
    /// walk across repeated peeks (the sharded engine peeks every shard
    /// queue at every barrier round); cleared whenever stored positions
    /// can shift (pop's `swap_remove`, rebuilds) and updated in place on
    /// push, which only appends.
    cache: Cell<Option<(usize, usize, u64)>>,
    /// Current generation per key — see [`EventQueue::invalidate_key`].
    generations: HashMap<u64, u64>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
    stale: u64,
}

/// Day index of an instant at a given bucket width. Monotone in `at`,
/// computed identically at push and pop time so an entry can never be
/// misfiled relative to the cursor.
#[inline]
fn day_of(at: SimTime, width: f64) -> u64 {
    (at.as_secs() / width) as u64
}

impl<E> CalendarQueue<E> {
    /// Initial bucket count.
    const INITIAL_BUCKETS: usize = 16;
    /// Bucket-count ceiling (2²⁰ buckets ≈ 8 MiB of `Vec` headers).
    const MAX_BUCKETS: usize = 1 << 20;

    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..Self::INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            nbuckets: Self::INITIAL_BUCKETS,
            width: 1.0,
            current_day: 0,
            len: 0,
            cache: Cell::new(None),
            generations: HashMap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
            stale: 0,
        }
    }

    /// Rebuilds an entire queue from migrated raw state (see
    /// [`EventQueue::into_raw_parts`]); pop order and all counters
    /// continue exactly where the source queue left off.
    #[allow(clippy::type_complexity)]
    pub(crate) fn from_raw_parts(
        entries: Vec<(SimTime, u64, Option<(u64, u64)>, E)>,
        generations: HashMap<u64, u64>,
        next_seq: u64,
        pushed: u64,
        popped: u64,
        stale: u64,
    ) -> Self {
        let mut q = CalendarQueue {
            buckets: Vec::new(),
            nbuckets: 0,
            width: 1.0,
            current_day: 0,
            len: entries.len(),
            cache: Cell::new(None),
            generations,
            next_seq,
            pushed,
            popped,
            stale,
        };
        let entries: Vec<CEntry<E>> = entries
            .into_iter()
            .map(|(at, seq, key, payload)| CEntry {
                at,
                seq,
                key,
                payload,
            })
            .collect();
        let target = (entries.len().max(Self::INITIAL_BUCKETS)).next_power_of_two();
        q.rebuild(entries, target.min(Self::MAX_BUCKETS));
        q
    }

    /// Redistributes `entries` over `nbuckets` buckets, re-estimating the
    /// width from the observed event density and repositioning the cursor
    /// on the earliest remaining day.
    fn rebuild(&mut self, entries: Vec<CEntry<E>>, nbuckets: usize) {
        self.cache.set(None);
        self.width = Self::estimate_width(&entries);
        self.nbuckets = nbuckets;
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.current_day = entries
            .iter()
            .map(|e| day_of(e.at, self.width))
            .min()
            .unwrap_or(0);
        let mask = nbuckets - 1;
        for e in entries {
            let b = (day_of(e.at, self.width) as usize) & mask;
            self.buckets[b].push(e);
        }
    }

    /// Bucket width from the backlog's full time span: `2·span/len`
    /// targets ~2 entries per day. Using the span (not sampled gaps)
    /// matters for long-tailed backlogs: a sample drawn from a dense
    /// region underestimates the width by orders of magnitude, the day
    /// count explodes past the bucket count, and every `locate` walks a
    /// full lap before falling back to the O(n) scan. The span estimate
    /// bounds the total days at `len/2 ≤ 2·nbuckets`, so a lap always
    /// covers the whole backlog.
    fn estimate_width(entries: &[CEntry<E>]) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for e in entries {
            let s = e.at.as_secs();
            lo = lo.min(s);
            hi = hi.max(s);
        }
        let span = hi - lo;
        if entries.len() < 2 || span <= 0.0 {
            1.0
        } else {
            (2.0 * span / entries.len() as f64).max(1e-9)
        }
    }

    /// Collects every stored entry (order unspecified), leaving the
    /// buckets empty but counters intact.
    fn drain_entries(&mut self) -> Vec<CEntry<E>> {
        let mut all = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.append(b);
        }
        all
    }

    /// Grows or shrinks the bucket array when occupancy drifts from the
    /// ~1–2 entries/bucket sweet spot.
    fn maybe_resize(&mut self) {
        if self.len > 2 * self.nbuckets && self.nbuckets < Self::MAX_BUCKETS {
            let entries = self.drain_entries();
            let n = self.nbuckets * 2;
            self.rebuild(entries, n);
        } else if self.len < self.nbuckets / 4 && self.nbuckets > Self::INITIAL_BUCKETS {
            let entries = self.drain_entries();
            let n = (self.nbuckets / 2).max(Self::INITIAL_BUCKETS);
            self.rebuild(entries, n);
        }
    }

    fn insert(&mut self, e: CEntry<E>) {
        let day = day_of(e.at, self.width);
        // A push behind the cursor (possible through the public API, the
        // engine never does it) moves the cursor back so the entry is
        // still found first.
        if self.len == 0 || day < self.current_day {
            self.current_day = day;
        }
        let b = (day as usize) & (self.nbuckets - 1);
        let new_order = (e.at, e.seq);
        self.buckets[b].push(e);
        self.len += 1;
        // Keep the memoized minimum exact: replace it when the new entry
        // sorts first, keep it otherwise (appends never move entries).
        match self.cache.get() {
            Some((cb, ci, _)) => {
                let cur = &self.buckets[cb][ci];
                if new_order < (cur.at, cur.seq) {
                    self.cache.set(Some((b, self.buckets[b].len() - 1, day)));
                }
            }
            None if self.len == 1 => {
                self.cache.set(Some((b, self.buckets[b].len() - 1, day)));
            }
            None => {}
        }
        self.maybe_resize();
    }

    /// Schedules `payload` at instant `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.insert(CEntry {
            at,
            seq,
            key: None,
            payload,
        });
    }

    /// Schedules `payload` at instant `at` under `key` for later lazy
    /// invalidation — same contract as [`EventQueue::push_keyed`].
    pub fn push_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        let generation = self.generations.get(&key).copied().unwrap_or(0);
        self.insert(CEntry {
            at,
            seq,
            key: Some((key, generation)),
            payload,
        });
    }

    /// Schedules a batch of events; sequence numbers are assigned in
    /// slice order, so same-instant batch entries pop FIFO exactly as if
    /// pushed one by one — same contract as [`EventQueue::push_batch`].
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = (SimTime, E)>) {
        for (at, payload) in events {
            self.push(at, payload);
        }
    }

    /// Marks every entry currently pushed under `key` as stale — same
    /// contract as [`EventQueue::invalidate_key`]. O(1).
    pub fn invalidate_key(&mut self, key: u64) {
        *self.generations.entry(key).or_insert(0) += 1;
    }

    /// True if `entry` was invalidated after it was pushed.
    fn is_stale(&self, entry: &CEntry<E>) -> bool {
        match entry.key {
            Some((key, generation)) => {
                self.generations.get(&key).copied().unwrap_or(0) != generation
            }
            None => false,
        }
    }

    /// Finds the earliest entry: `(bucket, index-in-bucket, its day)`.
    /// Memoized — repeated peeks between mutations are O(1).
    fn locate(&self) -> Option<(usize, usize, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some(c) = self.cache.get() {
            return Some(c);
        }
        let found = self.locate_uncached();
        self.cache.set(found);
        found
    }

    /// The actual walk behind [`locate`](Self::locate): day windows from
    /// the cursor; after a full lap over empty windows (the backlog is
    /// sparse relative to the width) it falls back to a direct O(n) min
    /// scan — rare by construction, and the cursor then jumps straight
    /// to the found day.
    fn locate_uncached(&self) -> Option<(usize, usize, u64)> {
        let mask = self.nbuckets - 1;
        let mut day = self.current_day;
        for _ in 0..self.nbuckets {
            let b = (day as usize) & mask;
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (i, e) in self.buckets[b].iter().enumerate() {
                if day_of(e.at, self.width) != day {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, at, seq)) => (e.at, e.seq) < (at, seq),
                };
                if better {
                    best = Some((i, e.at, e.seq));
                }
            }
            if let Some((i, _, _)) = best {
                return Some((b, i, day));
            }
            day += 1;
        }
        // Sparse backlog: locate the global minimum directly.
        let mut best: Option<(usize, usize, SimTime, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some((_, _, at, seq)) => (e.at, e.seq) < (at, seq),
                };
                if better {
                    best = Some((b, i, e.at, e.seq));
                }
            }
        }
        best.map(|(b, i, at, _)| (b, i, day_of(at, self.width)))
    }

    /// Removes and returns the earliest live event, discarding stale
    /// keyed entries along the way — same contract as
    /// [`EventQueue::pop`].
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let (b, i, day) = self.locate()?;
            self.current_day = day;
            let e = self.buckets[b].swap_remove(i);
            self.cache.set(None);
            self.len -= 1;
            self.popped += 1;
            let stale = self.is_stale(&e);
            if stale {
                self.stale += 1;
                self.maybe_resize();
                continue;
            }
            self.maybe_resize();
            return Some((e.at, e.payload));
        }
    }

    /// Removes and returns the earliest live event for which `valid`
    /// also holds — same contract as [`EventQueue::pop_valid`].
    pub fn pop_valid(&mut self, mut valid: impl FnMut(&E) -> bool) -> Option<(SimTime, E)> {
        loop {
            let (at, payload) = self.pop()?;
            if valid(&payload) {
                return Some((at, payload));
            }
        }
    }

    /// Removes and returns the earliest live event at or before `t` —
    /// same contract as [`EventQueue::pop_due`]. Stale heads sitting
    /// before `t` are discarded rather than letting their timestamps
    /// stand in for the first live event's.
    pub fn pop_due(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        loop {
            let (b, i, day) = self.locate()?;
            if self.buckets[b][i].at > t && !self.is_stale(&self.buckets[b][i]) {
                return None;
            }
            self.current_day = day;
            let e = self.buckets[b].swap_remove(i);
            self.cache.set(None);
            self.len -= 1;
            self.popped += 1;
            let stale = self.is_stale(&e);
            self.maybe_resize();
            if stale {
                self.stale += 1;
                continue;
            }
            return Some((e.at, e.payload));
        }
    }

    /// The timestamp of the earliest pending entry — possibly a stale
    /// one, exactly like [`EventQueue::peek_time`].
    pub fn peek_time(&self) -> Option<SimTime> {
        self.locate().map(|(b, i, _)| self.buckets[b][i].at)
    }

    /// Number of pending entries, stale ones included.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime, stale discards
    /// included.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Total keyed entries discarded as stale over the queue's lifetime.
    pub fn stale_drops(&self) -> u64 {
        self.stale
    }

    /// One-call snapshot of the queue-op counters — see
    /// [`EventQueue::stats`](crate::EventQueue::stats).
    pub fn stats(&self) -> crate::event::QueueStats {
        crate::event::QueueStats {
            pushed: self.pushed,
            popped: self.popped,
            stale_drops: self.stale,
            len: self.len(),
        }
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Which implementation an [`AdaptiveQueue`] is currently running on.
#[derive(Debug)]
enum Backend<E> {
    /// Binary heap: lower constant factor while the backlog is small.
    Heap(EventQueue<E>),
    /// Calendar queue: O(1) amortized once the backlog is large.
    Calendar(CalendarQueue<E>),
}

/// An event queue that picks its implementation by backlog size.
///
/// Starts as a [`EventQueue`] (binary heap) and migrates to a
/// [`CalendarQueue`] the first time the backlog reaches
/// [`UPGRADE_AT`](Self::UPGRADE_AT) entries; it never migrates back. The
/// explicit [`heap`](Self::heap) and [`calendar`](Self::calendar)
/// constructors pin one implementation for tests and benchmarks. Pop
/// order, key invalidation, and the traffic counters are identical
/// across all three configurations.
#[derive(Debug)]
pub struct AdaptiveQueue<E> {
    backend: Backend<E>,
    /// When true, the queue never migrates off its initial backend.
    pinned: bool,
}

impl<E> AdaptiveQueue<E> {
    /// Backlog size at which an unpinned queue upgrades to a calendar.
    /// Below this the heap's tighter inner loop wins; above it the
    /// calendar's O(1) pops do.
    pub const UPGRADE_AT: usize = 4096;

    /// Creates an adaptive queue (heap now, calendar at scale).
    pub fn new() -> Self {
        AdaptiveQueue {
            backend: Backend::Heap(EventQueue::new()),
            pinned: false,
        }
    }

    /// Creates a queue pinned to the binary-heap implementation.
    pub fn heap() -> Self {
        AdaptiveQueue {
            backend: Backend::Heap(EventQueue::new()),
            pinned: true,
        }
    }

    /// Creates a queue pinned to the calendar implementation.
    pub fn calendar() -> Self {
        AdaptiveQueue {
            backend: Backend::Calendar(CalendarQueue::new()),
            pinned: true,
        }
    }

    /// True when the calendar backend is active (test/bench
    /// introspection).
    pub fn is_calendar(&self) -> bool {
        matches!(self.backend, Backend::Calendar(_))
    }

    /// Migrates heap → calendar once the backlog warrants it.
    fn maybe_upgrade(&mut self) {
        if self.pinned || self.len() < Self::UPGRADE_AT {
            return;
        }
        if let Backend::Heap(h) = &mut self.backend {
            let h = std::mem::take(h);
            let (entries, generations, next_seq, pushed, popped, stale) = h.into_raw_parts();
            self.backend = Backend::Calendar(CalendarQueue::from_raw_parts(
                entries,
                generations,
                next_seq,
                pushed,
                popped,
                stale,
            ));
        }
    }

    /// Schedules `payload` at instant `at` — see [`EventQueue::push`].
    pub fn push(&mut self, at: SimTime, payload: E) {
        match &mut self.backend {
            Backend::Heap(q) => q.push(at, payload),
            Backend::Calendar(q) => q.push(at, payload),
        }
        self.maybe_upgrade();
    }

    /// Schedules `payload` under `key` — see [`EventQueue::push_keyed`].
    pub fn push_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        match &mut self.backend {
            Backend::Heap(q) => q.push_keyed(at, key, payload),
            Backend::Calendar(q) => q.push_keyed(at, key, payload),
        }
        self.maybe_upgrade();
    }

    /// Schedules a batch of events — see [`EventQueue::push_batch`].
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = (SimTime, E)>) {
        match &mut self.backend {
            Backend::Heap(q) => q.push_batch(events),
            Backend::Calendar(q) => q.push_batch(events),
        }
        self.maybe_upgrade();
    }

    /// Marks entries under `key` stale — see
    /// [`EventQueue::invalidate_key`].
    pub fn invalidate_key(&mut self, key: u64) {
        match &mut self.backend {
            Backend::Heap(q) => q.invalidate_key(key),
            Backend::Calendar(q) => q.invalidate_key(key),
        }
    }

    /// Pops the earliest live event — see [`EventQueue::pop`].
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Heap(q) => q.pop(),
            Backend::Calendar(q) => q.pop(),
        }
    }

    /// Pops the earliest live event passing `valid` — see
    /// [`EventQueue::pop_valid`].
    pub fn pop_valid(&mut self, valid: impl FnMut(&E) -> bool) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Heap(q) => q.pop_valid(valid),
            Backend::Calendar(q) => q.pop_valid(valid),
        }
    }

    /// Pops the earliest live event at or before `t` — see
    /// [`EventQueue::pop_due`].
    pub fn pop_due(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Heap(q) => q.pop_due(t),
            Backend::Calendar(q) => q.pop_due(t),
        }
    }

    /// Earliest pending timestamp — see [`EventQueue::peek_time`].
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(q) => q.peek_time(),
            Backend::Calendar(q) => q.peek_time(),
        }
    }

    /// Number of pending entries, stale ones included.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(q) => q.len(),
            Backend::Calendar(q) => q.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        match &self.backend {
            Backend::Heap(q) => q.total_pushed(),
            Backend::Calendar(q) => q.total_pushed(),
        }
    }

    /// Total events popped, stale discards included.
    pub fn total_popped(&self) -> u64 {
        match &self.backend {
            Backend::Heap(q) => q.total_popped(),
            Backend::Calendar(q) => q.total_popped(),
        }
    }

    /// Total keyed entries discarded as stale.
    pub fn stale_drops(&self) -> u64 {
        match &self.backend {
            Backend::Heap(q) => q.stale_drops(),
            Backend::Calendar(q) => q.stale_drops(),
        }
    }

    /// One-call snapshot of the queue-op counters — see
    /// [`EventQueue::stats`](crate::EventQueue::stats).
    pub fn stats(&self) -> crate::event::QueueStats {
        match &self.backend {
            Backend::Heap(q) => q.stats(),
            Backend::Calendar(q) => q.stats(),
        }
    }
}

impl<E> Default for AdaptiveQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(t(3.0), "c");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.push(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn pop_due_matches_heap_semantics() {
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        cal.push_keyed(t(1.0), 7, "stale");
        heap.push_keyed(t(1.0), 7, "stale");
        cal.push(t(5.0), "live");
        heap.push(t(5.0), "live");
        cal.push(t(9.0), "later");
        heap.push(t(9.0), "later");
        cal.invalidate_key(7);
        heap.invalidate_key(7);
        for barrier in [2.0, 5.0, 6.0, 9.0, 10.0] {
            loop {
                let (a, b) = (cal.pop_due(t(barrier)), heap.pop_due(t(barrier)));
                assert_eq!(a, b, "barrier {barrier}");
                if a.is_none() {
                    break;
                }
            }
        }
        assert_eq!(cal.stale_drops(), heap.stale_drops());
        assert_eq!(cal.total_popped(), heap.total_popped());
    }

    #[test]
    fn adaptive_pop_due_delegates_on_both_backends() {
        for mut q in [AdaptiveQueue::heap(), AdaptiveQueue::calendar()] {
            q.push(t(2.0), "b");
            q.push(t(1.0), "a");
            assert_eq!(q.pop_due(t(1.5)), Some((t(1.0), "a")));
            assert_eq!(q.pop_due(t(1.5)), None);
            assert_eq!(q.pop_due(t(2.0)), Some((t(2.0), "b")));
        }
    }

    #[test]
    fn survives_resizes_and_sparse_jumps() {
        // Enough entries to force several grows, spread over wildly
        // different densities: a dense cluster, a sparse tail, and a
        // far-future outlier exercising the full-lap fallback.
        let mut q = CalendarQueue::new();
        let mut expect: Vec<(f64, u32)> = Vec::new();
        for i in 0..5_000u32 {
            let at = f64::from(i % 997) * 0.01;
            q.push(t(at), i);
            expect.push((at, i));
        }
        q.push(t(1.0e6), 999_999);
        expect.push((1.0e6, 999_999));
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let got: Vec<(f64, u32)> =
            std::iter::from_fn(|| q.pop().map(|(at, e)| (at.as_secs(), e))).collect();
        assert_eq!(got, expect);
        assert!(q.is_empty());
    }

    #[test]
    fn invalidated_keys_drop_lazily() {
        let mut q = CalendarQueue::new();
        q.push_keyed(t(1.0), 7, "old");
        q.push(t(2.0), "plain");
        q.invalidate_key(7);
        q.push_keyed(t(3.0), 7, "new");
        assert_eq!(q.pop(), Some((t(2.0), "plain")));
        assert_eq!(q.pop(), Some((t(3.0), "new")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.stale_drops(), 1);
        assert_eq!(q.total_popped(), 3);
    }

    #[test]
    fn peek_matches_next_pop_time() {
        let mut q = CalendarQueue::new();
        q.push(t(4.0), "x");
        q.push(t(2.5), "y");
        assert_eq!(q.peek_time(), Some(t(2.5)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t(2.5), "y")));
    }

    #[test]
    fn pushes_behind_the_cursor_are_found() {
        let mut q = CalendarQueue::new();
        q.push(t(100.0), "later");
        assert_eq!(q.pop(), Some((t(100.0), "later")));
        // The cursor sits at day(100); a push at 1.0 must still pop first.
        q.push(t(200.0), "tail");
        q.push(t(1.0), "early");
        assert_eq!(q.pop(), Some((t(1.0), "early")));
        assert_eq!(q.pop(), Some((t(200.0), "tail")));
    }

    #[test]
    fn adaptive_upgrades_at_threshold_without_reordering() {
        let mut adaptive = AdaptiveQueue::new();
        let mut pinned = AdaptiveQueue::heap();
        assert!(!adaptive.is_calendar());
        let n = AdaptiveQueue::<usize>::UPGRADE_AT + 500;
        for i in 0..n {
            let at = t((i * 7919 % 10_007) as f64 * 0.1);
            adaptive.push_keyed(at, (i % 64) as u64, i);
            pinned.push_keyed(at, (i % 64) as u64, i);
        }
        adaptive.invalidate_key(13);
        pinned.invalidate_key(13);
        assert!(adaptive.is_calendar(), "upgraded past the threshold");
        assert!(!pinned.is_calendar(), "pinned heap never migrates");
        loop {
            let (a, b) = (adaptive.pop(), pinned.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(adaptive.total_pushed(), pinned.total_pushed());
        assert_eq!(adaptive.total_popped(), pinned.total_popped());
        assert_eq!(adaptive.stale_drops(), pinned.stale_drops());
    }

    #[test]
    fn pinned_calendar_starts_as_calendar() {
        let q: AdaptiveQueue<u32> = AdaptiveQueue::calendar();
        assert!(q.is_calendar());
        assert!(q.is_empty());
    }
}
