//! Simulated time.
//!
//! Time in the simulator is a non-negative number of seconds stored as an
//! `f64`. The paper reports response and execution times in seconds, and the
//! workloads span a few hundred to a few thousand simulated seconds, so an
//! `f64` keeps sub-microsecond resolution over the whole range.
//!
//! [`SimTime`] is an *instant* and [`SimDuration`] is a *span*; the types are
//! kept distinct so that instants cannot be accidentally added together.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in seconds since the simulation start.
///
/// `SimTime` is totally ordered; constructing one from a NaN value panics so
/// that ordering is always well defined.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds.
///
/// Durations may be zero but never negative or NaN.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant at `seconds` past the simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is NaN or negative.
    pub fn from_secs(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime must be finite and non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Seconds since the simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {} -> {}",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The smallest representable instant strictly after `self`.
    ///
    /// Event scheduling uses this to guarantee forward progress at large
    /// clock values: once the clock exceeds ~2²¹ seconds, a sub-ULP
    /// remainder makes `t + dt` round back onto `t`, and an event
    /// scheduled there would re-run with zero progress forever.
    pub fn next_up(self) -> SimTime {
        // Finite and non-negative by construction, so incrementing the
        // bit pattern is exactly the next float toward +∞.
        SimTime(f64::from_bits(self.0.to_bits() + 1))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a span of `seconds`.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is NaN, infinite, or negative.
    pub fn from_secs(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimDuration must be finite and non-negative, got {seconds}"
        );
        SimDuration(seconds)
    }

    /// Creates a span of `millis` milliseconds.
    pub fn from_millis(millis: f64) -> Self {
        Self::from_secs(millis / 1_000.0)
    }

    /// Length of the span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Length of the span in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1_000.0
    }

    /// True if the span has zero length.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are asserted finite at construction, so this never fails.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;

    /// Ratio between two spans (dimensionless).
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_the_origin() {
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(2.5);
        assert_eq!(t.as_secs(), 12.5);
    }

    #[test]
    fn since_measures_span() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(7.5);
        assert_eq!(b.since(a).as_secs(), 4.5);
        assert_eq!((b - a).as_secs(), 4.5);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_negative_span() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(7.5);
        let _ = a.since(b);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_is_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_is_rejected() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(2.0),
            SimTime::from_secs(0.5),
            SimTime::from_secs(1.0),
        ];
        v.sort();
        let secs: Vec<f64> = v.into_iter().map(SimTime::as_secs).collect();
        assert_eq!(secs, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(1500.0);
        assert_eq!(d.as_secs(), 1.5);
        assert_eq!(d.as_millis(), 1500.0);
        assert_eq!((d * 2.0).as_secs(), 3.0);
        assert_eq!((d / 3.0).as_secs(), 0.5);
        assert_eq!(d / SimDuration::from_secs(0.5), 3.0);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn next_up_strictly_advances() {
        // At ~2²¹ seconds the ULP is ~4.7e-10 s: adding a smaller span
        // rounds back onto the same instant, but next_up never does.
        let t = SimTime::from_secs(2_097_157.0);
        assert_eq!(t + SimDuration::from_secs(1e-10), t);
        assert!(t.next_up() > t);
        assert!(SimTime::ZERO.next_up() > SimTime::ZERO);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
