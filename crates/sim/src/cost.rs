//! Reallocation cost model.
//!
//! The paper stresses that "reallocations are not free, and it is something
//! that must be done with care" (§5.1): Equal_efficiency loses to PDPA partly
//! because its noisy allocations trigger constant reallocation, and the
//! stability of PDPA "helps the rest of mechanisms of the operating system
//! (such as the memory migration) to do their work efficiently".
//!
//! [`CostModel`] turns an allocation change into lost application time:
//! a fixed coordination cost per reallocation event plus a per-migrated-CPU
//! cost that stands in for cache refill and page migration on a CC-NUMA
//! machine.

use crate::time::SimDuration;

/// Prices for processor reallocation events.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed cost paid by an application whenever its allocation changes
    /// (thread synchronization at the reallocation point).
    pub realloc_fixed: SimDuration,
    /// Cost per CPU *gained* by a running application (thread start-up on a
    /// cold CPU, cache and local-memory refill).
    pub per_gained_cpu: SimDuration,
    /// Cost per CPU *lost* by a running application (work redistribution
    /// among the survivors).
    pub per_lost_cpu: SimDuration,
}

impl CostModel {
    /// The default calibration used by the experiments: 20 ms fixed,
    /// 60 ms per gained CPU, 10 ms per lost CPU.
    ///
    /// These are in the range reported for page-migration-heavy CC-NUMA
    /// reallocation; the experiments' *shape* is insensitive to the exact
    /// values, but a zero cost would hide Equal_efficiency's instability
    /// penalty.
    pub fn origin2000() -> Self {
        CostModel {
            realloc_fixed: SimDuration::from_millis(20.0),
            per_gained_cpu: SimDuration::from_millis(60.0),
            per_lost_cpu: SimDuration::from_millis(10.0),
        }
    }

    /// A zero-cost model (useful to isolate policy behaviour in tests).
    pub fn free() -> Self {
        CostModel {
            realloc_fixed: SimDuration::ZERO,
            per_gained_cpu: SimDuration::ZERO,
            per_lost_cpu: SimDuration::ZERO,
        }
    }

    /// The time an application loses to a reallocation that gained
    /// `gained` CPUs and lost `lost` CPUs. A no-op change costs nothing.
    pub fn charge(&self, gained: usize, lost: usize) -> SimDuration {
        if gained == 0 && lost == 0 {
            return SimDuration::ZERO;
        }
        self.realloc_fixed + self.per_gained_cpu * gained as f64 + self.per_lost_cpu * lost as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::origin2000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_free() {
        let c = CostModel::origin2000();
        assert!(c.charge(0, 0).is_zero());
    }

    #[test]
    fn free_model_charges_nothing() {
        let c = CostModel::free();
        assert!(c.charge(10, 10).is_zero());
    }

    #[test]
    fn charge_scales_with_cpus() {
        let c = CostModel::origin2000();
        let small = c.charge(1, 0);
        let large = c.charge(8, 0);
        assert!(large > small);
        // 20 ms fixed + 8 * 60 ms = 500 ms.
        assert!((large.as_millis() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn gaining_costs_more_than_losing() {
        let c = CostModel::origin2000();
        assert!(c.charge(4, 0) > c.charge(0, 4));
    }
}
