//! Deterministic random number generation for simulations.
//!
//! Experiments must be exactly reproducible from a seed (the paper replays
//! identical workload trace files under every policy), so the simulator
//! carries its own tiny generator instead of depending on platform entropy.
//!
//! [`SimRng`] is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
//! state, a Weyl-sequence increment, and a 3-round finalizer. It is not
//! cryptographic, but it passes BigCrush and is more than adequate for
//! workload sampling.

/// A deterministic SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Any seed value is fine, including 0.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each subsystem (arrival process, noise model, placement)
    /// its own stream so that adding draws in one subsystem does not perturb
    /// another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream tag into a fresh draw so that forks with different
        // tags are decorrelated even when taken from the same parent state.
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform range inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift bounded sampling (Lemire). The tiny modulo bias of
        // the plain multiply-shift is acceptable for simulation workloads.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Exponentially distributed value with the given `mean` (> 0).
    ///
    /// Used for Poisson interarrival times, as in the paper's workload
    /// generator.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse-CDF; guard against ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Standard normal draw (Box–Muller, one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::new(9);
        for _ in 0..1_000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = SimRng::new(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[rng.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_has_roughly_right_mean() {
        let mut rng = SimRng::new(13);
        let n = 50_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.1,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = SimRng::new(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut parent = SimRng::new(5);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(29);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
