//! Discrete-event multiprocessor simulation substrate for the PDPA
//! reproduction.
//!
//! This crate contains the building blocks that everything else stands on:
//!
//! - [`SimTime`] / [`SimDuration`] — the simulated clock (seconds, `f64`).
//! - [`SimRng`] — a small deterministic SplitMix64-based random number
//!   generator, so every experiment is reproducible from a seed.
//! - [`EventQueue`] — a stable priority queue of timestamped events.
//! - [`CalendarQueue`] / [`AdaptiveQueue`] — a bucketed O(1)-amortized
//!   variant of the same queue API, and the wrapper that switches to it
//!   automatically once the backlog is large enough to warrant it.
//! - [`Machine`] — a CC-NUMA machine model (SGI Origin 2000-like: two CPUs
//!   per node) with affinity-preserving cpuset assignment and migration
//!   accounting.
//! - [`CostModel`] — the price of processor reallocations ("reallocations
//!   are not free", paper §5.1).
//!
//! The workload execution engine itself lives in the `pdpa-engine` crate;
//! this crate deliberately knows nothing about applications or policies.

#![deny(missing_docs)]

pub mod calendar;
pub mod cost;
pub mod event;
pub mod ids;
pub mod machine;
pub mod rng;
pub mod time;

pub use calendar::{AdaptiveQueue, CalendarQueue};
pub use cost::CostModel;
pub use event::{EventQueue, QueueStats};
pub use ids::{CpuId, JobId};
pub use machine::{CpuSet, Machine, MachineStats};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
