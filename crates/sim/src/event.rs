//! A stable, timestamped event queue.
//!
//! The engine drives the simulation by repeatedly popping the earliest event.
//! Two properties matter for reproducibility:
//!
//! 1. **Stability** — events scheduled for the same instant pop in the order
//!    they were pushed (FIFO within a timestamp), so runs are deterministic.
//! 2. **Cheap invalidation** — reallocation changes an application's progress
//!    rate, which invalidates its pending completion events. Rather than
//!    removing entries from the heap (an O(n) scan), callers push entries
//!    under a *key* and later [`invalidate_key`](EventQueue::invalidate_key)
//!    it: the queue tags each keyed entry with the key's generation at push
//!    time and lazily discards entries whose generation has since moved on.
//!    Invalidation is an O(1) hash bump; the stale entry costs one extra
//!    O(log n) pop when its turn comes.
//!
//! Large traces additionally benefit from
//! [`push_batch`](EventQueue::push_batch), which rebuilds the heap
//! bottom-up in O(n) instead of n × O(log n) sifts.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::time::SimTime;

/// A point-in-time snapshot of a queue's traffic counters, as returned by
/// the `stats()` method on every queue implementation. Health monitors
/// sample these per shard each heartbeat instead of calling four getters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Total events pushed over the queue's lifetime.
    pub pushed: u64,
    /// Total events popped, stale discards included.
    pub popped: u64,
    /// Total keyed entries discarded as stale.
    pub stale_drops: u64,
    /// Current backlog, stale entries included.
    pub len: usize,
}

/// A priority queue of `(SimTime, payload)` entries with FIFO tie-breaking
/// and generation-keyed lazy deletion.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Current generation per key; keyed entries pushed under an older
    /// generation are stale. Generations only grow, so a key reused after
    /// retirement can never collide with an entry still buried in the heap.
    generations: HashMap<u64, u64>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
    stale: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    /// `(key, generation at push time)` for invalidatable entries.
    key: Option<(u64, u64)>,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            generations: HashMap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
            stale: 0,
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry {
            at,
            seq,
            key: None,
            payload,
        });
    }

    /// Schedules `payload` at instant `at` under `key`, so a later
    /// [`invalidate_key`](Self::invalidate_key) can lazily discard it.
    /// Entries pushed after an invalidation are live again — the queue
    /// snapshots the key's generation at push time.
    pub fn push_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        let generation = self.generations.get(&key).copied().unwrap_or(0);
        self.heap.push(Entry {
            at,
            seq,
            key: Some((key, generation)),
            payload,
        });
    }

    /// Schedules a batch of events in one O(n) heap rebuild instead of
    /// n individual O(log n) sifts. Entries receive sequence numbers in
    /// slice order, so same-instant batch entries pop FIFO exactly as if
    /// pushed one by one.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = (SimTime, E)>) {
        let mut batch: BinaryHeap<Entry<E>> = events
            .into_iter()
            .map(|(at, payload)| {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.pushed += 1;
                Entry {
                    at,
                    seq,
                    key: None,
                    payload,
                }
            })
            .collect();
        self.heap.append(&mut batch);
    }

    /// Marks every entry currently pushed under `key` as stale; they are
    /// discarded (and counted by [`stale_drops`](Self::stale_drops)) when
    /// they reach the head of the queue. O(1).
    pub fn invalidate_key(&mut self, key: u64) {
        *self.generations.entry(key).or_insert(0) += 1;
    }

    /// True if `entry` was invalidated after it was pushed.
    fn is_stale(&self, entry: &Entry<E>) -> bool {
        match entry.key {
            Some((key, generation)) => {
                self.generations.get(&key).copied().unwrap_or(0) != generation
            }
            None => false,
        }
    }

    /// Removes and returns the earliest live event, or `None` when empty.
    /// Stale keyed entries are discarded along the way; discards count
    /// toward [`total_popped`](Self::total_popped) and
    /// [`stale_drops`](Self::stale_drops).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let stale = self.heap.peek().map(|e| self.is_stale(e))?;
            let e = self.heap.pop().expect("peeked entry exists");
            self.popped += 1;
            if stale {
                self.stale += 1;
                continue;
            }
            return Some((e.at, e.payload));
        }
    }

    /// Removes and returns the earliest live event whose timestamp is at
    /// or before `t`, or `None` when the earliest live event is after `t`
    /// (or the queue is empty). Stale keyed heads are discarded along the
    /// way even when they sit before `t`, so a caller draining events up
    /// to a barrier never observes a stale head's earlier timestamp the
    /// way [`peek_time`](Self::peek_time) can report it.
    pub fn pop_due(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        loop {
            let head = self.heap.peek()?;
            if self.is_stale(head) {
                self.heap.pop();
                self.popped += 1;
                self.stale += 1;
                continue;
            }
            if head.at > t {
                return None;
            }
            let e = self.heap.pop().expect("peeked entry exists");
            self.popped += 1;
            return Some((e.at, e.payload));
        }
    }

    /// Removes and returns the earliest live event for which `valid` also
    /// holds, discarding invalid ones along the way; `None` when the queue
    /// runs out.
    ///
    /// Key-stale entries are skipped by [`pop`](Self::pop) underneath;
    /// this adds a payload-level predicate on top for callers with their
    /// own validity notion. Discarded events still count toward
    /// [`total_popped`](Self::total_popped).
    pub fn pop_valid(&mut self, mut valid: impl FnMut(&E) -> bool) -> Option<(SimTime, E)> {
        loop {
            let (at, payload) = self.pop()?;
            if valid(&payload) {
                return Some((at, payload));
            }
        }
    }

    /// The timestamp of the earliest pending entry — possibly a stale one
    /// (a stale head is discarded only when popped, so `peek_time` may be
    /// earlier than what [`pop`](Self::pop) returns).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending entries, stale ones included.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime, stale discards
    /// included.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Total keyed entries discarded as stale over the queue's lifetime.
    pub fn stale_drops(&self) -> u64 {
        self.stale
    }

    /// One-call snapshot of the queue-op counters, for health monitors
    /// that sample many queues at once.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.pushed,
            popped: self.popped,
            stale_drops: self.stale,
            len: self.len(),
        }
    }

    /// Decomposes the queue into its raw state — pending entries as
    /// `(at, seq, key, payload)` in unspecified order, key generations,
    /// and the sequence/traffic counters — so another implementation
    /// (the calendar queue) can take over mid-stream without disturbing
    /// pop order or statistics.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_raw_parts(
        self,
    ) -> (
        Vec<(SimTime, u64, Option<(u64, u64)>, E)>,
        HashMap<u64, u64>,
        u64,
        u64,
        u64,
        u64,
    ) {
        let entries = self
            .heap
            .into_vec()
            .into_iter()
            .map(|e| (e.at, e.seq, e.key, e.payload))
            .collect();
        (
            entries,
            self.generations,
            self.next_seq,
            self.pushed,
            self.popped,
            self.stale,
        )
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), "c");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.push(t(2.0), "b1");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b2");
        q.push(t(0.5), "z");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["z", "a", "b1", "b2"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(4.0), ());
        assert_eq!(q.peek_time(), Some(t(4.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(t(1.0), ());
        q.push(t(2.0), ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_valid_skips_stale_entries() {
        let mut q = EventQueue::new();
        q.push(t(1.0), "stale");
        q.push(t(2.0), "live");
        q.push(t(3.0), "stale");
        assert_eq!(q.pop_valid(|e| *e != "stale"), Some((t(2.0), "live")));
        assert_eq!(q.pop_valid(|e| *e != "stale"), None);
        // Discards still count as pops.
        assert_eq!(q.total_popped(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn batch_pushes_preserve_order_and_ties() {
        let mut q = EventQueue::new();
        q.push(t(1.5), "single");
        q.push_batch(vec![(t(2.0), "b1"), (t(1.0), "a"), (t(2.0), "b2")]);
        q.push(t(2.0), "b3");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        // Batch entries tie-break FIFO in slice order, interleaved
        // correctly with singly-pushed entries.
        assert_eq!(order, vec!["a", "single", "b1", "b2", "b3"]);
        assert_eq!(q.total_pushed(), 5);
    }

    #[test]
    fn batch_matches_sequential_pushes_exactly() {
        let events: Vec<(SimTime, u32)> =
            (0..200).map(|i| (t(f64::from(i * 7919 % 97)), i)).collect();
        let mut batched = EventQueue::new();
        batched.push_batch(events.clone());
        let mut sequential = EventQueue::new();
        for (at, e) in events {
            sequential.push(at, e);
        }
        loop {
            let (a, b) = (batched.pop(), sequential.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn invalidated_keys_drop_lazily() {
        let mut q = EventQueue::new();
        q.push_keyed(t(1.0), 7, "old");
        q.push(t(2.0), "plain");
        q.invalidate_key(7);
        q.push_keyed(t(3.0), 7, "new");
        assert_eq!(q.pop(), Some((t(2.0), "plain")), "stale head skipped");
        assert_eq!(q.pop(), Some((t(3.0), "new")), "re-pushed key is live");
        assert_eq!(q.pop(), None);
        assert_eq!(q.stale_drops(), 1);
        // Discards still count as pops.
        assert_eq!(q.total_popped(), 3);
    }

    #[test]
    fn invalidation_is_scoped_to_one_key() {
        let mut q = EventQueue::new();
        q.push_keyed(t(1.0), 1, "one");
        q.push_keyed(t(2.0), 2, "two");
        q.invalidate_key(1);
        assert_eq!(q.pop(), Some((t(2.0), "two")));
        assert_eq!(q.stale_drops(), 1);
    }

    #[test]
    fn generations_survive_key_reuse() {
        let mut q = EventQueue::new();
        // A long-buried entry for key 9, then many invalidate/push cycles.
        q.push_keyed(t(100.0), 9, 0);
        for round in 1..=5 {
            q.invalidate_key(9);
            q.push_keyed(t(100.0 - f64::from(round)), 9, round);
        }
        // Only the latest generation survives.
        assert_eq!(q.pop(), Some((t(95.0), 5)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.stale_drops(), 5);
    }

    #[test]
    fn pop_due_respects_the_barrier() {
        let mut q = EventQueue::new();
        q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        q.push(t(3.0), "c");
        assert_eq!(q.pop_due(t(2.0)), Some((t(1.0), "a")));
        assert_eq!(q.pop_due(t(2.0)), Some((t(2.0), "b")), "barrier inclusive");
        assert_eq!(q.pop_due(t(2.0)), None, "later event stays queued");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(t(3.0)), Some((t(3.0), "c")));
    }

    #[test]
    fn pop_due_discards_stale_heads_without_over_advancing() {
        let mut q = EventQueue::new();
        // A stale entry sits at t=1 while the earliest live event is t=5;
        // peek_time would report 1.0, but pop_due(2.0) must drop the stale
        // head and report nothing due rather than return the t=5 event.
        q.push_keyed(t(1.0), 7, "stale");
        q.push(t(5.0), "live");
        q.invalidate_key(7);
        assert_eq!(q.peek_time(), Some(t(1.0)), "stale head shows early time");
        assert_eq!(q.pop_due(t(2.0)), None);
        assert_eq!(q.stale_drops(), 1);
        assert_eq!(q.pop_due(t(5.0)), Some((t(5.0), "live")));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_valid_composes_with_key_staleness() {
        let mut q = EventQueue::new();
        q.push_keyed(t(1.0), 3, "stale");
        q.push(t(2.0), "rejected");
        q.push_keyed(t(3.0), 4, "live");
        q.invalidate_key(3);
        assert_eq!(
            q.pop_valid(|e| *e != "rejected"),
            Some((t(3.0), "live")),
            "skips both the key-stale and the predicate-rejected entry"
        );
        assert_eq!(q.stale_drops(), 1);
        assert_eq!(q.total_popped(), 3);
    }
}
