//! A stable, timestamped event queue.
//!
//! The engine drives the simulation by repeatedly popping the earliest event.
//! Two properties matter for reproducibility:
//!
//! 1. **Stability** — events scheduled for the same instant pop in the order
//!    they were pushed (FIFO within a timestamp), so runs are deterministic.
//! 2. **Cheap invalidation** — reallocation changes an application's progress
//!    rate, which invalidates its pending completion events. Rather than
//!    removing entries from the heap, callers tag events with an *epoch* and
//!    drop stale ones on pop (see `pdpa-engine`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of `(SimTime, payload)` entries with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.at, e.payload)
        })
    }

    /// Removes and returns the earliest event for which `valid` holds,
    /// discarding invalid ones along the way; `None` when the queue runs
    /// out.
    ///
    /// This is the companion to epoch invalidation: stale entries stay in
    /// the heap until their turn, and this helper centralizes the skip so
    /// event-loop callers never see them. Discarded events still count
    /// toward [`total_popped`](Self::total_popped).
    pub fn pop_valid(&mut self, mut valid: impl FnMut(&E) -> bool) -> Option<(SimTime, E)> {
        loop {
            let (at, payload) = self.pop()?;
            if valid(&payload) {
                return Some((at, payload));
            }
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), "c");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.push(t(2.0), "b1");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b2");
        q.push(t(0.5), "z");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["z", "a", "b1", "b2"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(4.0), ());
        assert_eq!(q.peek_time(), Some(t(4.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(t(1.0), ());
        q.push(t(2.0), ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_valid_skips_stale_entries() {
        let mut q = EventQueue::new();
        q.push(t(1.0), "stale");
        q.push(t(2.0), "live");
        q.push(t(3.0), "stale");
        assert_eq!(q.pop_valid(|e| *e != "stale"), Some((t(2.0), "live")));
        assert_eq!(q.pop_valid(|e| *e != "stale"), None);
        // Discards still count as pops.
        assert_eq!(q.total_popped(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }
}
