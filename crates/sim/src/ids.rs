//! Identifier newtypes shared across the workspace.

use std::fmt;

/// Identifies a job (one submitted application instance) for the lifetime of
/// a simulation run.
///
/// Job ids are dense and assigned in submission order by the queuing system,
/// which makes them usable as indices into per-job tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u32);

/// Identifies a physical CPU of the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CpuId(pub u16);

impl JobId {
    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CpuId {
    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(JobId(3).to_string(), "job3");
        assert_eq!(CpuId(17).to_string(), "cpu17");
    }

    #[test]
    fn indexing() {
        assert_eq!(JobId(42).index(), 42);
        assert_eq!(CpuId(9).index(), 9);
    }
}
