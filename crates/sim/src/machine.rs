//! CC-NUMA machine model.
//!
//! Models an SGI Origin 2000-like machine: `n_cpus` processors grouped into
//! nodes (two CPUs per node on the Origin), with space-shared partitions
//! handed out as *cpusets*. The model tracks which job owns each CPU,
//! performs affinity-preserving resizing (a job keeps the CPUs it already
//! has, grows onto CPUs close to its current nodes, and shrinks from its
//! most recently acquired CPUs), and counts thread migrations.
//!
//! A *migration* is counted whenever a job that is already running gains a
//! CPU — its threads must move onto the new processor, losing cache and
//! local-memory affinity. Initial placement is not a migration. This matches
//! how the paper's Table 2 statistics behave: Equipartition (which
//! redistributes on every arrival and completion) accumulates a few hundred
//! migrations over a workload, PDPA (which only moves processors during its
//! per-application search) a few tens, and the time-shared IRIX model — which
//! bypasses cpusets entirely — orders of magnitude more.

use std::collections::HashMap;

use crate::ids::{CpuId, JobId};

/// An ordered set of CPUs owned by one job.
///
/// Kept sorted in *acquisition order* (not numeric order): the tail of the
/// list is the most recently acquired CPUs, which are the first to be given
/// back on shrink, preserving the job's oldest (warmest) processors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CpuSet(Vec<CpuId>);

impl CpuSet {
    /// Creates an empty cpuset.
    pub fn new() -> Self {
        CpuSet(Vec::new())
    }

    /// Number of CPUs in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True if `cpu` is in the set.
    pub fn contains(&self, cpu: CpuId) -> bool {
        self.0.contains(&cpu)
    }

    /// The CPUs in acquisition order.
    pub fn cpus(&self) -> &[CpuId] {
        &self.0
    }

    /// Iterates over the CPUs.
    pub fn iter(&self) -> impl Iterator<Item = CpuId> + '_ {
        self.0.iter().copied()
    }

    fn push(&mut self, cpu: CpuId) {
        debug_assert!(!self.contains(cpu), "cpu already in set");
        self.0.push(cpu);
    }

    fn pop(&mut self) -> Option<CpuId> {
        self.0.pop()
    }

    /// Removes `cpu` wherever it sits in the acquisition order (used when a
    /// specific CPU fails rather than the most recent one being shrunk).
    fn remove(&mut self, cpu: CpuId) -> bool {
        match self.0.iter().position(|&c| c == cpu) {
            Some(i) => {
                self.0.remove(i);
                true
            }
            None => false,
        }
    }
}

impl FromIterator<CpuId> for CpuSet {
    fn from_iter<T: IntoIterator<Item = CpuId>>(iter: T) -> Self {
        CpuSet(iter.into_iter().collect())
    }
}

/// The result of a [`Machine::resize`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResizeOutcome {
    /// CPUs newly assigned to the job.
    pub gained: Vec<CpuId>,
    /// CPUs taken away from the job.
    pub lost: Vec<CpuId>,
}

impl ResizeOutcome {
    /// True when the resize changed nothing.
    pub fn is_noop(&self) -> bool {
        self.gained.is_empty() && self.lost.is_empty()
    }
}

/// Lifetime counters for machine-level events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Thread migrations: CPUs gained by jobs that were already running.
    pub migrations: u64,
    /// Resize operations that changed at least one CPU.
    pub reallocations: u64,
    /// CPUs handed out on first placement of each job.
    pub initial_placements: u64,
}

/// A space-shared CC-NUMA machine.
///
/// # Examples
///
/// ```
/// use pdpa_sim::{JobId, Machine};
///
/// let mut machine = Machine::new(8);
/// machine.resize(JobId(1), 6);
/// assert_eq!(machine.allocation(JobId(1)), 6);
/// assert_eq!(machine.free_cpus(), 2);
///
/// machine.resize(JobId(1), 2); // shrink: most recent CPUs go back first
/// assert_eq!(machine.free_cpus(), 6);
/// machine.release(JobId(1));
/// assert_eq!(machine.free_cpus(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    /// Owner of each CPU, indexed by CPU id.
    owner: Vec<Option<JobId>>,
    /// Liveness of each CPU: failed CPUs stay in the topology but cannot be
    /// owned until they recover.
    alive: Vec<bool>,
    /// CPUs per NUMA node (2 on the Origin 2000).
    cpus_per_node: usize,
    /// Cpuset of each running job.
    owned: HashMap<JobId, CpuSet>,
    stats: MachineStats,
}

impl Machine {
    /// Creates a machine with `n_cpus` CPUs and the Origin 2000 topology of
    /// two CPUs per node.
    ///
    /// # Panics
    ///
    /// Panics if `n_cpus` is 0.
    pub fn new(n_cpus: usize) -> Self {
        Self::with_topology(n_cpus, 2)
    }

    /// Creates a machine with an explicit `cpus_per_node`.
    ///
    /// # Panics
    ///
    /// Panics if `n_cpus` or `cpus_per_node` is 0.
    pub fn with_topology(n_cpus: usize, cpus_per_node: usize) -> Self {
        assert!(n_cpus > 0, "machine needs at least one CPU");
        assert!(cpus_per_node > 0, "nodes need at least one CPU");
        Machine {
            owner: vec![None; n_cpus],
            alive: vec![true; n_cpus],
            cpus_per_node,
            owned: HashMap::new(),
            stats: MachineStats::default(),
        }
    }

    /// Total number of CPUs (alive or not).
    pub fn n_cpus(&self) -> usize {
        self.owner.len()
    }

    /// Number of alive, unowned CPUs — the supply available to allocate.
    pub fn free_cpus(&self) -> usize {
        self.owner
            .iter()
            .zip(&self.alive)
            .filter(|(o, &a)| o.is_none() && a)
            .count()
    }

    /// Number of currently owned CPUs.
    pub fn used_cpus(&self) -> usize {
        self.owner.iter().filter(|o| o.is_some()).count()
    }

    /// Number of alive CPUs — the machine's current capacity.
    pub fn alive_cpus(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Number of failed CPUs.
    pub fn dead_cpus(&self) -> usize {
        self.n_cpus() - self.alive_cpus()
    }

    /// True if `cpu` has not failed (or has recovered).
    pub fn is_alive(&self, cpu: CpuId) -> bool {
        self.alive[cpu.index()]
    }

    /// Marks `cpu` failed. If a job owned it, the CPU is revoked from its
    /// cpuset and the dislodged owner is returned so the caller can react
    /// (recompute the job's rate, notify the policy). Failing an
    /// already-dead CPU is a no-op returning `None`.
    pub fn fail_cpu(&mut self, cpu: CpuId) -> Option<JobId> {
        if !self.alive[cpu.index()] {
            return None;
        }
        self.alive[cpu.index()] = false;
        let victim = self.owner[cpu.index()].take();
        if let Some(job) = victim {
            let set = self.owned.get_mut(&job).expect("owner table has the job");
            set.remove(cpu);
            if set.is_empty() {
                self.owned.remove(&job);
            }
        }
        victim
    }

    /// Marks `cpu` alive again. Returns `true` if it was dead (i.e. the
    /// machine's capacity actually grew).
    pub fn recover_cpu(&mut self, cpu: CpuId) -> bool {
        let was_dead = !self.alive[cpu.index()];
        self.alive[cpu.index()] = true;
        was_dead
    }

    /// Number of jobs holding at least one CPU.
    pub fn running_jobs(&self) -> usize {
        self.owned.len()
    }

    /// The NUMA node of a CPU.
    pub fn node_of(&self, cpu: CpuId) -> usize {
        cpu.index() / self.cpus_per_node
    }

    /// The cpuset currently owned by `job`, if it holds any CPUs.
    pub fn cpuset(&self, job: JobId) -> Option<&CpuSet> {
        self.owned.get(&job)
    }

    /// Number of CPUs currently allocated to `job` (0 if not running).
    pub fn allocation(&self, job: JobId) -> usize {
        self.owned.get(&job).map_or(0, CpuSet::len)
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Resizes `job` to exactly `target` CPUs, preserving affinity.
    ///
    /// Growing prefers free CPUs on nodes where the job already has CPUs,
    /// then CPUs on entirely free nodes (to limit fragmentation), then any
    /// free CPU. Shrinking releases the most recently acquired CPUs first.
    /// If fewer than `target` CPUs are available the job receives as many as
    /// possible; the caller can inspect the outcome to see what happened.
    ///
    /// Returns the gained and lost CPUs.
    pub fn resize(&mut self, job: JobId, target: usize) -> ResizeOutcome {
        let was_running = self.owned.contains_key(&job);
        let mut outcome = ResizeOutcome::default();
        let current = self.allocation(job);

        if target > current {
            let want = target - current;
            let picks = self.pick_free_cpus(job, want);
            if !picks.is_empty() {
                let set = self.owned.entry(job).or_default();
                for cpu in picks {
                    set.push(cpu);
                    self.owner[cpu.index()] = Some(job);
                    outcome.gained.push(cpu);
                }
            }
        } else if target < current {
            let set = self
                .owned
                .get_mut(&job)
                .expect("job shrinks only if running");
            for _ in 0..(current - target) {
                let cpu = set.pop().expect("set has at least current CPUs");
                self.owner[cpu.index()] = None;
                outcome.lost.push(cpu);
            }
            if set.is_empty() {
                self.owned.remove(&job);
            }
        }

        if !outcome.is_noop() {
            self.stats.reallocations += 1;
            if was_running {
                self.stats.migrations += outcome.gained.len() as u64;
            } else {
                self.stats.initial_placements += outcome.gained.len() as u64;
            }
        }
        outcome
    }

    /// Releases every CPU owned by `job` (at job completion).
    ///
    /// Returns the CPUs released.
    pub fn release(&mut self, job: JobId) -> Vec<CpuId> {
        match self.owned.remove(&job) {
            Some(set) => {
                let cpus: Vec<CpuId> = set.iter().collect();
                for cpu in &cpus {
                    self.owner[cpu.index()] = None;
                }
                cpus
            }
            None => Vec::new(),
        }
    }

    /// Chooses up to `want` free CPUs for `job`, best-affinity first.
    fn pick_free_cpus(&self, job: JobId, want: usize) -> Vec<CpuId> {
        // Nodes where the job already has CPUs.
        let my_nodes: Vec<usize> = self
            .owned
            .get(&job)
            .map(|set| set.iter().map(|c| self.node_of(c)).collect())
            .unwrap_or_default();

        // Score each free CPU: same node as the job (best), entirely free
        // node (good: leaves partially used nodes for their owners), other
        // (last). Stable sort keeps CPU-id order within a class so placement
        // is deterministic.
        let mut free: Vec<CpuId> = (0..self.n_cpus() as u16)
            .map(CpuId)
            .filter(|c| self.owner[c.index()].is_none() && self.alive[c.index()])
            .collect();
        let score = |cpu: &CpuId| -> u8 {
            let node = self.node_of(*cpu);
            if my_nodes.contains(&node) {
                0
            } else if self.node_is_free(node) {
                1
            } else {
                2
            }
        };
        free.sort_by_key(score);
        free.truncate(want);
        free
    }

    /// True if every CPU of `node` is alive and free.
    fn node_is_free(&self, node: usize) -> bool {
        let start = node * self.cpus_per_node;
        let end = (start + self.cpus_per_node).min(self.n_cpus());
        (start..end).all(|i| self.owner[i].is_none() && self.alive[i])
    }

    /// Internal consistency check used by tests and debug assertions:
    /// the owner table and the per-job cpusets must agree.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = vec![false; self.n_cpus()];
        for (job, set) in &self.owned {
            if set.is_empty() {
                return Err(format!("{job} holds an empty cpuset"));
            }
            for cpu in set.iter() {
                if seen[cpu.index()] {
                    return Err(format!("{cpu} appears in two cpusets"));
                }
                seen[cpu.index()] = true;
                if self.owner[cpu.index()] != Some(*job) {
                    return Err(format!("{cpu} owner table disagrees with {job}"));
                }
                if !self.alive[cpu.index()] {
                    return Err(format!("{cpu} is dead but owned by {job}"));
                }
            }
        }
        for (i, owner) in self.owner.iter().enumerate() {
            if owner.is_some() != seen[i] {
                return Err(format!("cpu{i} owned but in no cpuset"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(n: u32) -> JobId {
        JobId(n)
    }

    #[test]
    fn fresh_machine_is_all_free() {
        let m = Machine::new(60);
        assert_eq!(m.n_cpus(), 60);
        assert_eq!(m.free_cpus(), 60);
        assert_eq!(m.used_cpus(), 0);
        assert_eq!(m.running_jobs(), 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn grow_assigns_requested_cpus() {
        let mut m = Machine::new(8);
        let out = m.resize(job(1), 4);
        assert_eq!(out.gained.len(), 4);
        assert!(out.lost.is_empty());
        assert_eq!(m.allocation(job(1)), 4);
        assert_eq!(m.free_cpus(), 4);
        m.check_invariants().unwrap();
    }

    #[test]
    fn grow_is_capped_by_free_cpus() {
        let mut m = Machine::new(4);
        m.resize(job(1), 3);
        let out = m.resize(job(2), 3);
        assert_eq!(out.gained.len(), 1, "only one CPU was free");
        assert_eq!(m.allocation(job(2)), 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn shrink_releases_most_recent_cpus() {
        let mut m = Machine::new(8);
        let first = m.resize(job(1), 2).gained.clone();
        let second = m.resize(job(1), 4).gained.clone();
        let out = m.resize(job(1), 2);
        assert_eq!(out.lost.len(), 2);
        // The most recently acquired CPUs go back first.
        assert!(out.lost.iter().all(|c| second.contains(c)));
        assert!(first.iter().all(|c| m.cpuset(job(1)).unwrap().contains(*c)));
        m.check_invariants().unwrap();
    }

    #[test]
    fn shrink_to_zero_removes_job() {
        let mut m = Machine::new(4);
        m.resize(job(1), 3);
        m.resize(job(1), 0);
        assert_eq!(m.allocation(job(1)), 0);
        assert_eq!(m.running_jobs(), 0);
        assert_eq!(m.free_cpus(), 4);
        m.check_invariants().unwrap();
    }

    #[test]
    fn release_frees_everything() {
        let mut m = Machine::new(8);
        m.resize(job(1), 5);
        let released = m.release(job(1));
        assert_eq!(released.len(), 5);
        assert_eq!(m.free_cpus(), 8);
        assert!(m.cpuset(job(1)).is_none());
        m.check_invariants().unwrap();
    }

    #[test]
    fn release_unknown_job_is_empty() {
        let mut m = Machine::new(4);
        assert!(m.release(job(9)).is_empty());
    }

    #[test]
    fn growth_prefers_own_nodes() {
        let mut m = Machine::new(8); // nodes: {0,1} {2,3} {4,5} {6,7}
        m.resize(job(1), 1); // takes cpu0 (node 0)
        m.resize(job(2), 4); // takes cpus from free nodes
                             // Job 1 grows by one: cpu1 (its own node) must be preferred if free.
        let out = m.resize(job(1), 2);
        assert_eq!(out.gained, vec![CpuId(1)]);
        m.check_invariants().unwrap();
    }

    #[test]
    fn growth_prefers_fully_free_nodes_over_fragmenting() {
        let mut m = Machine::new(8);
        m.resize(job(1), 1); // cpu0: node 0 now half used
                             // A new job wants 2: should land on a fully free node, not cpu1.
        let out = m.resize(job(2), 2);
        assert!(
            !out.gained.contains(&CpuId(1)),
            "should not fragment node 0: {:?}",
            out.gained
        );
        m.check_invariants().unwrap();
    }

    #[test]
    fn migrations_counted_only_for_running_jobs() {
        let mut m = Machine::new(16);
        m.resize(job(1), 4); // initial placement, not a migration
        assert_eq!(m.stats().migrations, 0);
        assert_eq!(m.stats().initial_placements, 4);
        m.resize(job(1), 8); // growth while running: 4 migrations
        assert_eq!(m.stats().migrations, 4);
        m.resize(job(1), 6); // shrink: no migration
        assert_eq!(m.stats().migrations, 4);
        assert_eq!(m.stats().reallocations, 3);
    }

    #[test]
    fn noop_resize_changes_nothing() {
        let mut m = Machine::new(8);
        m.resize(job(1), 4);
        let stats_before = m.stats();
        let out = m.resize(job(1), 4);
        assert!(out.is_noop());
        assert_eq!(m.stats(), stats_before);
    }

    #[test]
    fn node_of_matches_topology() {
        let m = Machine::with_topology(12, 4);
        assert_eq!(m.node_of(CpuId(0)), 0);
        assert_eq!(m.node_of(CpuId(3)), 0);
        assert_eq!(m.node_of(CpuId(4)), 1);
        assert_eq!(m.node_of(CpuId(11)), 2);
    }

    #[test]
    fn failing_a_free_cpu_shrinks_supply() {
        let mut m = Machine::new(8);
        assert_eq!(m.fail_cpu(CpuId(3)), None, "cpu3 was idle");
        assert_eq!(m.alive_cpus(), 7);
        assert_eq!(m.dead_cpus(), 1);
        assert_eq!(m.free_cpus(), 7);
        assert!(!m.is_alive(CpuId(3)));
        m.check_invariants().unwrap();
    }

    #[test]
    fn failing_an_owned_cpu_dislodges_its_owner() {
        let mut m = Machine::new(8);
        let got = m.resize(job(1), 4).gained.clone();
        let victim_cpu = got[1]; // not the most recent: exercises mid-set removal
        assert_eq!(m.fail_cpu(victim_cpu), Some(job(1)));
        assert_eq!(m.allocation(job(1)), 3);
        assert!(!m.cpuset(job(1)).unwrap().contains(victim_cpu));
        m.check_invariants().unwrap();
    }

    #[test]
    fn dead_cpus_are_never_handed_out() {
        let mut m = Machine::new(4);
        m.fail_cpu(CpuId(0));
        m.fail_cpu(CpuId(1));
        let out = m.resize(job(1), 4);
        assert_eq!(out.gained.len(), 2, "only the two alive CPUs are supply");
        assert!(out.gained.iter().all(|&c| m.is_alive(c)));
        m.check_invariants().unwrap();
    }

    #[test]
    fn recover_restores_capacity() {
        let mut m = Machine::new(4);
        m.fail_cpu(CpuId(2));
        assert!(m.recover_cpu(CpuId(2)));
        assert!(!m.recover_cpu(CpuId(2)), "second recover is a no-op");
        assert_eq!(m.alive_cpus(), 4);
        let out = m.resize(job(1), 4);
        assert_eq!(out.gained.len(), 4);
        m.check_invariants().unwrap();
    }

    #[test]
    fn double_fail_is_a_noop() {
        let mut m = Machine::new(4);
        m.resize(job(1), 4);
        assert_eq!(m.fail_cpu(CpuId(0)), Some(job(1)));
        assert_eq!(m.fail_cpu(CpuId(0)), None);
        assert_eq!(m.allocation(job(1)), 3);
        m.check_invariants().unwrap();
    }

    #[test]
    fn failing_a_jobs_last_cpu_removes_it() {
        let mut m = Machine::new(4);
        let got = m.resize(job(1), 1).gained.clone();
        assert_eq!(m.fail_cpu(got[0]), Some(job(1)));
        assert_eq!(m.running_jobs(), 0);
        assert!(m.cpuset(job(1)).is_none());
        m.check_invariants().unwrap();
    }

    #[test]
    fn many_jobs_fill_machine_exactly() {
        let mut m = Machine::new(60);
        for j in 0..15 {
            m.resize(job(j), 4);
        }
        assert_eq!(m.free_cpus(), 0);
        assert_eq!(m.running_jobs(), 15);
        let extra = m.resize(job(99), 4);
        assert!(extra.gained.is_empty(), "no CPUs left to give");
        m.check_invariants().unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One random scheduling action.
    #[derive(Clone, Debug)]
    enum Action {
        Resize { job: u32, target: usize },
        Release { job: u32 },
        Fail { cpu: u16 },
        Recover { cpu: u16 },
    }

    fn arb_action() -> impl Strategy<Value = Action> {
        prop_oneof![
            (0u32..8, 0usize..70).prop_map(|(job, target)| Action::Resize { job, target }),
            (0u32..8).prop_map(|job| Action::Release { job }),
            (0u16..60).prop_map(|cpu| Action::Fail { cpu }),
            (0u16..60).prop_map(|cpu| Action::Recover { cpu }),
        ]
    }

    proptest! {
        /// Any sequence of resizes and releases preserves the machine's
        /// internal consistency: the owner table and the per-job cpusets
        /// always agree, no CPU is double-owned, and free/used counts add
        /// up.
        #[test]
        fn random_action_sequences_keep_invariants(
            actions in proptest::collection::vec(arb_action(), 1..60),
        ) {
            let mut m = Machine::new(60);
            for action in actions {
                match action {
                    Action::Resize { job, target } => {
                        let before_free = m.free_cpus();
                        let before_alloc = m.allocation(JobId(job));
                        let out = m.resize(JobId(job), target);
                        // The outcome is consistent with the state change.
                        let after_alloc = m.allocation(JobId(job));
                        prop_assert_eq!(
                            after_alloc as i64 - before_alloc as i64,
                            out.gained.len() as i64 - out.lost.len() as i64
                        );
                        prop_assert_eq!(
                            m.free_cpus() as i64,
                            before_free as i64 - out.gained.len() as i64
                                + out.lost.len() as i64
                        );
                        // Shrinks hit their target exactly; grows may be
                        // capped by supply but never overshoot.
                        if target <= before_alloc {
                            prop_assert_eq!(after_alloc, target);
                        } else {
                            prop_assert!(after_alloc <= target);
                            prop_assert!(after_alloc >= before_alloc);
                        }
                    }
                    Action::Release { job } => {
                        m.release(JobId(job));
                        prop_assert_eq!(m.allocation(JobId(job)), 0);
                    }
                    Action::Fail { cpu } => {
                        let was_owned = m.used_cpus();
                        let victim = m.fail_cpu(CpuId(cpu));
                        prop_assert!(!m.is_alive(CpuId(cpu)));
                        if victim.is_some() {
                            prop_assert_eq!(m.used_cpus(), was_owned - 1);
                        } else {
                            prop_assert_eq!(m.used_cpus(), was_owned);
                        }
                    }
                    Action::Recover { cpu } => {
                        m.recover_cpu(CpuId(cpu));
                        prop_assert!(m.is_alive(CpuId(cpu)));
                    }
                }
                prop_assert!(m.check_invariants().is_ok(), "{:?}", m.check_invariants());
                // Dead CPUs are never owned, so supply + usage + casualties
                // partition the topology.
                prop_assert_eq!(
                    m.free_cpus() + m.used_cpus() + m.dead_cpus(),
                    m.n_cpus()
                );
            }
        }

        /// Growth is exact whenever supply suffices.
        #[test]
        fn growth_is_exact_with_supply(
            first in 1usize..30,
            second in 1usize..30,
        ) {
            let mut m = Machine::new(60);
            m.resize(JobId(0), first);
            m.resize(JobId(1), second);
            prop_assert_eq!(m.allocation(JobId(0)), first);
            prop_assert_eq!(m.allocation(JobId(1)), second);
        }
    }
}
