//! Deterministic fork-join parallelism for experiment sweeps.
//!
//! The bench harness fans independent simulation cells out across worker
//! threads. Results must be *byte-identical* to a sequential run, so the
//! only primitive offered is an ordered map: workers pull task indices
//! from a shared atomic counter, stash `(index, result)` pairs locally,
//! and the caller reassembles the output in input order. No work
//! stealing, no locks on the hot path, no dependency on a registry
//! crate — plain `std::thread::scope`.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (kept for familiarity
//! with rayon-based setups), then `PDPA_THREADS`, then the number of
//! available cores. Set either variable to `1` to force sequential
//! execution, e.g. when bisecting a determinism bug.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves the worker-thread count for parallel sweeps.
///
/// Precedence: `RAYON_NUM_THREADS`, then `PDPA_THREADS`, then
/// [`std::thread::available_parallelism`]. Values that fail to parse or
/// are zero fall through to the next source. The result is always ≥ 1.
pub fn num_threads() -> usize {
    for var in ["RAYON_NUM_THREADS", "PDPA_THREADS"] {
        if let Ok(raw) = std::env::var(var) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` workers, returning results
/// in input order.
///
/// Output is identical to `items.iter().map(f).collect()` regardless of
/// thread count or scheduling: each worker records the index of every
/// item it processes and the caller sorts the combined output by index.
/// A panic in `f` is propagated to the caller after all workers have
/// stopped (workers quit pulling new tasks once any worker has
/// panicked, so the panic surfaces promptly even on long sweeps).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let panicked = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, R)>> = Vec::new();
    let mut payload: Option<Box<dyn std::any::Any + Send>> = None;
    // The caller's observability scope label (e.g. the experiment name) is
    // thread-local; hand it to each worker so engine runs fanned out here
    // stay attributed to the right scope in the metrics registry.
    let obs_scope = pdpa_obs::scope::current();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let panicked = &panicked;
                let f = &f;
                let obs_scope = &obs_scope;
                scope.spawn(move || {
                    pdpa_obs::scope::set(obs_scope.clone());
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut caught: Option<Box<dyn std::any::Any + Send>> = None;
                    while panicked.load(Ordering::Relaxed) == 0 {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                            Ok(r) => out.push((i, r)),
                            Err(p) => {
                                panicked.store(1, Ordering::Relaxed);
                                caught = Some(p);
                                break;
                            }
                        }
                    }
                    (out, caught)
                })
            })
            .collect();
        for handle in handles {
            // Worker closures catch their own panics, so join only fails
            // on aborts outside our control; propagate those as-is.
            let (out, caught) = match handle.join() {
                Ok(pair) => pair,
                Err(p) => resume_unwind(p),
            };
            chunks.push(out);
            if payload.is_none() {
                payload = caught;
            }
        }
    });

    if let Some(p) = payload {
        resume_unwind(p);
    }

    let mut indexed: Vec<(usize, R)> = chunks.into_iter().flatten().collect();
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = par_map(&items, threads, |x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |x| x + 1), vec![8]);
    }

    #[test]
    fn propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, 4, |x| {
                if *x == 13 {
                    panic!("boom on 13");
                }
                *x
            })
        }));
        let payload = result.expect_err("panic should propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom on 13"), "payload: {msg:?}");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn workers_inherit_the_callers_scope() {
        let _g = pdpa_obs::scope::enter("sweep");
        let items: Vec<u32> = (0..32).collect();
        let scopes = par_map(&items, 4, |_| pdpa_obs::scope::current());
        assert!(scopes.iter().all(|s| s.as_deref() == Some("sweep")));
    }
}
