//! Live run health: periodic heartbeat snapshots and a zero-progress
//! watchdog.
//!
//! Both replace the old `PDPA_DEBUG_PROGRESS` env hack, which printed a
//! progress line every million events and left the operator to notice a
//! stuck clock by eye. The heartbeat formats the same signals (sim-clock,
//! events/sec, queue depth, per-shard lag) on a wall-clock cadence; the
//! watchdog counts consecutive processing steps during which the simulated
//! clock fails to advance and trips once that count crosses a threshold, so
//! a livelock (like the sub-ULP `time_to_iteration_end` bug PR 6 fixed)
//! aborts with a diagnostic instead of hanging the run.

use std::time::{Duration, Instant};

/// Heartbeat cadence. Intervals are wall-clock, not sim-clock: a healthy
/// run and a stuck run emit at the same rate, which is the point.
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatConfig {
    /// Minimum wall-clock gap between emitted snapshots.
    pub every: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            every: Duration::from_secs(5),
        }
    }
}

/// A point-in-time view of the run that the engine hands to
/// [`Heartbeat::tick`]. Cheap to build; only built when a beat is due.
#[derive(Clone, Debug, Default)]
pub struct HealthSnapshot {
    /// Simulated clock, seconds.
    pub sim_clock_secs: f64,
    /// Cumulative events popped from the event queue(s).
    pub events_popped: u64,
    /// Current event-queue backlog (summed across shards).
    pub queue_len: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Jobs waiting in the scheduler queue.
    pub waiting: usize,
    /// Per-shard cumulative popped-event counts; empty on the classic
    /// engine.
    pub shard_events: Vec<u64>,
}

/// Emits a formatted health line at most once per configured interval.
#[derive(Debug)]
pub struct Heartbeat {
    cfg: HeartbeatConfig,
    started: Instant,
    last_emit: Instant,
    last_events: u64,
    beats: u64,
}

impl Heartbeat {
    /// A heartbeat that first fires one interval from now.
    pub fn new(cfg: HeartbeatConfig) -> Self {
        let now = Instant::now();
        Heartbeat {
            cfg,
            started: now,
            last_emit: now,
            last_events: 0,
            beats: 0,
        }
    }

    /// Cheap due-check; call on an amortized cadence (the engines check
    /// every 64k events / every round, not every event).
    pub fn due(&self) -> bool {
        self.last_emit.elapsed() >= self.cfg.every
    }

    /// Number of lines emitted so far.
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// If an interval has elapsed, formats one health line and resets the
    /// timer; otherwise returns `None`.
    pub fn tick(&mut self, snap: &HealthSnapshot) -> Option<String> {
        if !self.due() {
            return None;
        }
        let gap = self.last_emit.elapsed().as_secs_f64().max(1e-9);
        let rate = (snap.events_popped.saturating_sub(self.last_events)) as f64 / gap;
        self.last_emit = Instant::now();
        self.last_events = snap.events_popped;
        self.beats += 1;
        let mut line = format!(
            "heartbeat t+{:.0}s: clock={:.1}s events={} ({:.0}/s) qlen={} running={} waiting={}",
            self.started.elapsed().as_secs_f64(),
            snap.sim_clock_secs,
            snap.events_popped,
            rate,
            snap.queue_len,
            snap.running,
            snap.waiting,
        );
        if let Some(imb) = crate::report::imbalance(&snap.shard_events) {
            line.push_str(&format!(
                " shards={} imbalance={:.3}",
                snap.shard_events.len(),
                imb
            ));
        }
        if let Some(kib) = memory_high_water_kib() {
            line.push_str(&format!(" hwm={}KiB", kib));
        }
        Some(line)
    }
}

/// Zero-progress threshold. "Steps" are engine-defined: popped events on
/// the classic loop, barrier rounds on the sharded one — hence the very
/// different defaults.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Consecutive steps without sim-clock progress before tripping.
    pub max_stalled: u64,
}

impl WatchdogConfig {
    /// Default for the classic per-event loop. Same-instant event bursts
    /// (batched arrivals, simultaneous completions) are legitimate, so the
    /// threshold is far above any honest burst while still tripping a true
    /// livelock within seconds of wall-clock time.
    pub fn classic() -> Self {
        WatchdogConfig {
            max_stalled: 5_000_000,
        }
    }

    /// Default for the sharded barrier loop, counted in rounds. The barrier
    /// normally advances every round; thousands of rounds at one instant
    /// means the `next_up` guard failed.
    pub fn sharded() -> Self {
        WatchdogConfig {
            max_stalled: 10_000,
        }
    }
}

/// Tracks sim-clock progress and trips after too many stalled steps.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    last_clock: f64,
    stalled: u64,
}

impl Watchdog {
    /// A watchdog with the given threshold, starting before time zero so
    /// the first observed step always counts as progress.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            last_clock: f64::NEG_INFINITY,
            stalled: 0,
        }
    }

    /// Records one processing step at sim-clock `clock_secs`. Returns
    /// `true` when the stall count has crossed the threshold — the caller
    /// should abort the run with [`Watchdog::diagnostic`].
    #[inline]
    pub fn observe(&mut self, clock_secs: f64) -> bool {
        if clock_secs > self.last_clock {
            self.last_clock = clock_secs;
            self.stalled = 0;
            false
        } else {
            self.stalled += 1;
            self.stalled >= self.cfg.max_stalled
        }
    }

    /// Consecutive stalled steps so far.
    pub fn stalled(&self) -> u64 {
        self.stalled
    }

    /// Structured one-line diagnostic for an aborted run; `detail` carries
    /// engine-specific state (queue depths, running/waiting counts).
    pub fn diagnostic(&self, detail: &str) -> String {
        format!(
            "watchdog: no sim-clock progress for {} consecutive steps (clock stuck at {:.6}s); {}",
            self.stalled, self.last_clock, detail
        )
    }
}

/// Peak resident set size (`VmHWM`) of this process in KiB, read from
/// `/proc/self/status`. Returns `None` off Linux or if the field is
/// missing.
pub fn memory_high_water_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_trips_after_threshold_stalls() {
        let mut wd = Watchdog::new(WatchdogConfig { max_stalled: 3 });
        assert!(!wd.observe(1.0));
        assert!(!wd.observe(1.0));
        assert!(!wd.observe(1.0));
        assert!(wd.observe(1.0), "third stall at the same clock must trip");
        let diag = wd.diagnostic("qlen=5");
        assert!(diag.contains("no sim-clock progress"));
        assert!(diag.contains("qlen=5"));
    }

    #[test]
    fn watchdog_resets_on_progress() {
        let mut wd = Watchdog::new(WatchdogConfig { max_stalled: 2 });
        assert!(!wd.observe(1.0));
        assert!(!wd.observe(1.0));
        assert!(!wd.observe(2.0), "progress resets the stall count");
        assert_eq!(wd.stalled(), 0);
        assert!(!wd.observe(2.0));
        assert!(wd.observe(2.0));
    }

    #[test]
    fn heartbeat_respects_interval() {
        let mut hb = Heartbeat::new(HeartbeatConfig {
            every: Duration::from_secs(3600),
        });
        let snap = HealthSnapshot {
            sim_clock_secs: 10.0,
            events_popped: 100,
            ..Default::default()
        };
        assert!(hb.tick(&snap).is_none(), "first interval has not elapsed");
        assert_eq!(hb.beats(), 0);
    }

    #[test]
    fn heartbeat_formats_shard_imbalance() {
        let mut hb = Heartbeat::new(HeartbeatConfig {
            every: Duration::ZERO,
        });
        let line = hb
            .tick(&HealthSnapshot {
                sim_clock_secs: 42.0,
                events_popped: 1000,
                queue_len: 7,
                running: 3,
                waiting: 2,
                shard_events: vec![300, 100],
            })
            .expect("zero interval is always due");
        assert!(line.contains("clock=42.0s"));
        assert!(line.contains("qlen=7"));
        assert!(line.contains("shards=2 imbalance=0.500"));
        assert_eq!(hb.beats(), 1);
    }
}
