//! Finished-profile exports: Chrome `trace_event` JSON and a text
//! hot-path report.
//!
//! The Chrome export mirrors the idiom of `pdpa-obs`'s decision-stream
//! exporter: a single JSON object `{"traceEvents":[...]}` that Perfetto and
//! `chrome://tracing` load directly. Profiler spans are emitted as complete
//! (`"ph":"X"`) events — each carries its own duration, so no begin/end
//! pairing is needed — on one thread lane per shard, named via thread_name
//! metadata records.

use crate::span::{SpanKind, SpanRec};

/// Spans and counters collected by one lane over a run.
#[derive(Clone, Debug)]
pub struct LaneProfile {
    /// Display name: `coordinator` or `shard-N`.
    pub name: String,
    /// Every closed span, in close order.
    pub spans: Vec<SpanRec>,
    /// Events processed by this lane (see `Lane::add_events`).
    pub events: u64,
}

/// A finished profile: one [`LaneProfile`] per lane, lane 0 being the
/// coordinator.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Per-lane span buffers, coordinator first.
    pub lanes: Vec<LaneProfile>,
}

impl Profile {
    /// Assembles a profile from drained lanes (coordinator first).
    pub fn from_lanes(lanes: Vec<LaneProfile>) -> Self {
        Profile { lanes }
    }

    /// True when no lane recorded any span.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.spans.is_empty())
    }

    /// Total wall-clock nanoseconds attributed to `kind` across all lanes.
    pub fn total_ns(&self, kind: SpanKind) -> u64 {
        self.lanes
            .iter()
            .flat_map(|l| &l.spans)
            .filter(|s| s.kind == kind)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Chrome `trace_event` JSON with one timeline lane per profiler lane.
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, body: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('{');
            out.push_str(&body);
            out.push('}');
        };
        push(
            &mut out,
            "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"pdpa replay profile\"}"
                .to_string(),
        );
        for (tid, lane) in self.lanes.iter().enumerate() {
            push(
                &mut out,
                format!(
                    "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}",
                    tid,
                    esc(&lane.name)
                ),
            );
        }
        for (tid, lane) in self.lanes.iter().enumerate() {
            for s in &lane.spans {
                push(
                    &mut out,
                    format!(
                        "\"name\":\"{}\",\"cat\":\"prof\",\"ph\":\"X\",\
                         \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                        s.kind.label(),
                        us(s.start_ns),
                        us(s.dur_ns),
                        tid
                    ),
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Plain-text hot-path report: per-kind count / total / share / mean,
    /// plus per-lane event counts and the shard imbalance figure.
    pub fn hot_path_report(&self) -> String {
        let replay_ns = self.total_ns(SpanKind::Replay).max(1);
        let mut out = String::from("hot-path report (wall-clock, all lanes)\n");
        out.push_str(&format!(
            "{:<16} {:>10} {:>12} {:>7} {:>12}\n",
            "span", "count", "total ms", "%", "mean us"
        ));
        for kind in SpanKind::ALL {
            let spans: Vec<&SpanRec> = self
                .lanes
                .iter()
                .flat_map(|l| &l.spans)
                .filter(|s| s.kind == kind)
                .collect();
            if spans.is_empty() {
                continue;
            }
            let total: u64 = spans.iter().map(|s| s.dur_ns).sum();
            out.push_str(&format!(
                "{:<16} {:>10} {:>12.3} {:>6.1}% {:>12.2}\n",
                kind.label(),
                spans.len(),
                total as f64 / 1e6,
                100.0 * total as f64 / replay_ns as f64,
                total as f64 / 1e3 / spans.len() as f64,
            ));
        }
        let shard_events: Vec<u64> = self.lanes.iter().skip(1).map(|l| l.events).collect();
        if !shard_events.is_empty() {
            out.push_str("per-shard events: ");
            out.push_str(
                &shard_events
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            if let Some(imb) = imbalance(&shard_events) {
                out.push_str(&format!("  (imbalance {:.3})", imb));
            }
            out.push('\n');
        }
        if let Some(kib) = crate::health::memory_high_water_kib() {
            out.push_str(&format!("memory high-water: {} KiB\n", kib));
        }
        out
    }
}

/// Max-over-mean minus one for a set of per-shard event counts: `0.0` means
/// perfectly balanced shards, `1.0` means the busiest shard saw twice the
/// mean. `None` when the counts are empty or all zero.
pub fn imbalance(events: &[u64]) -> Option<f64> {
    let sum: u64 = events.iter().sum();
    if events.is_empty() || sum == 0 {
        return None;
    }
    let mean = sum as f64 / events.len() as f64;
    let max = *events.iter().max().expect("non-empty") as f64;
    Some(max / mean - 1.0)
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        Profile::from_lanes(vec![
            LaneProfile {
                name: "coordinator".into(),
                spans: vec![
                    SpanRec {
                        kind: SpanKind::Replay,
                        start_ns: 0,
                        dur_ns: 10_000,
                    },
                    SpanRec {
                        kind: SpanKind::Round,
                        start_ns: 100,
                        dur_ns: 4_000,
                    },
                ],
                events: 0,
            },
            LaneProfile {
                name: "shard-0".into(),
                spans: vec![SpanRec {
                    kind: SpanKind::ShardAdvance,
                    start_ns: 200,
                    dur_ns: 3_000,
                }],
                events: 30,
            },
            LaneProfile {
                name: "shard-1".into(),
                spans: vec![],
                events: 10,
            },
        ])
    }

    #[test]
    fn chrome_json_has_one_lane_per_shard() {
        let json = sample().chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"shard-0\""));
        assert!(json.contains("\"name\":\"shard-1\""));
        assert!(json.contains("\"name\":\"coordinator\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"shard_advance\""));
    }

    #[test]
    fn hot_path_report_aggregates_kinds() {
        let rep = sample().hot_path_report();
        assert!(rep.contains("replay"));
        assert!(rep.contains("shard_advance"));
        assert!(rep.contains("per-shard events: 30 10"));
        // max/mean - 1 = 30/20 - 1 = 0.5
        assert!(rep.contains("imbalance 0.500"));
    }

    #[test]
    fn imbalance_figures() {
        assert_eq!(imbalance(&[]), None);
        assert_eq!(imbalance(&[0, 0]), None);
        assert_eq!(imbalance(&[10, 10]), Some(0.0));
        assert_eq!(imbalance(&[30, 10]), Some(0.5));
    }
}
