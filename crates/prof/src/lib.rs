//! Runtime introspection for the PDPA replay engines.
//!
//! PDPA's thesis is allocation driven by *measured* performance; this crate
//! turns the same discipline on the simulator itself. Three pillars:
//!
//! - [`span`] — a hierarchical wall-clock span profiler. The engine records
//!   nested spans (replay → epoch round → barrier compute → shard advance →
//!   merge → publish → policy decision → queue-op batches) into per-shard
//!   [`Lane`] buffers that are safe to hand across `std::thread::scope`
//!   boundaries. A disabled lane costs a single branch per span, so the
//!   profiler-off path stays inside the same ≤2% overhead contract that
//!   `NullObserver` is pinned to.
//! - [`report`] — turns the collected lanes into a [`Profile`]: a Chrome
//!   `trace_event` JSON document with one timeline lane per shard, and a
//!   plain-text hot-path report aggregating time per span kind.
//! - [`health`] — live run health: periodic [`Heartbeat`] snapshots
//!   (sim-clock, events/sec, queue depth, per-shard imbalance, memory
//!   high-water) and a zero-progress [`Watchdog`] that promotes the old
//!   `PDPA_DEBUG_PROGRESS` env hack into a first-class detector which aborts
//!   a stuck run with a structured diagnostic instead of hanging.
//! - [`sink`] — typed delivery for those signals: [`HeartbeatSink`] (stderr,
//!   test-capture, or the `pdpa-watch` live tap) and [`ProgressSink`], the
//!   amortized snapshot feed behind `pdpa replay --serve`.
//!
//! The crate sits below `pdpa-engine` in the dependency graph and has no
//! dependencies of its own: it knows nothing about jobs, policies, or
//! observers — only about wall-clock time and counters.

#![deny(missing_docs)]

pub mod health;
pub mod report;
pub mod sink;
pub mod span;

pub use health::{
    memory_high_water_kib, HealthSnapshot, Heartbeat, HeartbeatConfig, Watchdog, WatchdogConfig,
};
pub use report::{LaneProfile, Profile};
pub use sink::{CaptureHeartbeat, HeartbeatSink, ProgressSink, StderrHeartbeat, TeeHeartbeat};
pub use span::{Lane, Profiler, SpanKind, SpanRec, SpanStart};
