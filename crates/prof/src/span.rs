//! Hierarchical wall-clock spans, recorded into per-lane buffers.
//!
//! The design is shaped by two constraints. First, the sharded engine's
//! parallel phase moves each shard into a scoped worker thread, so a lane
//! must be an owned `&mut`-passable buffer rather than a handle into shared
//! state — no locks, no atomics on the hot path. Second, the disabled path
//! has to be effectively free: `begin`/`end` on a disabled lane are a single
//! branch each and never allocate, which is what lets the profiler-off
//! overhead bound ride the same test as `NullObserver`.
//!
//! Spans use an explicit begin/end token rather than an RAII guard because
//! the instrumented engine code needs `&mut self` between the two points;
//! a guard borrowing the lane would lock the whole engine struct.

use std::time::Instant;

/// What a recorded span measures — one variant per instrumented region of
/// the replay hot path, from the whole-run `Replay` span down to batched
/// queue operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// The entire replay run, from first event to `into_result`.
    Replay,
    /// One epoch round of the sharded engine (barrier to barrier).
    Round,
    /// Computing the next barrier `B = min(global, max(clock+epoch, iter end))`.
    BarrierCompute,
    /// One shard advancing its local queue up to the barrier (parallel phase).
    ShardAdvance,
    /// Merging per-shard item lists into the deterministic `(time, job)` order.
    Merge,
    /// Publishing merged items: pass A/globals/pass B on the coordinator.
    Publish,
    /// A single policy activation (allocation decision) on either engine.
    PolicyDecision,
    /// A batch of event-queue operations (arrival batches, reschedules).
    QueueOps,
}

impl SpanKind {
    /// Every kind, in display order — used by the hot-path report.
    pub const ALL: [SpanKind; 8] = [
        SpanKind::Replay,
        SpanKind::Round,
        SpanKind::BarrierCompute,
        SpanKind::ShardAdvance,
        SpanKind::Merge,
        SpanKind::Publish,
        SpanKind::PolicyDecision,
        SpanKind::QueueOps,
    ];

    /// Stable human-readable label, used in both exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Replay => "replay",
            SpanKind::Round => "round",
            SpanKind::BarrierCompute => "barrier_compute",
            SpanKind::ShardAdvance => "shard_advance",
            SpanKind::Merge => "merge",
            SpanKind::Publish => "publish",
            SpanKind::PolicyDecision => "policy_decision",
            SpanKind::QueueOps => "queue_ops",
        }
    }
}

/// One closed span: kind, start offset from the profiler epoch, duration.
/// Nanosecond `u64`s cover ~584 years of run time — enough.
#[derive(Clone, Copy, Debug)]
pub struct SpanRec {
    /// Which instrumented region this span covers.
    pub kind: SpanKind,
    /// Start time in nanoseconds since the profiler epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// Token returned by [`Lane::begin`] and consumed by [`Lane::end`].
///
/// `#[must_use]` so an unmatched `begin` is a compile-time warning; on a
/// disabled lane the token carries `None` and `end` is a single branch.
#[must_use = "a span token must be closed with Lane::end"]
#[derive(Debug)]
pub struct SpanStart {
    kind: SpanKind,
    at: Option<Instant>,
}

/// A per-thread (per-shard) span buffer.
///
/// The sharded engine owns one lane per shard plus one coordinator lane,
/// all sharing a single epoch `Instant` so their spans line up on one
/// Chrome-trace timeline. Lanes are plain owned data: the parallel phase
/// hands `&mut Lane` into each scoped worker alongside its shard.
#[derive(Debug)]
pub struct Lane {
    enabled: bool,
    epoch: Instant,
    spans: Vec<SpanRec>,
    events: u64,
}

impl Lane {
    /// A lane that records spans relative to `epoch`.
    pub fn enabled(epoch: Instant) -> Self {
        Lane {
            enabled: true,
            epoch,
            spans: Vec::new(),
            events: 0,
        }
    }

    /// A lane that ignores everything. `begin`/`end`/`add_events` are a
    /// single branch and never allocate.
    pub fn disabled() -> Self {
        Lane {
            enabled: false,
            epoch: Instant::now(),
            spans: Vec::new(),
            events: 0,
        }
    }

    /// Whether this lane is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span of `kind`. Free when disabled.
    #[inline]
    pub fn begin(&self, kind: SpanKind) -> SpanStart {
        SpanStart {
            kind,
            at: if self.enabled {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Closes a span opened with [`Lane::begin`]. Free when the token came
    /// from a disabled lane.
    #[inline]
    pub fn end(&mut self, token: SpanStart) {
        if let Some(start) = token.at {
            let dur_ns = start.elapsed().as_nanos() as u64;
            let start_ns = start.duration_since(self.epoch).as_nanos() as u64;
            self.spans.push(SpanRec {
                kind: token.kind,
                start_ns,
                dur_ns,
            });
        }
    }

    /// Bumps this lane's processed-event counter (used for the per-shard
    /// imbalance figure in the hot-path report). Free when disabled.
    #[inline]
    pub fn add_events(&mut self, n: u64) {
        if self.enabled {
            self.events += n;
        }
    }

    /// Closed spans recorded so far.
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }

    /// Events counted so far via [`Lane::add_events`].
    pub fn events(&self) -> u64 {
        self.events
    }

    pub(crate) fn take(&mut self) -> (Vec<SpanRec>, u64) {
        (
            std::mem::take(&mut self.spans),
            std::mem::take(&mut self.events),
        )
    }
}

/// Owns the epoch and the set of lanes for one run.
///
/// Lane 0 is the coordinator (classic engine uses only this one); lanes
/// `1..=N` belong to shards `0..N`. A disabled profiler still hands out
/// lanes, so the engine code is identical either way — the lanes just
/// record nothing.
#[derive(Debug)]
pub struct Profiler {
    enabled: bool,
    lanes: Vec<Lane>,
}

impl Profiler {
    /// A recording profiler with `lanes` lanes sharing one epoch.
    pub fn enabled(lanes: usize) -> Self {
        let epoch = Instant::now();
        Profiler {
            enabled: true,
            lanes: (0..lanes).map(|_| Lane::enabled(epoch)).collect(),
        }
    }

    /// A profiler whose lanes all ignore everything.
    pub fn disabled(lanes: usize) -> Self {
        Profiler {
            enabled: false,
            lanes: (0..lanes).map(|_| Lane::disabled()).collect(),
        }
    }

    /// Whether this profiler records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Mutable access to one lane.
    pub fn lane(&mut self, i: usize) -> &mut Lane {
        &mut self.lanes[i]
    }

    /// All lanes, for zipping with shards across a `thread::scope`.
    pub fn lanes_mut(&mut self) -> &mut [Lane] {
        &mut self.lanes
    }

    /// Drains the lanes into a finished [`crate::Profile`]. Returns `None`
    /// when the profiler was disabled (nothing was recorded).
    pub fn finish(mut self) -> Option<crate::Profile> {
        if !self.enabled {
            return None;
        }
        Some(crate::Profile::from_lanes(
            self.lanes
                .iter_mut()
                .enumerate()
                .map(|(i, lane)| {
                    let (spans, events) = lane.take();
                    let name = if i == 0 {
                        "coordinator".to_string()
                    } else {
                        format!("shard-{}", i - 1)
                    };
                    crate::LaneProfile {
                        name,
                        spans,
                        events,
                    }
                })
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_lane_records_nothing() {
        let mut lane = Lane::disabled();
        let t = lane.begin(SpanKind::Round);
        lane.add_events(10);
        lane.end(t);
        assert!(lane.spans().is_empty());
        assert_eq!(lane.events(), 0);
    }

    #[test]
    fn enabled_lane_records_nested_spans() {
        let mut p = Profiler::enabled(2);
        let outer = p.lane(0).begin(SpanKind::Replay);
        let inner = p.lane(0).begin(SpanKind::Round);
        p.lane(0).end(inner);
        p.lane(0).end(outer);
        p.lane(1).add_events(7);
        let profile = p.finish().expect("enabled profiler yields a profile");
        assert_eq!(profile.lanes.len(), 2);
        let spans = &profile.lanes[0].spans;
        assert_eq!(spans.len(), 2);
        // Inner closed first, so it is recorded first; the outer span must
        // fully contain it on the shared timeline.
        assert_eq!(spans[0].kind, SpanKind::Round);
        assert_eq!(spans[1].kind, SpanKind::Replay);
        assert!(spans[1].start_ns <= spans[0].start_ns);
        assert!(
            spans[1].start_ns + spans[1].dur_ns >= spans[0].start_ns + spans[0].dur_ns,
            "outer span must contain inner span"
        );
        assert_eq!(profile.lanes[1].events, 7);
        assert_eq!(profile.lanes[0].name, "coordinator");
        assert_eq!(profile.lanes[1].name, "shard-0");
    }

    #[test]
    fn disabled_profiler_finishes_to_none() {
        let mut p = Profiler::disabled(3);
        let t = p.lane(2).begin(SpanKind::Merge);
        p.lane(2).end(t);
        assert!(p.finish().is_none());
    }
}
