//! Typed delivery paths for live health signals.
//!
//! PR 7 gave the engines heartbeats and a watchdog, but both engines
//! delivered the heartbeat line with their own raw `eprintln!`. This module
//! gives health lines exactly one typed path — a [`HeartbeatSink`] — with
//! three standard implementations: stderr (the old behaviour), an in-memory
//! capture for tests, and (in `pdpa-watch`, which sits above this crate) the
//! live-tap mirror behind `pdpa replay --serve`.
//!
//! [`ProgressSink`] is the second half of the live path: a lock-light
//! receiver for periodic [`HealthSnapshot`] updates that the engines feed on
//! an amortized cadence (every 64k events / every few hundred rounds), not
//! per event, so the disabled path stays inside the ≤2% overhead contract.

use std::sync::{Arc, Mutex};

use crate::health::HealthSnapshot;

/// Receives formatted heartbeat lines together with the snapshot that
/// produced them. Implementations must be cheap and non-blocking: the
/// engines call [`HeartbeatSink::emit`] from the hot loop (amortized, but
/// still on the critical path).
pub trait HeartbeatSink: Send + Sync {
    /// Delivers one formatted heartbeat line and its source snapshot.
    fn emit(&self, line: &str, snapshot: &HealthSnapshot);
}

/// The classic behaviour: heartbeat lines go to stderr.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrHeartbeat;

impl HeartbeatSink for StderrHeartbeat {
    fn emit(&self, line: &str, _snapshot: &HealthSnapshot) {
        eprintln!("{line}");
    }
}

/// Test-capture sink: stores every emitted line in memory instead of
/// printing, so engine tests can assert on heartbeat content without
/// scraping stderr.
#[derive(Debug, Default)]
pub struct CaptureHeartbeat {
    lines: Mutex<Vec<String>>,
}

impl CaptureHeartbeat {
    /// An empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every line emitted so far, in order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }
}

impl HeartbeatSink for CaptureHeartbeat {
    fn emit(&self, line: &str, _snapshot: &HealthSnapshot) {
        self.lines.lock().unwrap().push(line.to_string());
    }
}

/// Fans one heartbeat out to several sinks, in order. `pdpad` uses this
/// to keep the operator console (stderr) and the live tap fed from one
/// engine-side emit; each leg inherits the cheap/non-blocking contract of
/// [`HeartbeatSink`], so the tee adds nothing but the iteration.
pub struct TeeHeartbeat {
    sinks: Vec<Arc<dyn HeartbeatSink>>,
}

impl std::fmt::Debug for TeeHeartbeat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeHeartbeat")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TeeHeartbeat {
    /// A tee over the given sinks; emits are delivered in vec order.
    pub fn new(sinks: Vec<Arc<dyn HeartbeatSink>>) -> Self {
        TeeHeartbeat { sinks }
    }
}

impl HeartbeatSink for TeeHeartbeat {
    fn emit(&self, line: &str, snapshot: &HealthSnapshot) {
        for sink in &self.sinks {
            sink.emit(line, snapshot);
        }
    }
}

/// Receives periodic run-progress snapshots. The engine calls
/// [`ProgressSink::progress`] on an amortized cadence whether or not a
/// heartbeat is due, so a live status server can stay fresh without forcing
/// heartbeat lines on.
pub trait ProgressSink: Send + Sync {
    /// Delivers one point-in-time snapshot of the run.
    fn progress(&self, snapshot: &HealthSnapshot);

    /// Signals that the zero-progress watchdog tripped with the given
    /// diagnostic. Default: ignored.
    fn watchdog_fired(&self, _diagnostic: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_sink_stores_lines_in_order() {
        let sink = CaptureHeartbeat::new();
        let snap = HealthSnapshot::default();
        sink.emit("first", &snap);
        sink.emit("second", &snap);
        assert_eq!(sink.lines(), vec!["first", "second"]);
    }

    #[test]
    fn tee_delivers_to_every_leg_in_order() {
        let a = Arc::new(CaptureHeartbeat::new());
        let b = Arc::new(CaptureHeartbeat::new());
        let tee = TeeHeartbeat::new(vec![
            Arc::clone(&a) as Arc<dyn HeartbeatSink>,
            Arc::clone(&b) as Arc<dyn HeartbeatSink>,
        ]);
        tee.emit("one", &HealthSnapshot::default());
        tee.emit("two", &HealthSnapshot::default());
        assert_eq!(a.lines(), vec!["one", "two"]);
        assert_eq!(b.lines(), vec!["one", "two"]);
    }

    #[test]
    fn stderr_sink_is_constructible() {
        // Smoke: the unit struct exists and satisfies the trait object
        // shape the engines store.
        let sink: Box<dyn HeartbeatSink> = Box::new(StderrHeartbeat);
        sink.emit("heartbeat t+0s: clock=0.0s", &HealthSnapshot::default());
    }
}
