//! Minimal JSON tree, writer, and parser for the bench trajectory.
//!
//! The build environment has no crates-registry access, so `serde_json`
//! is unavailable; this module covers the subset the harness needs —
//! objects (order-preserving), arrays, strings with escapes, finite
//! numbers, booleans, and null — with a strict recursive-descent parser
//! so `BENCH_pdpa.json` round-trips exactly.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so serialized reports
/// are stable and diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values refuse to serialize).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    ///
    /// # Panics
    ///
    /// Panics on non-finite numbers — the report only carries wall times
    /// and counters, so a NaN reaching here is a harness bug.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner_pad = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                assert!(n.is_finite(), "non-finite number in JSON report");
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&inner_pad);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(&inner_pad);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in the harness's
                            // ASCII reports; map them to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("expt-all".into())),
            ("ok".into(), Value::Bool(true)),
            ("wall_secs".into(), Value::Num(12.25)),
            ("count".into(), Value::Num(3.0)),
            (
                "items".into(),
                Value::Arr(vec![Value::Null, Value::Str("a\"b\\c\nd".into())]),
            ),
            ("empty_obj".into(), Value::Obj(Vec::new())),
            ("empty_arr".into(), Value::Arr(Vec::new())),
        ]);
        let text = doc.to_pretty();
        let parsed = parse(&text).expect("parse back");
        assert_eq!(parsed, doc);
        // Serialization is a fixpoint.
        assert_eq!(parsed.to_pretty(), text);
    }

    #[test]
    fn parses_hand_written_json() {
        let v = parse(r#" { "a" : [1, -2.5, 1e3], "b": {"c": false} } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Value::Num(1000.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} junk").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(42.0).to_pretty(), "42\n");
        assert_eq!(Value::Num(1.5).to_pretty(), "1.5\n");
        let n = parse("9007199254740991").unwrap(); // 2^53 - 1 survives f64
        assert_eq!(n.as_u64(), Some(9007199254740991));
    }

    #[test]
    fn unicode_escapes_decode() {
        let escaped = "\"\\u0041\\t\"";
        let v = parse(escaped).unwrap();
        assert_eq!(v.as_str(), Some("A\t"));
        // Raw multi-byte UTF-8 passes through the unescaped fast path.
        let v = parse("\"é\"").unwrap();
        assert_eq!(v.as_str(), Some("é"));
    }
}
