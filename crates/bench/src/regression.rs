//! The perf-regression gate: compare the newest bench-trajectory entries
//! against their predecessors and fail loudly on slowdowns.
//!
//! The gate reads the append-only `trajectory` array of a
//! `BENCH_pdpa.json` document (or two documents: `--baseline` and
//! `--current`), pairs the latest entry of each mode with the previous
//! entry of the *same mode*, and flags a regression when wall-clock grew
//! or event throughput shrank beyond the noise threshold. Two guards keep
//! the gate honest on shared CI machines:
//!
//! - the **relative** threshold (default 10 %) absorbs run-to-run jitter;
//! - an **absolute floor** (0.25 s wall / 5 % of baseline throughput)
//!   keeps microscopic experiments — where 10 % is a few milliseconds —
//!   from tripping the gate on scheduler noise.

use crate::trajectory::{BenchReport, TrajectoryEntry};
use std::fmt::Write as _;

/// Wall-clock slack below which a relative regression is ignored, seconds.
pub const MIN_WALL_SLACK_SECS: f64 = 0.25;

/// One mode's baseline-vs-current comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct ModeComparison {
    /// `parallel` or `sequential`.
    pub mode: String,
    /// The older entry (the bar to clear).
    pub baseline: TrajectoryEntry,
    /// The newer entry (the run under test).
    pub current: TrajectoryEntry,
    /// Wall-clock ratio `current / baseline` (> 1 is slower).
    pub wall_ratio: f64,
    /// Throughput ratio `current / baseline` (< 1 is slower).
    pub throughput_ratio: f64,
    /// True when this mode regressed beyond the thresholds.
    pub regressed: bool,
}

/// The whole gate outcome.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateReport {
    /// Per-mode comparisons: `parallel` and `sequential` first (when
    /// present), then any other modes — `replay-*` etc. — in order of
    /// first appearance in the current trajectory.
    pub comparisons: Vec<ModeComparison>,
    /// Modes present in the trajectory but without a predecessor to
    /// compare against.
    pub uncompared: Vec<String>,
}

impl GateReport {
    /// True when any compared mode regressed.
    pub fn regressed(&self) -> bool {
        self.comparisons.iter().any(|c| c.regressed)
    }

    /// Renders the gate outcome for terminal output.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        for c in &self.comparisons {
            let verdict = if c.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "{:<10} {}: wall {:.3}s → {:.3}s ({:+.1}%)  events/s {:.0} → {:.0} ({:+.1}%)  [{} vs {}]",
                c.mode,
                verdict,
                c.baseline.wall_secs,
                c.current.wall_secs,
                (c.wall_ratio - 1.0) * 100.0,
                c.baseline.events_per_sec,
                c.current.events_per_sec,
                (c.throughput_ratio - 1.0) * 100.0,
                c.current.git_rev,
                c.baseline.git_rev,
            );
        }
        for mode in &self.uncompared {
            let _ = writeln!(
                out,
                "{mode:<10} skipped: fewer than two trajectory entries, nothing to compare"
            );
        }
        if self.comparisons.is_empty() && self.uncompared.is_empty() {
            out.push_str("empty trajectory: nothing to compare\n");
        }
        let _ = write!(
            out,
            "gate: {} (threshold {:.0}%)",
            if self.regressed() { "FAIL" } else { "PASS" },
            threshold * 100.0
        );
        out
    }
}

/// Every mode present in the trajectory, harness modes first so gate
/// output stays stable, then the rest (`replay-*` and future modes) in
/// order of first appearance.
fn modes_of(report: &BenchReport) -> Vec<String> {
    let mut modes: Vec<String> = ["parallel", "sequential"]
        .iter()
        .filter(|m| report.trajectory.iter().any(|e| &e.mode == *m))
        .map(|m| (*m).to_string())
        .collect();
    for e in &report.trajectory {
        if !modes.contains(&e.mode) {
            modes.push(e.mode.clone());
        }
    }
    modes
}

/// Compares the latest entry of each mode in `current` against the latest
/// earlier entry of the same mode in `baseline`. When both documents are
/// the same file, that pairs each mode's newest run with its previous one.
/// Modes are discovered from the trajectory itself, so every producer that
/// appends entries — the harness's `parallel`/`sequential` runs and the
/// CLI's `replay-<policy>` runs alike — is gated.
pub fn compare_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold: f64,
) -> GateReport {
    let same_doc = std::ptr::eq(baseline, current) || baseline.trajectory == current.trajectory;
    let mut report = GateReport::default();
    for mode in modes_of(current) {
        let mode = mode.as_str();
        let newest = current.trajectory.iter().rev().find(|e| e.mode == mode);
        let Some(newest) = newest else { continue };
        let bar = if same_doc {
            // Same file: the predecessor is the previous same-mode entry.
            baseline
                .trajectory
                .iter()
                .rev()
                .filter(|e| e.mode == mode)
                .nth(1)
        } else {
            baseline.trajectory.iter().rev().find(|e| e.mode == mode)
        };
        match bar {
            None => report.uncompared.push(mode.to_string()),
            Some(bar) => report
                .comparisons
                .push(compare_entries(mode, bar, newest, threshold)),
        }
    }
    report
}

fn compare_entries(
    mode: &str,
    baseline: &TrajectoryEntry,
    current: &TrajectoryEntry,
    threshold: f64,
) -> ModeComparison {
    let wall_ratio = if baseline.wall_secs > 0.0 {
        current.wall_secs / baseline.wall_secs
    } else {
        1.0
    };
    let throughput_ratio = if baseline.events_per_sec > 0.0 {
        current.events_per_sec / baseline.events_per_sec
    } else {
        1.0
    };
    let wall_regressed = wall_ratio > 1.0 + threshold
        && current.wall_secs - baseline.wall_secs > MIN_WALL_SLACK_SECS;
    // Throughput is events over wall time of the same runs, so its noise
    // floor scales with the baseline rather than being absolute.
    let throughput_regressed = baseline.events_per_sec > 0.0
        && throughput_ratio < 1.0 - threshold
        && baseline.events_per_sec - current.events_per_sec > 0.05 * baseline.events_per_sec;
    ModeComparison {
        mode: mode.to_string(),
        baseline: baseline.clone(),
        current: current.clone(),
        wall_ratio,
        throughput_ratio,
        regressed: wall_regressed || throughput_regressed,
    }
}

/// Checks a cross-mode ordering assertion: the latest `faster`-mode entry
/// must show strictly higher event throughput than the latest
/// `slower`-mode entry of the same document. The same-mode gate above
/// proves neither run regressed against its own history; this proves the
/// sharded replay actually outruns the sequential one on the same machine
/// (`--assert-faster replay-pdpa-s4:replay-pdpa-s1` in CI).
///
/// # Errors
///
/// Returns the rendered verdict line; `Err` when either mode has no
/// trajectory entry or the ordering does not hold.
pub fn assert_faster(report: &BenchReport, faster: &str, slower: &str) -> Result<String, String> {
    let latest = |mode: &str| report.trajectory.iter().rev().find(|e| e.mode == mode);
    let Some(f) = latest(faster) else {
        return Err(format!(
            "assert-faster {faster} > {slower}: no trajectory entry for mode {faster:?}"
        ));
    };
    let Some(s) = latest(slower) else {
        return Err(format!(
            "assert-faster {faster} > {slower}: no trajectory entry for mode {slower:?}"
        ));
    };
    let line = format!(
        "{faster} {:.0} events/s vs {slower} {:.0} events/s",
        f.events_per_sec, s.events_per_sec
    );
    if f.events_per_sec > s.events_per_sec {
        Ok(format!("assert-faster ok: {line}"))
    } else {
        Err(format!("assert-faster FAILED: {line}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(mode: &str, rev: &str, wall: f64, eps: f64) -> TrajectoryEntry {
        TrajectoryEntry {
            git_rev: rev.into(),
            mode: mode.into(),
            threads: if mode == "parallel" { 4 } else { 1 },
            wall_secs: wall,
            events_per_sec: eps,
            shard_imbalance: None,
        }
    }

    fn doc(entries: Vec<TrajectoryEntry>) -> BenchReport {
        BenchReport {
            parallel: None,
            sequential: None,
            trajectory: entries,
        }
    }

    #[test]
    fn doubling_wall_clock_fails_the_gate() {
        // The acceptance fixture: a synthetic 2× wall-clock regression.
        let d = doc(vec![
            entry("parallel", "old", 2.0, 10_000.0),
            entry("parallel", "new", 4.0, 5_000.0),
        ]);
        let gate = compare_reports(&d, &d, 0.10);
        assert!(gate.regressed());
        let c = &gate.comparisons[0];
        assert!(c.regressed);
        assert!((c.wall_ratio - 2.0).abs() < 1e-12);
        assert!(gate.render(0.10).contains("FAIL"));
    }

    #[test]
    fn jitter_under_the_threshold_passes() {
        let d = doc(vec![
            entry("parallel", "old", 2.0, 10_000.0),
            entry("parallel", "new", 2.1, 9_600.0),
        ]);
        let gate = compare_reports(&d, &d, 0.10);
        assert!(!gate.regressed());
        assert!(gate.render(0.10).contains("PASS"));
    }

    #[test]
    fn tiny_experiments_need_absolute_slack_to_fail() {
        // 2× slower but only 40 ms absolute: under the 0.25 s floor, and
        // throughput within its own floor — noise, not a regression.
        let d = doc(vec![
            entry("parallel", "old", 0.04, 10_000.0),
            entry("parallel", "new", 0.08, 9_800.0),
        ]);
        let gate = compare_reports(&d, &d, 0.10);
        assert!(!gate.regressed());
    }

    #[test]
    fn throughput_collapse_fails_even_with_flat_wall_clock() {
        // Same wall time, half the events drained: the harness silently
        // lost coverage — gate on it.
        let d = doc(vec![
            entry("sequential", "old", 10.0, 50_000.0),
            entry("sequential", "new", 10.0, 24_000.0),
        ]);
        let gate = compare_reports(&d, &d, 0.10);
        assert!(gate.regressed());
    }

    #[test]
    fn modes_compare_independently_and_singletons_are_skipped() {
        let d = doc(vec![
            entry("sequential", "old", 10.0, 50_000.0),
            entry("parallel", "only", 2.0, 10_000.0),
            entry("sequential", "new", 30.0, 16_000.0),
        ]);
        let gate = compare_reports(&d, &d, 0.10);
        assert_eq!(gate.comparisons.len(), 1);
        assert_eq!(gate.comparisons[0].mode, "sequential");
        assert!(gate.regressed());
        assert_eq!(gate.uncompared, vec!["parallel".to_string()]);
    }

    #[test]
    fn separate_baseline_compares_latest_to_latest() {
        let old = doc(vec![entry("parallel", "main", 2.0, 10_000.0)]);
        let new = doc(vec![entry("parallel", "branch", 4.0, 5_000.0)]);
        let gate = compare_reports(&old, &new, 0.10);
        assert!(gate.regressed());
        // And a fast branch passes.
        let fast = doc(vec![entry("parallel", "branch", 1.5, 13_000.0)]);
        assert!(!compare_reports(&old, &fast, 0.10).regressed());
    }

    #[test]
    fn replay_modes_are_discovered_and_gated() {
        // A replay mode the gate was never taught about by name: it must
        // still be paired and can still fail the gate.
        let d = doc(vec![
            entry("parallel", "old", 2.0, 10_000.0),
            entry("replay-pdpa", "old", 3.0, 900_000.0),
            entry("parallel", "new", 2.0, 10_100.0),
            entry("replay-pdpa", "new", 8.0, 330_000.0),
            entry("replay-equip", "only", 3.1, 880_000.0),
        ]);
        let gate = compare_reports(&d, &d, 0.10);
        let modes: Vec<&str> = gate.comparisons.iter().map(|c| c.mode.as_str()).collect();
        // Harness modes render first, discovered modes after.
        assert_eq!(modes, vec!["parallel", "replay-pdpa"]);
        assert!(gate.regressed(), "the replay slowdown trips the gate");
        assert!(!gate.comparisons[0].regressed);
        assert!(gate.comparisons[1].regressed);
        assert_eq!(gate.uncompared, vec!["replay-equip".to_string()]);
    }

    #[test]
    fn assert_faster_orders_modes_by_latest_throughput() {
        let d = doc(vec![
            entry("replay-pdpa-s1", "a", 10.0, 1_000_000.0),
            entry("replay-pdpa-s4", "a", 3.0, 3_600_000.0),
            // A newer, slower s4 entry: `latest` must win, not `best`.
            entry("replay-pdpa-s4", "b", 8.0, 1_400_000.0),
        ]);
        let ok = assert_faster(&d, "replay-pdpa-s4", "replay-pdpa-s1").unwrap();
        assert!(ok.contains("ok"), "{ok}");
        let err = assert_faster(&d, "replay-pdpa-s1", "replay-pdpa-s4").unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
    }

    #[test]
    fn assert_faster_requires_both_modes() {
        let d = doc(vec![entry("replay-pdpa-s1", "a", 10.0, 1_000_000.0)]);
        let err = assert_faster(&d, "replay-pdpa-s4", "replay-pdpa-s1").unwrap_err();
        assert!(err.contains("no trajectory entry"), "{err}");
        let err = assert_faster(&d, "replay-pdpa-s1", "missing").unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn assert_faster_is_strict_on_ties() {
        let d = doc(vec![
            entry("a-mode", "r", 5.0, 2_000_000.0),
            entry("b-mode", "r", 5.0, 2_000_000.0),
        ]);
        assert!(assert_faster(&d, "a-mode", "b-mode").is_err());
    }

    #[test]
    fn empty_trajectory_passes_with_a_note() {
        let d = doc(Vec::new());
        let gate = compare_reports(&d, &d, 0.10);
        assert!(!gate.regressed());
        assert!(gate.render(0.10).contains("empty trajectory"));
    }
}
