//! Global harness counters feeding the `--json` bench trajectory.
//!
//! Every engine run funneled through the harness ([`crate::run_single`] and
//! the experiments that drive [`pdpa_engine::Engine`] directly) records its
//! event-queue traffic here; every averaged cell bumps the cell counter.
//! The counters are process-wide atomics so parallel sweeps aggregate for
//! free, and `BENCH_pdpa.json` derives its events/sec figure from them.

use std::sync::atomic::{AtomicU64, Ordering};

use pdpa_engine::RunResult;

static EVENTS_PUSHED: AtomicU64 = AtomicU64::new(0);
static EVENTS_POPPED: AtomicU64 = AtomicU64::new(0);
static ENGINE_RUNS: AtomicU64 = AtomicU64::new(0);
static CELLS_RUN: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the counters at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Simulation events scheduled across all recorded runs.
    pub events_pushed: u64,
    /// Simulation events drained across all recorded runs.
    pub events_popped: u64,
    /// Engine executions recorded.
    pub engine_runs: u64,
    /// Seed-averaged cells produced.
    pub cells_run: u64,
}

/// Adds one engine run's event traffic to the global counters.
pub fn record_run(result: &RunResult) {
    EVENTS_PUSHED.fetch_add(result.events_pushed, Ordering::Relaxed);
    EVENTS_POPPED.fetch_add(result.events_popped, Ordering::Relaxed);
    ENGINE_RUNS.fetch_add(1, Ordering::Relaxed);
}

/// Counts one seed-averaged cell.
pub fn record_cell() {
    CELLS_RUN.fetch_add(1, Ordering::Relaxed);
}

/// Reads the current counter values.
pub fn snapshot() -> Snapshot {
    Snapshot {
        events_pushed: EVENTS_PUSHED.load(Ordering::Relaxed),
        events_popped: EVENTS_POPPED.load(Ordering::Relaxed),
        engine_runs: ENGINE_RUNS.load(Ordering::Relaxed),
        cells_run: CELLS_RUN.load(Ordering::Relaxed),
    }
}

impl Snapshot {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            events_pushed: self.events_pushed - earlier.events_pushed,
            events_popped: self.events_popped - earlier.events_popped,
            engine_runs: self.engine_runs - earlier.engine_runs,
            cells_run: self.cells_run - earlier.cells_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_accumulate() {
        let before = snapshot();
        record_cell();
        let after = snapshot();
        let delta = after.since(&before);
        // Other tests may run concurrently and bump the counters too, so
        // only the lower bound is stable.
        assert!(delta.cells_run >= 1);
    }
}
