//! Fig. 7 — workload 2 under multiprogramming levels 2, 3, and 4.
//!
//! The paper's conclusion: "PDPA is more robust than Equipartition to the
//! multiprogramming level decided by the system administrator: PDPA
//! dynamically detects the optimal value for any moment", so its results
//! barely move with the configured level, while Equipartition's response
//! times blow up at ML = 2 (jobs get their full requests but the queue
//! stalls).
//!
//! The (policy, ml, load) grid is computed once — 18 cells, 54 engine
//! runs — fanned out over worker threads, then rendered per metric and
//! class from the precomputed cells.

use std::fmt::Write as _;

use crate::{average, stats, Cell, Metric, PolicyKind, PAPER_LOADS, SEEDS};
use pdpa_engine::{Engine, EngineConfig, RunResult};
use pdpa_qs::Workload;

const POLICIES: [PolicyKind; 2] = [PolicyKind::Equipartition, PolicyKind::Pdpa];
const MLS: [usize; 3] = [2, 3, 4];

fn run_one(workload: Workload, policy: PolicyKind, ml: usize, load: f64, seed: u64) -> RunResult {
    let jobs = workload.build(load, seed);
    let config = EngineConfig::default().with_seed(seed ^ 0xA5A5);
    let result = Engine::new(config).run(jobs, policy.build_with_ml(ml));
    stats::record_run(&result);
    result
}

/// Renders the experiment.
pub fn run() -> String {
    let workload = Workload::W2;

    // One flat task list over the whole grid, seeds innermost.
    let tasks: Vec<(PolicyKind, usize, f64, u64)> = POLICIES
        .iter()
        .flat_map(|&policy| {
            MLS.iter().flat_map(move |&ml| {
                PAPER_LOADS
                    .iter()
                    .flat_map(move |&load| SEEDS.iter().map(move |&seed| (policy, ml, load, seed)))
            })
        })
        .collect();
    let runs = pdpa_parallel::par_map(
        &tasks,
        pdpa_parallel::num_threads(),
        |&(policy, ml, load, seed)| run_one(workload, policy, ml, load, seed),
    );
    // Regroup into cells, indexed [policy][ml][load] in task order.
    let mut runs = runs.into_iter();
    let cells: Vec<Cell> = (0..POLICIES.len() * MLS.len() * PAPER_LOADS.len())
        .map(|_| {
            let cell_runs: Vec<RunResult> = (&mut runs).take(SEEDS.len()).collect();
            average(&cell_runs, workload)
        })
        .collect();
    let cell = |p: usize, m: usize, l: usize| &cells[(p * MLS.len() + m) * PAPER_LOADS.len() + l];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 7 — workload 2, multiprogramming levels 2/3/4\n"
    );
    for metric in [Metric::Response, Metric::Execution] {
        let _ = writeln!(out, "## average {} time (s)\n", metric.name());
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>10} {:>10}",
            "policy/ml @ load", "60%", "80%", "100%"
        );
        for (p, policy) in POLICIES.iter().enumerate() {
            for (m, ml) in MLS.iter().enumerate() {
                for class in workload.classes() {
                    let cols: Vec<String> = (0..PAPER_LOADS.len())
                        .map(|l| format!("{:>10.1}", metric.pick(cell(p, m, l), class)))
                        .collect();
                    let _ = writeln!(
                        out,
                        "{:<18} {}",
                        format!("{} ml={} {}", policy.label(), ml, class.name()),
                        cols.join(" ")
                    );
                }
            }
        }
        out.push('\n');
    }
    out
}
