//! Extension experiment — clusters of SMPs with cooperating schedulers
//! (§6 future work).
//!
//! A 4-node × 8-CPU cluster runs a mix of spanning and single-node jobs
//! under two regimes: independent per-node equipartition, and cooperative
//! co-allocation ("each application is given resources at the same time on
//! all the nodes"). The table shows the coordination waste and makespan.

use std::fmt::Write as _;
use std::sync::Arc;

use pdpa_apps::Amdahl;
use pdpa_cluster::{run_cluster, ClusterJob, ClusterSpec, Coordination};
use pdpa_sim::SimDuration;

fn mix() -> Vec<ClusterJob> {
    let inner = Arc::new(Amdahl::new(0.03));
    let job = |span: usize, seq: f64, pinned: Option<Vec<usize>>| ClusterJob {
        span,
        per_node_request: 8,
        iterations: 40,
        seq_iter_time: SimDuration::from_secs(seq),
        inner: inner.clone(),
        pinned,
    };
    // Asymmetric residency: node 0 is crowded, nodes 1–3 host the spanning
    // job plus one single-node co-resident each.
    vec![
        job(4, 24.0, Some(vec![0, 1, 2, 3])), // the big spanning application
        job(1, 5.0, Some(vec![0])),
        job(1, 5.0, Some(vec![0])),
        job(1, 6.0, Some(vec![1])),
        job(1, 6.0, Some(vec![2])),
        job(1, 6.0, Some(vec![3])),
    ]
}

/// Renders the experiment.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Cluster of SMPs (extension — paper §6): 4 nodes × 8 CPUs\n"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>11} {:>14}  per-job exec (s)",
        "coordination", "makespan", "wasted cpu-s"
    );
    for mode in [Coordination::Independent, Coordination::Cooperative] {
        let r = run_cluster(ClusterSpec::new(4, 8), &mix(), mode);
        let execs: Vec<String> = r.exec_secs.iter().map(|t| format!("{t:.0}")).collect();
        let _ = writeln!(
            out,
            "{:<14} {:>10.1}s {:>14.1}  [{}]",
            format!("{mode:?}"),
            r.makespan_secs,
            r.wasted_cpu_seconds,
            execs.join(", ")
        );
    }
    let _ = writeln!(
        out,
        "\nIndependent node schedulers grant a spanning job different counts on\n\
         different nodes; the job synchronizes every iteration, so everything\n\
         above the slowest node's grant is waste. Cooperation eliminates it."
    );
    out
}
