//! Extension experiment — sensitivity to measurement noise and
//! reallocation cost.
//!
//! The paper's robustness argument, quantified: "Equal_efficiency … is too
//! sensitive to small changes in the efficiency measurements" while PDPA's
//! target-efficiency band and stable states absorb noise. Sweeps:
//!
//! 1. measurement noise σ ∈ {0, 2 %, 5 %, 10 %} on workload 1 (the
//!    all-scalable mix where Equal_efficiency's thrash is most visible);
//! 2. reallocation cost × {0, 1, 4} — reallocation-hungry policies pay
//!    proportionally.
//!
//! Every (sweep point, policy) cell is an independent task fanned out over
//! worker threads; rows render from the regrouped results in sweep order.

use std::fmt::Write as _;

use crate::{stats, PolicyKind, SEEDS};
use pdpa_engine::{Engine, EngineConfig};
use pdpa_qs::Workload;
use pdpa_sim::{CostModel, SimDuration};

const POLICIES: [PolicyKind; 3] = [
    PolicyKind::Equipartition,
    PolicyKind::EqualEfficiency,
    PolicyKind::Pdpa,
];
const SIGMAS: [f64; 4] = [0.0, 0.02, 0.05, 0.10];
const COST_FACTORS: [f64; 3] = [0.0, 1.0, 4.0];

fn mean_response(policy: PolicyKind, config_of: impl Fn(u64) -> EngineConfig) -> (f64, u64) {
    let mut resp = 0.0;
    let mut reallocs = 0u64;
    for &seed in &SEEDS {
        let jobs = Workload::W1.build(1.0, seed);
        let r = Engine::new(config_of(seed)).run(jobs, policy.build());
        stats::record_run(&r);
        assert!(r.completed_all);
        resp += r.summary.overall_avg_response_secs();
        reallocs += r.machine_stats.reallocations;
    }
    (resp / SEEDS.len() as f64, reallocs / SEEDS.len() as u64)
}

fn noise_config(sigma: f64, seed: u64) -> EngineConfig {
    let mut c = EngineConfig::default().with_seed(seed ^ 0xA5A5);
    c.noise_sigma = sigma;
    c
}

fn cost_config(factor: f64, seed: u64) -> EngineConfig {
    let mut c = EngineConfig::default().with_seed(seed ^ 0xA5A5);
    let base = CostModel::origin2000();
    c.cost = CostModel {
        realloc_fixed: SimDuration::from_secs(base.realloc_fixed.as_secs() * factor),
        per_gained_cpu: SimDuration::from_secs(base.per_gained_cpu.as_secs() * factor),
        per_lost_cpu: SimDuration::from_secs(base.per_lost_cpu.as_secs() * factor),
    };
    c
}

/// Renders the experiment.
pub fn run() -> String {
    // Fan out both sweeps as one task list: noise points first, then cost
    // points, each (point, policy) computing its seed-averaged response.
    let noise_tasks: Vec<(f64, PolicyKind)> = SIGMAS
        .iter()
        .flat_map(|&s| POLICIES.iter().map(move |&p| (s, p)))
        .collect();
    let cost_tasks: Vec<(f64, PolicyKind)> = COST_FACTORS
        .iter()
        .flat_map(|&f| POLICIES.iter().map(move |&p| (f, p)))
        .collect();
    let threads = pdpa_parallel::num_threads();
    let noise_results = pdpa_parallel::par_map(&noise_tasks, threads, |&(sigma, policy)| {
        mean_response(policy, |seed| noise_config(sigma, seed))
    });
    let cost_results = pdpa_parallel::par_map(&cost_tasks, threads, |&(factor, policy)| {
        mean_response(policy, |seed| cost_config(factor, seed))
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Sensitivity sweeps (extension) — workload 1, load = 100 %\n"
    );

    let _ = writeln!(
        out,
        "## measurement noise (mean response (s) / reallocations)\n"
    );
    let _ = write!(out, "{:<12}", "sigma");
    for policy in POLICIES {
        let _ = write!(out, "{:>22}", policy.label());
    }
    out.push('\n');
    for (si, sigma) in SIGMAS.iter().enumerate() {
        let _ = write!(out, "{:<12}", format!("{:.0}%", sigma * 100.0));
        for pi in 0..POLICIES.len() {
            let (resp, reallocs) = noise_results[si * POLICIES.len() + pi];
            let _ = write!(out, "{:>15.0}s/{:<6}", resp, reallocs);
        }
        out.push('\n');
    }

    let _ = writeln!(out, "\n## reallocation cost (mean response (s))\n");
    let _ = write!(out, "{:<12}", "cost");
    for policy in POLICIES {
        let _ = write!(out, "{:>15}", policy.label());
    }
    out.push('\n');
    for (fi, factor) in COST_FACTORS.iter().enumerate() {
        let _ = write!(out, "{:<12}", format!("x{factor}"));
        for pi in 0..POLICIES.len() {
            let (resp, _) = cost_results[fi * POLICIES.len() + pi];
            let _ = write!(out, "{:>14.0}s", resp);
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "\nReading: Equal_efficiency's response degrades with noise (each noisy\n\
         report re-fits its extrapolation and reallocates the whole machine)\n\
         and with reallocation cost; PDPA's smoothing and stable states keep\n\
         it within a band of Equipartition at every setting."
    );
    out
}
