//! Extension experiment — rigid first-fit versus dynamic space sharing
//! (the §4.3 motivation, quantified).
//!
//! Rigid systems "can only be executed with the number of processors
//! requested", so a 60-CPU machine running one 30-processor job strands 30
//! processors whenever the next queued job also wants 30 and a 2-processor
//! apsi sits behind it. Dynamic space sharing starts jobs on whatever is
//! free. The table compares makespan and mean response on the paper's
//! workloads at 100 % load.
//!
//! All (workload, variant) cells run as one flat parallel map; the table
//! renders from the regrouped results in workload-major order.

use std::fmt::Write as _;

use crate::{stats, PolicyKind, SEEDS};
use pdpa_engine::{Engine, EngineConfig};
use pdpa_policies::RigidFirstFit;
use pdpa_qs::Workload;

const VARIANTS: [&str; 4] = ["Rigid", "Rigid+backfill", "Equip", "PDPA"];

fn run_variant(wl: Workload, which: &str) -> (f64, f64, usize) {
    let mut makespan = 0.0;
    let mut resp = 0.0;
    let mut ml = 0usize;
    for &seed in &SEEDS {
        let jobs = wl.build(1.0, seed);
        let policy: Box<dyn pdpa_policies::SchedulingPolicy> = match which {
            "Rigid" | "Rigid+backfill" => Box::new(RigidFirstFit::paper_default()),
            "Equip" => PolicyKind::Equipartition.build(),
            _ => PolicyKind::Pdpa.build(),
        };
        let mut config = EngineConfig::default().with_seed(seed ^ 0xA5A5);
        if which == "Rigid+backfill" {
            config = config.with_backfill();
        }
        let r = Engine::new(config).run(jobs, policy);
        stats::record_run(&r);
        assert!(r.completed_all, "{wl}/{which} wedged");
        makespan += r.summary.makespan_secs();
        resp += r.summary.overall_avg_response_secs();
        ml = ml.max(r.max_ml);
    }
    let n = SEEDS.len() as f64;
    (makespan / n, resp / n, ml)
}

/// Renders the experiment.
pub fn run() -> String {
    let tasks: Vec<(Workload, &str)> = Workload::ALL
        .iter()
        .flat_map(|&wl| VARIANTS.iter().map(move |&which| (wl, which)))
        .collect();
    let results = pdpa_parallel::par_map(&tasks, pdpa_parallel::num_threads(), |&(wl, which)| {
        run_variant(wl, which)
    });
    let mut results = results.into_iter();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Rigid first-fit vs dynamic space sharing (extension — §4.3)\n"
    );
    let _ = writeln!(
        out,
        "{:<6} {:<16} {:>10} {:>16} {:>8}",
        "wl", "policy", "makespan", "mean response", "maxML"
    );
    for wl in Workload::ALL {
        for which in VARIANTS {
            let (makespan, resp, ml) = results.next().expect("one result per task");
            let _ = writeln!(
                out,
                "{:<6} {:<16} {:>9.0}s {:>15.0}s {:>8}",
                wl.name(),
                which,
                makespan,
                resp,
                ml
            );
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "Backfilling (scanning the queue for any job that fits) recovers part of\n\
         the rigid policy's fragmentation loss; dynamic space sharing and PDPA's\n\
         coordination recover the rest."
    );
    out
}
