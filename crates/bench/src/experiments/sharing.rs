//! Extension experiment — the three sharing disciplines side by side.
//!
//! The scheduling literature the paper builds on contrasts three ways to
//! multiplex a multiprocessor: **space sharing** (dedicated partitions —
//! Equipartition, PDPA), **gang scheduling** (whole-machine round-robin
//! slots, perfectly coscheduled), and **uncoordinated time sharing** (the
//! IRIX model). This experiment puts all three on the paper's workloads at
//! 100 % load, with per-policy mean response, makespan, and the Table-2
//! burst structure.
//!
//! Each (workload, policy) cell — one traced run plus the seed sweep — is
//! an independent parallel task; tables render in the fixed label order.

use std::fmt::Write as _;

use crate::{stats, PolicyKind, SEEDS};
use pdpa_engine::{Engine, EngineConfig};
use pdpa_policies::{GangScheduler, SchedulingPolicy};
use pdpa_qs::Workload;
use pdpa_trace::BurstStats;

const LABELS: [&str; 4] = ["Equip", "PDPA", "Gang", "IRIX"];

fn build(label: &str) -> Box<dyn SchedulingPolicy> {
    match label {
        "Gang" => Box::new(GangScheduler::paper_comparable()),
        "IRIX" => PolicyKind::Irix.build(),
        "Equip" => PolicyKind::Equipartition.build(),
        _ => PolicyKind::Pdpa.build(),
    }
}

struct Row {
    makespan: f64,
    resp: f64,
    stats: BurstStats,
}

fn run_cell(wl: Workload, label: &str) -> Row {
    // Burst structure from one traced run (seed 42).
    let traced = {
        let jobs = wl.build(1.0, 42);
        let config = EngineConfig::default().with_trace().with_seed(42);
        let r = Engine::new(config).run(jobs, build(label));
        stats::record_run(&r);
        let migrations = r.total_migrations();
        let trace = r.trace.expect("traced");
        BurstStats::from_trace(&trace, migrations)
    };
    let mut makespan = 0.0;
    let mut resp = 0.0;
    for &seed in &SEEDS {
        let jobs = wl.build(1.0, seed);
        let r =
            Engine::new(EngineConfig::default().with_seed(seed ^ 0xA5A5)).run(jobs, build(label));
        stats::record_run(&r);
        assert!(r.completed_all, "{wl}/{label} wedged");
        makespan += r.summary.makespan_secs();
        resp += r.summary.overall_avg_response_secs();
    }
    let n = SEEDS.len() as f64;
    Row {
        makespan: makespan / n,
        resp: resp / n,
        stats: traced,
    }
}

/// Renders the experiment.
pub fn run() -> String {
    let workloads = [Workload::W1, Workload::W4];
    let tasks: Vec<(Workload, &str)> = workloads
        .iter()
        .flat_map(|&wl| LABELS.iter().map(move |&label| (wl, label)))
        .collect();
    let rows = pdpa_parallel::par_map(&tasks, pdpa_parallel::num_threads(), |&(wl, label)| {
        run_cell(wl, label)
    });
    let mut rows = rows.into_iter();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Sharing disciplines (extension): space vs gang vs time sharing\n"
    );
    for wl in workloads {
        let _ = writeln!(out, "## {wl} at 100 % load\n");
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>15} {:>12} {:>17}",
            "policy", "makespan", "mean response", "migrations", "avg burst (ms)"
        );
        for label in LABELS {
            let row = rows.next().expect("one row per task");
            let _ = writeln!(
                out,
                "{:<8} {:>9.0}s {:>14.0}s {:>12} {:>17.0}",
                label,
                row.makespan,
                row.resp,
                row.stats.migrations,
                row.stats.avg_burst_secs * 1e3
            );
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "Gang coschedules perfectly but pays the 1/n duty cycle: fine for the\n\
         all-scalable w1, poor for w4 where apsi wastes whole-machine slots.\n\
         Uncoordinated time sharing pays migrations and affinity loss instead."
    );
    out
}
