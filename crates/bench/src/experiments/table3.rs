//! Table 3 — workload 3 with apsi requesting 30 processors (not tuned),
//! load = 60 %.
//!
//! The paper's numbers (Origin 2000):
//!
//! | | bt resp | bt exec | apsi resp | apsi exec | workload exec | ML |
//! |---|---|---|---|---|---|---|
//! | Equip | 949 s | 102 s | 890 s | 107 s | 1993 s | 4 |
//! | PDPA | 95 s | 88 s | 107 s | 98 s | 427 s | 29 |
//!
//! Without tuning, Equipartition wastes tens of processors on an
//! application whose speedup is flat at 1.5; PDPA measures that, shrinks
//! apsi to two processors, and raises the multiprogramming level by an
//! order of magnitude.

use std::fmt::Write as _;

use crate::{run_cell, PolicyKind, SEEDS};
use pdpa_apps::AppClass;
use pdpa_metrics::improvement_pct;
use pdpa_qs::Workload;

/// Renders the experiment.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 3 — w3, apsi requesting 30 processors (untuned), load = 60 %\n"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>11} {:>11} {:>14} {:>5}",
        "", "bt resp", "bt exec", "apsi resp", "apsi exec", "workload exec", "ML"
    );
    let mut rows = Vec::new();
    for policy in [PolicyKind::Equipartition, PolicyKind::Pdpa] {
        let cell = run_cell(Workload::W3, false, policy, 0.6, &SEEDS);
        let bt_r = cell.response[&AppClass::BtA];
        let bt_x = cell.execution[&AppClass::BtA];
        let ap_r = cell.response[&AppClass::Apsi];
        let ap_x = cell.execution[&AppClass::Apsi];
        let _ = writeln!(
            out,
            "{:<8} {:>9.0}s {:>9.0}s {:>10.0}s {:>10.0}s {:>13.0}s {:>5.0}",
            policy.label(),
            bt_r,
            bt_x,
            ap_r,
            ap_x,
            cell.makespan,
            cell.max_ml
        );
        rows.push((bt_r, bt_x, ap_r, ap_x, cell.makespan));
    }
    let (equip, pdpa) = (rows[0], rows[1]);
    let _ = writeln!(
        out,
        "{:<8} {:>9.0}% {:>9.0}% {:>10.0}% {:>10.0}% {:>13.0}%",
        "Speedup",
        improvement_pct(pdpa.0, equip.0),
        improvement_pct(pdpa.1, equip.1),
        improvement_pct(pdpa.2, equip.2),
        improvement_pct(pdpa.3, equip.3),
        improvement_pct(pdpa.4, equip.4),
    );
    let _ = writeln!(
        out,
        "\npaper: speedups 998% / 15% / 831% / 9% / 466%, ML 4 vs 29"
    );
    out
}
