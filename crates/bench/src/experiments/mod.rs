//! The in-process experiment registry.
//!
//! Every paper artifact lives here as a function returning its rendered
//! `String` (no direct stdout writes), so `expt-all` can run experiments
//! concurrently on worker threads and still print them in deterministic
//! paper order — outputs are joined in registry order regardless of which
//! experiment finishes first. The thin `expt-*` binaries call into this
//! registry through [`crate::harness`].

use crate::{print_figure, run_figure, Metric};
use pdpa_qs::Workload;
use std::fmt::Write as _;

pub mod ablation;
pub mod chaos;
pub mod cluster;
pub mod fig3;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fragmentation;
pub mod hybrid;
pub mod scale;
pub mod sensitivity;
pub mod sharing;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod tournament;

/// One registered experiment.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Short name used by `--only` and the JSON trajectory (`fig3`, …).
    pub name: &'static str,
    /// One-line description shown in usage output.
    pub title: &'static str,
    /// Renders the experiment's full output.
    pub run: fn() -> String,
}

/// The experiments in the paper's presentation order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig3",
            title: "Fig. 3 — speedup curves of the four applications",
            run: fig3::run,
        },
        Experiment {
            name: "table1",
            title: "Table 1 — workload compositions",
            run: table1::run,
        },
        Experiment {
            name: "fig4",
            title: "Fig. 4 — workload 1 response/execution times",
            run: || figure(Workload::W1, "Fig. 4 — workload 1"),
        },
        Experiment {
            name: "fig5",
            title: "Fig. 5 — execution views (IRIX vs PDPA)",
            run: fig5::run,
        },
        Experiment {
            name: "table2",
            title: "Table 2 — migrations and burst statistics",
            run: table2::run,
        },
        Experiment {
            name: "fig6",
            title: "Fig. 6 — workload 2 response/execution times",
            run: || figure(Workload::W2, "Fig. 6 — workload 2"),
        },
        Experiment {
            name: "fig7",
            title: "Fig. 7 — workload 2 under multiprogramming levels 2/3/4",
            run: fig7::run,
        },
        Experiment {
            name: "fig8",
            title: "Fig. 8 — PDPA's dynamic multiprogramming level",
            run: fig8::run,
        },
        Experiment {
            name: "fig9",
            title: "Fig. 9 — workload 3 response/execution times",
            run: || figure(Workload::W3, "Fig. 9 — workload 3"),
        },
        Experiment {
            name: "table3",
            title: "Table 3 — workload 3 with an untuned apsi request",
            run: table3::run,
        },
        Experiment {
            name: "fig10",
            title: "Fig. 10 — workload 4 response/execution times",
            run: || figure(Workload::W4, "Fig. 10 — workload 4"),
        },
        Experiment {
            name: "table4",
            title: "Table 4 — workload 4 untuned",
            run: table4::run,
        },
        Experiment {
            name: "ablation",
            title: "PDPA design-choice ablations (extension)",
            run: ablation::run,
        },
        Experiment {
            name: "hybrid",
            title: "MPI+OpenMP hybrid applications (extension, §6)",
            run: hybrid::run,
        },
        Experiment {
            name: "cluster",
            title: "Clusters of SMPs with cooperating schedulers (extension, §6)",
            run: cluster::run,
        },
        Experiment {
            name: "fragmentation",
            title: "Rigid first-fit vs dynamic space sharing (extension, §4.3)",
            run: fragmentation::run,
        },
        Experiment {
            name: "sensitivity",
            title: "Sensitivity to noise and reallocation cost (extension)",
            run: sensitivity::run,
        },
        Experiment {
            name: "sharing",
            title: "Space vs gang vs time sharing (extension)",
            run: sharing::run,
        },
        Experiment {
            name: "chaos",
            title: "Graceful degradation under injected faults (extension)",
            run: chaos::run,
        },
        Experiment {
            name: "scale",
            title: "Large-scale SWF trace replay (extension)",
            run: scale::run,
        },
        Experiment {
            name: "tournament",
            title: "Policy-zoo slowdown tournament (extension)",
            run: tournament::run,
        },
    ]
}

/// Finds an experiment by name.
pub fn find(name: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.name == name)
}

/// The shared Fig. 4/6/9/10 shape: response, execution, and allocation
/// tables plus the per-policy multiprogramming-level line.
pub(crate) fn figure(workload: Workload, title_prefix: &str) -> String {
    let grid = run_figure(workload, true);
    render_figure(&grid, workload, title_prefix)
}

/// Renders an already-computed figure grid (shared with the determinism
/// test, which compares parallel and sequential grids byte for byte).
pub fn render_figure(grid: &crate::Grid, workload: Workload, title_prefix: &str) -> String {
    let mut out = String::new();
    out.push_str(&print_figure(
        &format!("{title_prefix} response times"),
        workload,
        grid,
        Metric::Response,
    ));
    out.push_str(&print_figure(
        &format!("{title_prefix} execution times"),
        workload,
        grid,
        Metric::Execution,
    ));
    out.push_str(&print_figure(
        &format!("{title_prefix} average allocations (analysis)"),
        workload,
        grid,
        Metric::AvgAlloc,
    ));
    for (policy, cells) in grid {
        let mls: Vec<String> = cells.iter().map(|c| format!("{:.0}", c.max_ml)).collect();
        let _ = writeln!(
            out,
            "max multiprogramming level {:<10} {}",
            policy.label(),
            mls.join(" / ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_in_paper_order_with_unique_names() {
        let names: Vec<&str> = registry().iter().map(|e| e.name).collect();
        assert_eq!(names[0], "fig3");
        assert_eq!(names[2], "fig4");
        assert_eq!(names.last(), Some(&"tournament"));
        assert_eq!(names.len(), 21);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names must be unique");
    }

    #[test]
    fn find_resolves_names() {
        assert!(find("fig5").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn cheap_experiments_render() {
        // The two closed-form experiments run in microseconds; smoke them.
        let out = fig3::run();
        assert!(out.contains("Fig. 3"));
        assert!(out.contains("swim"));
        let out = table1::run();
        assert!(out.contains("Table 1"));
    }
}
