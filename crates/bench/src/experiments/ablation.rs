//! PDPA ablations (extension beyond the paper's evaluation).
//!
//! Three design choices DESIGN.md calls out, each removed in isolation on
//! workload 4 at 100 % load:
//!
//! 1. **No coordination** (`coordinate_ml = false`) — PDPA's allocation
//!    search with a fixed multiprogramming level of 4: quantifies how much
//!    of PDPA's win is the dynamic level versus the efficiency search.
//! 2. **No relative-speedup test** (`use_relative_speedup = false`) — the
//!    INC state keeps growing superlinear applications as long as raw
//!    efficiency stays high (§4.2.2 exists to stop exactly this).
//! 3. **Target-efficiency sweep** — `target_eff` ∈ {0.5, 0.7, 0.9}: the
//!    knob trading individual execution time against system throughput.
//! 4. **Load-adaptive target** — §4.1's alternative of setting the target
//!    efficiency dynamically from the load of the system.
//!
//! All variant × seed runs go through one flat parallel map; rows render
//! in variant order from the regrouped cells.

use std::fmt::Write as _;

use crate::{average, stats, SEEDS};
use pdpa_apps::AppClass;
use pdpa_core::{Pdpa, PdpaParams, TargetMode};
use pdpa_engine::{Engine, EngineConfig, RunResult};
use pdpa_qs::Workload;

fn variants() -> Vec<(String, PdpaParams)> {
    let mut list: Vec<(String, PdpaParams)> = Vec::new();
    list.push(("PDPA (paper)".into(), PdpaParams::default()));

    let no_coord = PdpaParams {
        coordinate_ml: false,
        ..PdpaParams::default()
    };
    list.push(("no ML coordination".into(), no_coord));

    let no_rel = PdpaParams {
        use_relative_speedup: false,
        ..PdpaParams::default()
    };
    list.push(("no relative-speedup test".into(), no_rel));

    for target in [0.5, 0.9] {
        list.push((
            format!("target_eff = {target}"),
            PdpaParams::default().with_target_eff(target),
        ));
    }
    for step in [2usize, 8] {
        list.push((
            format!("step = {step}"),
            PdpaParams::default().with_step(step),
        ));
    }

    // §4.1's alternative: the target efficiency set dynamically from load.
    list.push((
        "adaptive target 0.5..0.85".into(),
        PdpaParams::default().with_target_mode(TargetMode::LoadAdaptive {
            min: 0.5,
            max: 0.85,
        }),
    ));
    list
}

/// Renders the experiment.
pub fn run() -> String {
    let workload = Workload::W4;
    let variants = variants();

    // Flatten (variant, seed) and fan out.
    let tasks: Vec<(usize, u64)> = (0..variants.len())
        .flat_map(|v| SEEDS.iter().map(move |&seed| (v, seed)))
        .collect();
    let runs = pdpa_parallel::par_map(&tasks, pdpa_parallel::num_threads(), |&(v, seed)| {
        let jobs = workload.build(1.0, seed);
        let config = EngineConfig::default().with_seed(seed ^ 0xA5A5);
        let result = Engine::new(config).run(jobs, Box::new(Pdpa::new(variants[v].1)));
        stats::record_run(&result);
        result
    });
    let mut runs = runs.into_iter();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# PDPA ablations — workload 4, load = 100 % (response/execution per class)\n"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>11} {:>11} {:>11} {:>11}",
        "", "swim", "bt.A", "hydro2d", "apsi"
    );
    for (label, _) in &variants {
        let cell_runs: Vec<RunResult> = (&mut runs).take(SEEDS.len()).collect();
        let cell = average(&cell_runs, workload);
        let _ = write!(out, "{label:<28}");
        for class in AppClass::ALL {
            let _ = write!(
                out,
                " {:>5.0}/{:<5.0}",
                cell.response[&class], cell.execution[&class]
            );
        }
        let _ = writeln!(
            out,
            " makespan {:>5.0}s  maxML {:>3.0}",
            cell.makespan, cell.max_ml
        );
    }
    out
}
