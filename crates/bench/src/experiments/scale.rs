//! Extension experiment — large-scale SWF trace replay.
//!
//! The paper's workloads submit a few dozen jobs over 300 seconds; this
//! experiment drives the full trace pipeline at two orders of magnitude
//! more jobs: generate a long Poisson workload, round-trip it through the
//! Standard Workload Format text (streaming reader, header directives),
//! shape it (window slice, machine remap, load rescale), and replay it
//! under PDPA, Equipartition, and Equal_efficiency. Reported per policy:
//! makespan, utilization, and the per-job slowdown distribution computed
//! by `pdpa-analyze` from the replayed decision-event stream.
//!
//! The point is twofold: the allocation-policy comparison survives at
//! scale (Berg et al. evaluate allocation policies on exactly such
//! trace-driven streams), and the simulator's hot path — keyed
//! event-queue invalidation, batched arrival insertion — is exercised on
//! thousands of concurrent jobs, which is what `pdpa replay --json` gates
//! in CI.

use std::fmt::Write as _;

use crate::PolicyKind;
use pdpa_analyze::RunAnalysis;
use pdpa_engine::{Engine, EngineConfig};
use pdpa_obs::RecordingObserver;
use pdpa_qs::shape;
use pdpa_qs::swf;
use pdpa_qs::{GeneratorConfig, Workload};

/// Submission window, seconds — 20× the paper's 300 s, ≈1400 jobs at
/// full load.
const DURATION_SECS: f64 = 6000.0;
/// Target demand as a fraction of machine capacity.
const LOAD: f64 = 1.0;
/// Machine size, processors.
const CPUS: usize = 60;
/// One seed: the experiment is about scale, not seed-averaging.
const SEED: u64 = 42;

const POLICIES: [PolicyKind; 3] = [
    PolicyKind::Pdpa,
    PolicyKind::Equipartition,
    PolicyKind::EqualEfficiency,
];

/// Shard count requested through the harness `--shards` flag (delivered
/// via `PDPA_SHARDS`, the same environment channel `--sequential` uses).
/// `None` means the classic sequential engine loop.
fn requested_shards() -> Option<usize> {
    std::env::var("PDPA_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

struct Row {
    label: &'static str,
    makespan: f64,
    utilization: f64,
    avg_slowdown: f64,
    dist: Option<pdpa_analyze::SlowdownDist>,
}

/// Generates the workload and pushes it through the whole SWF pipeline:
/// text round-trip, streaming parse, and every shaping transform.
fn shaped_trace() -> pdpa_qs::SwfTrace {
    let config = GeneratorConfig {
        composition: Workload::W4.composition(),
        load: LOAD,
        cpus: CPUS,
        duration_secs: DURATION_SECS,
        tuned: true,
    };
    config.validate().expect("static config");
    let jobs = pdpa_qs::generate(&config, SEED);
    let text = swf::write_swf(&jobs);
    let trace = swf::parse_swf_trace(&text).expect("own writer output parses");
    let from = trace.machine_size().unwrap_or(CPUS);
    let records = shape::slice_window(&trace.records, 0.0, DURATION_SECS);
    let records = shape::remap_machine(&records, from, CPUS);
    let records = shape::rescale_load(&records, LOAD, CPUS);
    pdpa_qs::SwfTrace {
        max_procs: Some(CPUS),
        max_nodes: trace.max_nodes,
        records,
    }
}

fn replay(trace: &pdpa_qs::SwfTrace, policy: PolicyKind) -> Row {
    let jobs = shape::jobs_from_records(&trace.records);
    let config = EngineConfig::default()
        .with_cpus(CPUS)
        .with_seed(SEED ^ 0xA5A5);
    let engine = Engine::new(config);
    let shards = requested_shards();
    let key = match shards {
        Some(s) => format!("scale-{}-seed{SEED}-s{s}", policy.label()),
        None => format!("scale-{}-seed{SEED}", policy.label()),
    };
    let mut rec = RecordingObserver::new();
    let result = match shards {
        Some(s) => engine.run_sharded_observed(
            jobs,
            policy.build(),
            s,
            pdpa_engine::shard::DEFAULT_EPOCH_SECS,
            &mut rec,
        ),
        None => engine.run_observed(jobs, policy.build(), &mut rec),
    };
    let events = rec.take_events();
    assert!(result.completed_all, "{} wedged at scale", policy.label());
    crate::stats::record_run(&result);
    if pdpa_obs::collector::is_recording() {
        let scope = pdpa_obs::scope::current().unwrap_or_default();
        pdpa_obs::collector::record_run(format!("{scope}/{key}"), events.clone());
    }
    let analysis = RunAnalysis::from_events(&events);
    Row {
        label: policy.label(),
        makespan: result.summary.makespan_secs(),
        utilization: result.utilization(),
        avg_slowdown: analysis.timeline.avg_slowdown,
        dist: analysis.timeline.slowdown_dist,
    }
}

/// Renders the experiment.
pub fn run() -> String {
    let trace = shaped_trace();
    let rows = pdpa_parallel::par_map(&POLICIES, pdpa_parallel::num_threads(), |&policy| {
        replay(&trace, policy)
    });

    let mut out = String::new();
    let _ = writeln!(out, "# Scale (extension): large SWF trace replay\n");
    let (first, last) = trace.submit_span().unwrap_or((0.0, 0.0));
    let engine_mode = match requested_shards() {
        Some(s) => format!("sharded engine, {s} shards"),
        None => "classic sequential engine".to_owned(),
    };
    let _ = writeln!(
        out,
        "w4 mix at {LOAD:.1} load on {CPUS} CPUs; {} jobs submitted over {:.0}s\n\
         (generated, SWF round-trip, window/remap/rescale transforms; {engine_mode})\n",
        trace.records.len(),
        last - first,
    );
    let _ = writeln!(
        out,
        "{:<10} {:>11} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "policy", "makespan", "util", "slow_avg", "p50", "p90", "p99", "max"
    );
    for r in &rows {
        let d = r.dist.unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<10} {:>10.1}s {:>6.1}% {:>9.3} {:>8.3} {:>8.3} {:>8.3} {:>8.1}",
            r.label,
            r.makespan,
            r.utilization * 100.0,
            r.avg_slowdown,
            d.p50,
            d.p90,
            d.p99,
            d.max,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaped_trace_is_large_and_deterministic() {
        let a = shaped_trace();
        assert!(
            a.records.len() > 1000,
            "want a three-orders-of-magnitude trace, got {} jobs",
            a.records.len()
        );
        let b = shaped_trace();
        assert_eq!(a.records, b.records, "pipeline is deterministic");
        // The rescale hit its target demand.
        let demand = shape::demand(&a.records, CPUS);
        assert!((demand - LOAD).abs() < 1e-6, "demand {demand} != {LOAD}");
    }
}
