//! Table 2 — IRIX versus PDPA and Equipartition: migrations and bursts.
//!
//! Workload 1 at 100 % load. The paper reports (on the Origin 2000):
//!
//! | | migrations | avg burst per cpu | bursts per cpu |
//! |---|---|---|---|
//! | IRIX | 159,865 | 243 ms | 2882 |
//! | PDPA | 66 | 10,782 ms | 41 |
//! | Equip | 325 | 11,375 ms | 43 |
//!
//! The reproduction target is the *structure*: IRIX migrates thousands of
//! times with quantum-length bursts; the space-sharing policies migrate tens
//! to hundreds of times with bursts three orders of magnitude longer.

use std::fmt::Write as _;

use crate::{stats, PolicyKind};
use pdpa_engine::{Engine, EngineConfig};
use pdpa_qs::Workload;
use pdpa_trace::BurstStats;

/// Renders the experiment.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 2 — migrations and burst statistics (w1, load = 100 %)\n"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>18} {:>16}",
        "", "migrations", "avg burst (ms)", "avg bursts/cpu"
    );
    for policy in [
        PolicyKind::Irix,
        PolicyKind::Pdpa,
        PolicyKind::Equipartition,
    ] {
        let jobs = Workload::W1.build(1.0, 42);
        let config = EngineConfig::default().with_trace().with_seed(42);
        let result = Engine::new(config).run(jobs, policy.build());
        stats::record_run(&result);
        let migrations = result.total_migrations();
        let trace = result.trace.expect("trace collection enabled");
        let bursts = BurstStats::from_trace(&trace, migrations);
        let _ = writeln!(out, "{}", bursts.table_row(policy.label()));
    }
    let _ = writeln!(out, "\npaper (Origin 2000):");
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>18} {:>16}",
        "IRIX", 159_865, 243, 2882
    );
    let _ = writeln!(out, "{:<8} {:>12} {:>18} {:>16}", "PDPA", 66, 10_782, 41);
    let _ = writeln!(out, "{:<8} {:>12} {:>18} {:>16}", "Equip.", 325, 11_375, 43);
    out
}
