//! Fig. 8 — the multiprogramming level decided by PDPA over time.
//!
//! Workload 2 at 100 % load: the paper's figure shows PDPA adapting the
//! level continuously to the running applications' characteristics, peaking
//! around six concurrent jobs. Renders the series and an ASCII plot.

use std::fmt::Write as _;

use crate::{run_engine_observed, PolicyKind};
use pdpa_engine::{Engine, EngineConfig};
use pdpa_qs::Workload;

/// Renders the experiment.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 8 — PDPA's dynamic multiprogramming level (w2, load = 100 %)\n"
    );
    let jobs = Workload::W2.build(1.0, 42);
    let result = run_engine_observed(
        "w2-PDPA-load1-seed42",
        &Engine::new(EngineConfig::default().with_seed(42)),
        jobs,
        PolicyKind::Pdpa.build(),
    );

    let _ = writeln!(
        out,
        "max ml = {}, makespan = {:.0} s, {} level changes\n",
        result.max_ml,
        result.end_secs,
        result.ml_series.len()
    );

    // Sampled series (the raw series has one entry per admission/completion).
    let _ = writeln!(out, "time(s)  ml");
    let horizon = result.end_secs;
    let samples = 30usize;
    for i in 0..=samples {
        let t = horizon * i as f64 / samples as f64;
        let ml = ml_at(&result.ml_series, t);
        let _ = writeln!(out, "{t:>7.0}  {ml}");
    }

    // ASCII plot.
    let width = 100usize;
    let height = result.max_ml.max(1);
    let _ = writeln!(out, "\nml");
    for level in (1..=height).rev() {
        let mut line = String::with_capacity(width);
        for x in 0..width {
            let t = horizon * x as f64 / width as f64;
            line.push(if ml_at(&result.ml_series, t) >= level {
                '#'
            } else {
                ' '
            });
        }
        let _ = writeln!(out, "{level:>3} |{line}");
    }
    let _ = writeln!(out, "    +{}", "-".repeat(width));
    let _ = writeln!(out, "     0{:>width$.0}s", horizon, width = width - 1);
    out
}

/// The multiprogramming level in force at instant `t`.
fn ml_at(series: &[(f64, usize)], t: f64) -> usize {
    series
        .iter()
        .take_while(|&&(at, _)| at <= t)
        .last()
        .map(|&(_, ml)| ml)
        .unwrap_or(0)
}
