//! Extension experiment — the policy-zoo slowdown tournament.
//!
//! The paper compares four policies on four hand-built workloads; the
//! literature since has produced allocation rules with very different
//! shapes — heSRPT's closed-form size-rank allocation (Berg et al.),
//! water-filling over concave speedup curves (OptSplit), online
//! gradient-style tuning (LearnedAlloc), rigid partitions, and gang
//! rotation. This experiment races the whole zoo on equal terms over two
//! legs:
//!
//! 1. **SWF replay** — a shaped Standard-Workload-Format trace (the
//!    `scale` pipeline: generate, round-trip through SWF text, window/
//!    remap/rescale), replayed under every entrant;
//! 2. **chaos** — workload 3 at full load under the fixed fault plan of
//!    the `chaos` experiment (two CPU failures, one recovery, one job
//!    crash with bounded retries).
//!
//! Every run is traced, and the per-job slowdown distribution is computed
//! by `pdpa-analyze` from the recorded decision-event stream — the same
//! replay path the CI perf gate exercises. Entrants are ranked by p50,
//! then p90, then p99 slowdown (label as the final tie-break), so the
//! ranking is deterministic for a fixed seed; the `ranking(<leg>):` lines
//! are the artifact the CI tournament-smoke job diffs across repeated
//! runs. Migration counts are the engine's uniform churn measure,
//! `total_migrations() + quantum_rotations`, so gang rotation is visible
//! next to space-sharing reallocation instead of hiding at zero.

use std::fmt::Write as _;
use std::time::Instant;

use crate::experiments::chaos;
use crate::json::Value;
use pdpa_analyze::{RunAnalysis, SlowdownDist};
use pdpa_core::Pdpa;
use pdpa_engine::{Engine, EngineConfig};
use pdpa_obs::RecordingObserver;
use pdpa_policies::{
    EqualEfficiency, Equipartition, GangScheduler, HeSrpt, LearnedAlloc, OptSplit, RigidFirstFit,
    SchedulingPolicy,
};
use pdpa_qs::{shape, swf, GeneratorConfig, Workload};

/// Submission window of the generated SWF leg, seconds (≈ 350 jobs at
/// full load — large enough for stable quantiles, small enough that the
/// traced gang run stays cheap).
const DURATION_SECS: f64 = 1500.0;
/// Target demand of the generated SWF leg.
const LOAD: f64 = 1.0;
/// Machine size of both legs.
const CPUS: usize = 60;
/// The tournament's fixed seed.
const SEED: u64 = 42;

/// One competing policy.
pub struct Entrant {
    /// Display label, as used in the paper's figures where applicable.
    pub label: &'static str,
    /// Stable identifier for `tournament-<slug>` trajectory modes.
    pub slug: &'static str,
    /// Builds a fresh policy instance.
    pub build: fn() -> Box<dyn SchedulingPolicy>,
}

/// The roster: the paper's space-sharing policies, the rigid and gang
/// baselines, and the three literature entrants. IRIX sits this one out —
/// its 250 ms quantum makes a traced replay of a long trace emit millions
/// of per-quantum placement events for no extra ranking insight.
pub fn entrants() -> Vec<Entrant> {
    vec![
        Entrant {
            label: "PDPA",
            slug: "pdpa",
            build: || Box::new(Pdpa::paper_default()),
        },
        Entrant {
            label: "Equip",
            slug: "equip",
            build: || Box::new(Equipartition::default()),
        },
        Entrant {
            label: "Equal_eff",
            slug: "equal-eff",
            build: || Box::new(EqualEfficiency::paper_default()),
        },
        Entrant {
            label: "Rigid",
            slug: "rigid",
            build: || Box::new(RigidFirstFit::paper_default()),
        },
        Entrant {
            label: "Gang",
            slug: "gang",
            build: || Box::new(GangScheduler::paper_comparable()),
        },
        Entrant {
            label: "heSRPT",
            slug: "hesrpt",
            build: || Box::new(HeSrpt::default()),
        },
        Entrant {
            label: "OptSplit",
            slug: "optsplit",
            build: || Box::new(OptSplit::default()),
        },
        Entrant {
            label: "Learned",
            slug: "learned",
            build: || Box::new(LearnedAlloc::default()),
        },
    ]
}

/// Tournament parameters. [`Default`] is what the registry experiment and
/// the CI smoke run; `pdpa tournament` maps its flags onto this.
pub struct TournamentConfig {
    /// Machine size of the SWF leg.
    pub cpus: usize,
    /// Seed for trace generation and both legs' engines.
    pub seed: u64,
    /// Target demand of the generated SWF leg.
    pub load: f64,
    /// Submission window of the generated SWF leg, seconds.
    pub duration_secs: f64,
    /// Replay this pre-shaped trace instead of generating one.
    pub trace: Option<pdpa_qs::SwfTrace>,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            cpus: CPUS,
            seed: SEED,
            load: LOAD,
            duration_secs: DURATION_SECS,
            trace: None,
        }
    }
}

/// One entrant's measurements on one leg.
#[derive(Clone, Debug)]
pub struct LegStats {
    /// Entrant display label.
    pub label: &'static str,
    /// Entrant trajectory slug.
    pub slug: &'static str,
    /// Mean per-job slowdown (replayed from the event stream).
    pub avg_slowdown: f64,
    /// Nearest-rank slowdown quantiles — the ranking key.
    pub dist: SlowdownDist,
    /// Workload makespan, simulated seconds.
    pub makespan: f64,
    /// Fraction of machine capacity held by jobs.
    pub utilization: f64,
    /// Uniform churn: Table-2 migrations plus gang-rotation hand-offs.
    pub migrations: u64,
    /// Mean running multiprogramming level over the run.
    pub mean_mpl: f64,
    /// Peak running multiprogramming level.
    pub max_mpl: usize,
    /// Host wall-clock of the engine run, seconds (reported, never ranked).
    pub wall_secs: f64,
    /// Simulation events drained (throughput accounting for `--json`).
    pub events_popped: u64,
}

/// A finished tournament: both legs ranked best-first.
pub struct Tournament {
    /// Machine size of the SWF leg.
    pub cpus: usize,
    /// The seed both legs ran at.
    pub seed: u64,
    /// Jobs in the SWF leg's trace.
    pub swf_jobs: usize,
    /// Submission span of the SWF leg, seconds.
    pub swf_span_secs: f64,
    /// SWF-replay leg, ranked by (p50, p90, p99, label).
    pub swf: Vec<LegStats>,
    /// Chaos leg, ranked the same way.
    pub chaos: Vec<LegStats>,
}

/// Generates the SWF leg's trace through the full pipeline: generate,
/// SWF text round-trip, window/remap/rescale (the `scale` idiom).
fn shaped_trace(config: &TournamentConfig) -> pdpa_qs::SwfTrace {
    let gen = GeneratorConfig {
        composition: Workload::W4.composition(),
        load: config.load,
        cpus: config.cpus,
        duration_secs: config.duration_secs,
        tuned: true,
    };
    gen.validate().expect("static config");
    let jobs = pdpa_qs::generate(&gen, config.seed);
    let text = swf::write_swf(&jobs);
    let trace = swf::parse_swf_trace(&text).expect("own writer output parses");
    let from = trace.machine_size().unwrap_or(config.cpus);
    let records = shape::slice_window(&trace.records, 0.0, config.duration_secs);
    let records = shape::remap_machine(&records, from, config.cpus);
    let records = shape::rescale_load(&records, config.load, config.cpus);
    pdpa_qs::SwfTrace {
        max_procs: Some(config.cpus),
        max_nodes: trace.max_nodes,
        records,
    }
}

/// Runs one entrant on one leg: traced engine run, event-stream analysis,
/// uniform churn accounting.
fn race(
    entrant: &Entrant,
    jobs: Vec<pdpa_qs::JobSpec>,
    config: EngineConfig,
    key: &str,
) -> LegStats {
    let mut rec = RecordingObserver::new();
    let started = Instant::now();
    let result = Engine::new(config).run_observed(jobs, (entrant.build)(), &mut rec);
    let wall_secs = started.elapsed().as_secs_f64();
    assert!(result.completed_all, "{} wedged on {key}", entrant.label);
    crate::stats::record_run(&result);
    let events = rec.take_events();
    if pdpa_obs::collector::is_recording() {
        let scope = pdpa_obs::scope::current().unwrap_or_default();
        pdpa_obs::collector::record_run(format!("{scope}/{key}"), events.clone());
    }
    let analysis = RunAnalysis::from_events(&events);
    LegStats {
        label: entrant.label,
        slug: entrant.slug,
        avg_slowdown: analysis.timeline.avg_slowdown,
        dist: analysis.timeline.slowdown_dist.unwrap_or_default(),
        makespan: result.summary.makespan_secs(),
        utilization: result.utilization(),
        migrations: result.total_migrations() + result.quantum_rotations,
        mean_mpl: analysis.mpl.mean_running,
        max_mpl: analysis.mpl.max_running,
        wall_secs,
        events_popped: result.events_popped,
    }
}

/// Sorts a leg by the ranking key: p50, then p90, then p99 slowdown,
/// then label (so exact ties — common between the equal-split policies on
/// light traces — stay in one deterministic order).
fn rank(mut legs: Vec<LegStats>) -> Vec<LegStats> {
    legs.sort_by(|a, b| {
        a.dist
            .p50
            .total_cmp(&b.dist.p50)
            .then(a.dist.p90.total_cmp(&b.dist.p90))
            .then(a.dist.p99.total_cmp(&b.dist.p99))
            .then(a.label.cmp(b.label))
    });
    legs
}

/// Races every entrant over both legs and ranks the results.
///
/// The SWF leg replays `config.trace` (or a generated one); the chaos leg
/// is always workload 3 at full load on the standard 60-CPU machine under
/// the `chaos` experiment's fixed fault plan, so the two legs probe
/// steady-state quality and fault absorption independently.
pub fn run_tournament(config: &TournamentConfig) -> Tournament {
    let trace = match &config.trace {
        Some(t) => t.clone(),
        None => shaped_trace(config),
    };
    let (first, last) = trace.submit_span().unwrap_or((0.0, 0.0));
    let swf_span_secs = (last - first).max(0.0);
    let swf_jobs = trace.records.len();
    let roster = entrants();

    let legs = pdpa_parallel::par_map(&roster, pdpa_parallel::num_threads(), |entrant| {
        // SWF leg. Trace collection drives the quantum clock (gang
        // rotation), and long traces need headroom past the default
        // simulation bound.
        let mut engine_config = EngineConfig::default()
            .with_cpus(config.cpus)
            .with_seed(config.seed ^ 0xA5A5)
            .with_trace();
        engine_config.max_sim_secs = engine_config
            .max_sim_secs
            .max(swf_span_secs * 20.0 + 10_000.0);
        let jobs = shape::jobs_from_records(&trace.records);
        let swf_key = format!("tournament-{}-swf", entrant.slug);
        let swf = race(entrant, jobs, engine_config, &swf_key);

        // Chaos leg: fixed, independent of the SWF leg's shape.
        let chaos_config = EngineConfig::default()
            .with_seed(config.seed ^ 0xA5A5)
            .with_faults(chaos::chaos_plan())
            .with_trace();
        let jobs = Workload::W3.build(1.0, config.seed);
        let chaos_key = format!("tournament-{}-chaos", entrant.slug);
        let chaos = race(entrant, jobs, chaos_config, &chaos_key);
        (swf, chaos)
    });

    let (swf, chaos): (Vec<LegStats>, Vec<LegStats>) = legs.into_iter().unzip();
    Tournament {
        cpus: config.cpus,
        seed: config.seed,
        swf_jobs,
        swf_span_secs,
        swf: rank(swf),
        chaos: rank(chaos),
    }
}

impl Tournament {
    /// Renders the ranked report. Deterministic for a fixed seed: wall
    /// clock is excluded (it lives in the JSON report and the `--json`
    /// trajectory), and the `ranking(<leg>):` lines are the stable
    /// artifact CI diffs across repeated runs.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Tournament (extension): policy zoo on slowdown\n");
        let _ = writeln!(
            out,
            "{} entrants, two legs: SWF replay ({} jobs over {:.0} s on {} CPUs,\n\
             seed {}) and the chaos plan (w3 at 100 % load; cpu2 down 120-900 s,\n\
             cpu40 down at 300 s, job0 crashes at 70 s). Ranked by p50, then p90,\n\
             then p99 per-job slowdown; migrations include gang-rotation churn.\n",
            self.swf.len(),
            self.swf_jobs,
            self.swf_span_secs,
            self.cpus,
            self.seed,
        );
        for (leg, rows) in [("swf", &self.swf), ("chaos", &self.chaos)] {
            let _ = writeln!(
                out,
                "## {} leg",
                if leg == "swf" { "SWF replay" } else { "Chaos" }
            );
            let _ = writeln!(
                out,
                "{:<5} {:<10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>10} {:>6} {:>9} {:>6}",
                "rank",
                "policy",
                "p50",
                "p90",
                "p99",
                "max",
                "slow_avg",
                "makespan",
                "util",
                "migr",
                "mpl"
            );
            for (i, r) in rows.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{:<5} {:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.1} {:>9.3} {:>9.0}s {:>5.0}% {:>9} {:>6.2}",
                    i + 1,
                    r.label,
                    r.dist.p50,
                    r.dist.p90,
                    r.dist.p99,
                    r.dist.max,
                    r.avg_slowdown,
                    r.makespan,
                    r.utilization * 100.0,
                    r.migrations,
                    r.mean_mpl,
                );
            }
            let order: Vec<&str> = rows.iter().map(|r| r.label).collect();
            let _ = writeln!(out, "ranking({leg}): {}\n", order.join(" > "));
        }
        out
    }

    /// The `pdpa-tournament/v1` JSON report.
    pub fn render_json(&self) -> String {
        fn leg_json(rows: &[LegStats]) -> Value {
            Value::Arr(
                rows.iter()
                    .enumerate()
                    .map(|(i, r)| {
                        Value::Obj(vec![
                            ("rank".into(), Value::Num((i + 1) as f64)),
                            ("policy".into(), Value::Str(r.label.into())),
                            ("slug".into(), Value::Str(r.slug.into())),
                            ("p50".into(), Value::Num(r.dist.p50)),
                            ("p90".into(), Value::Num(r.dist.p90)),
                            ("p99".into(), Value::Num(r.dist.p99)),
                            ("max".into(), Value::Num(r.dist.max)),
                            ("avg_slowdown".into(), Value::Num(r.avg_slowdown)),
                            ("makespan_secs".into(), Value::Num(r.makespan)),
                            ("utilization".into(), Value::Num(r.utilization)),
                            ("migrations".into(), Value::Num(r.migrations as f64)),
                            ("mean_mpl".into(), Value::Num(r.mean_mpl)),
                            ("max_mpl".into(), Value::Num(r.max_mpl as f64)),
                            ("wall_secs".into(), Value::Num(r.wall_secs)),
                            ("events_popped".into(), Value::Num(r.events_popped as f64)),
                        ])
                    })
                    .collect(),
            )
        }
        Value::Obj(vec![
            ("schema".into(), Value::Str("pdpa-tournament/v1".into())),
            ("cpus".into(), Value::Num(self.cpus as f64)),
            ("seed".into(), Value::Num(self.seed as f64)),
            ("swf_jobs".into(), Value::Num(self.swf_jobs as f64)),
            ("swf_span_secs".into(), Value::Num(self.swf_span_secs)),
            ("swf".into(), leg_json(&self.swf)),
            ("chaos".into(), leg_json(&self.chaos)),
        ])
        .to_pretty()
    }
}

/// Renders the registry experiment (default configuration).
pub fn run() -> String {
    run_tournament(&TournamentConfig::default()).render_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_the_required_policies() {
        let roster = entrants();
        let labels: Vec<&str> = roster.iter().map(|e| e.label).collect();
        for required in [
            "PDPA",
            "Equip",
            "Equal_eff",
            "Gang",
            "heSRPT",
            "OptSplit",
            "Learned",
        ] {
            assert!(labels.contains(&required), "missing {required}");
        }
        let mut slugs: Vec<&str> = roster.iter().map(|e| e.slug).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), roster.len(), "slugs must be unique");
    }

    /// A small tournament ranks every entrant on both legs, and repeating
    /// it reproduces the same order and the same quantiles — the property
    /// the CI smoke job asserts end to end on the real binary.
    #[test]
    fn small_tournament_is_complete_and_deterministic() {
        let config = TournamentConfig {
            duration_secs: 300.0,
            ..TournamentConfig::default()
        };
        let a = run_tournament(&config);
        assert_eq!(a.swf.len(), entrants().len());
        assert_eq!(a.chaos.len(), entrants().len());
        for leg in [&a.swf, &a.chaos] {
            for r in leg {
                assert!(r.dist.p50 >= 1.0, "{}: slowdown below 1", r.label);
                assert!(r.dist.p50 <= r.dist.p90 && r.dist.p90 <= r.dist.p99);
                assert!(r.makespan > 0.0);
            }
        }
        let b = run_tournament(&config);
        assert_eq!(a.render_text(), b.render_text(), "report must reproduce");
        let order = |t: &Tournament| {
            (
                t.swf.iter().map(|r| r.label).collect::<Vec<_>>(),
                t.chaos.iter().map(|r| r.label).collect::<Vec<_>>(),
            )
        };
        assert_eq!(order(&a), order(&b));
    }

    #[test]
    fn json_report_parses_and_carries_both_legs() {
        let config = TournamentConfig {
            duration_secs: 300.0,
            ..TournamentConfig::default()
        };
        let t = run_tournament(&config);
        let doc = crate::json::parse(&t.render_json()).expect("own JSON parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("pdpa-tournament/v1")
        );
        for leg in ["swf", "chaos"] {
            let rows = doc.get(leg).and_then(|v| v.as_arr()).expect("leg array");
            assert_eq!(rows.len(), entrants().len());
            assert_eq!(rows[0].get("rank").and_then(|v| v.as_u64()), Some(1));
            assert!(rows[0].get("p50").and_then(|v| v.as_f64()).unwrap() >= 1.0);
        }
    }
}
