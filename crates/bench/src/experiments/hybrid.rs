//! Extension experiment — MPI+OpenMP hybrid applications (§6 future work).
//!
//! An 8-rank MPI application with a 2:1 load imbalance runs under PDPA in
//! three configurations:
//!
//! - **rigid**: plain MPI, one processor per rank, no malleability — the
//!   baseline the paper wants to escape;
//! - **hybrid/even**: OpenMP inside each rank, processors split evenly;
//! - **hybrid/balanced**: §6's first approach — per-rank processor control
//!   following the load.
//!
//! The table shows the effective speedup curves and the end-to-end makespan
//! of a two-job workload on the 60-CPU machine.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::stats;
use pdpa_apps::{Amdahl, AppClass, ApplicationSpec, SpeedupModel};
use pdpa_core::Pdpa;
use pdpa_engine::{Engine, EngineConfig};
use pdpa_hybrid::{HybridSpec, HybridSpeedup, RankStrategy};
use pdpa_qs::JobSpec;
use pdpa_sim::{SimDuration, SimTime};

fn spec() -> HybridSpec {
    let mut loads = vec![SimDuration::from_secs(2.0)];
    loads.extend(std::iter::repeat_n(SimDuration::from_secs(1.0), 7));
    HybridSpec::new(
        loads,
        Arc::new(Amdahl::new(0.02)),
        SimDuration::from_millis(20.0),
    )
}

fn app(strategy: RankStrategy) -> ApplicationSpec {
    let s = spec();
    let t1 = s.total_seq() + SimDuration::from_millis(20.0);
    ApplicationSpec::new(
        AppClass::BtA,
        40,
        t1,
        24,
        Arc::new(HybridSpeedup::new(s, strategy)),
        0.01,
    )
}

/// Renders the experiment.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Hybrid MPI+OpenMP (extension — paper §6)\n");

    // Effective speedup curves.
    let even = HybridSpeedup::new(spec(), RankStrategy::Even);
    let balanced = HybridSpeedup::new(spec(), RankStrategy::Balanced);
    let _ = writeln!(
        out,
        "effective speedup of the 8-rank imbalanced application:"
    );
    let _ = write!(out, "{:<12}", "procs");
    let points = [1usize, 4, 8, 10, 12, 16, 20, 24];
    for p in points {
        let _ = write!(out, "{p:>7}");
    }
    out.push('\n');
    let _ = write!(out, "{:<12}", "even");
    for p in points {
        let _ = write!(out, "{:>7.2}", even.speedup(p));
    }
    out.push('\n');
    let _ = write!(out, "{:<12}", "balanced");
    for p in points {
        let _ = write!(out, "{:>7.2}", balanced.speedup(p));
    }
    let _ = writeln!(
        out,
        "\n(procs < 8 is the folding region: ranks share processors, yielding at receives)\n"
    );

    // End-to-end under PDPA: two hybrid jobs.
    let _ = writeln!(out, "two-job workload under PDPA (60 CPUs):");
    for (label, strategy) in [
        ("even", RankStrategy::Even),
        ("balanced", RankStrategy::Balanced),
    ] {
        let jobs = vec![
            JobSpec::new(SimTime::ZERO, app(strategy)),
            JobSpec::new(SimTime::from_secs(10.0), app(strategy)),
        ];
        let result =
            Engine::new(EngineConfig::default()).run(jobs, Box::new(Pdpa::paper_default()));
        stats::record_run(&result);
        let _ = writeln!(
            out,
            "  {label:<10} makespan {:>6.1}s  avg alloc {:>5.1}  completed: {}",
            result.summary.makespan_secs(),
            result.avg_alloc_by_class[&AppClass::BtA],
            result.completed_all
        );
    }

    // The rigid baseline: one processor per rank, exactly 8 processors,
    // iteration time = heavy rank at one processor.
    let s = spec();
    let rigid_iter = pdpa_hybrid::iteration_time(&s, 8, RankStrategy::Even);
    let _ = writeln!(
        out,
        "\nrigid MPI baseline (8 procs, 1 per rank): {:.2}s per iteration → {:.1}s total",
        rigid_iter.as_secs(),
        rigid_iter.as_secs() * 40.0
    );
    let b24 = pdpa_hybrid::iteration_time(&s, 24, RankStrategy::Balanced);
    let _ = writeln!(
        out,
        "hybrid balanced at 24 procs: {:.2}s per iteration → {:.1}s total",
        b24.as_secs(),
        b24.as_secs() * 40.0
    );
    out
}
