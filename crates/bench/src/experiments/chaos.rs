//! Extension experiment — graceful degradation under injected faults.
//!
//! The paper assumes a fixed 64-CPU Origin; real machines lose and regain
//! processors. This experiment replays workload 3 under every scheduling
//! policy twice per seed — once healthy, once under a fixed chaos plan
//! (two CPU failures, one of which recovers, plus a job crash with the
//! default bounded-retry policy) — and reports how gracefully each policy
//! absorbs the capacity loss.
//!
//! The plan is pure data sampled up front (see `pdpa_faults`), so a given
//! seed produces byte-identical output no matter the thread count.

use std::fmt::Write as _;

use crate::{run_engine_observed, PolicyKind, SEEDS};
use pdpa_engine::{Engine, EngineConfig, RunResult};
use pdpa_faults::{FaultPlan, RetryPolicy};
use pdpa_policies::{GangScheduler, RigidFirstFit, SchedulingPolicy};
use pdpa_qs::Workload;
use pdpa_sim::{CpuId, JobId};

const LABELS: [&str; 6] = ["IRIX", "Equip", "Equal_eff", "Rigid", "Gang", "PDPA"];

fn build(label: &str) -> Box<dyn SchedulingPolicy> {
    match label {
        "Gang" => Box::new(GangScheduler::paper_comparable()),
        "Rigid" => Box::new(RigidFirstFit::paper_default()),
        "IRIX" => PolicyKind::Irix.build(),
        "Equip" => PolicyKind::Equipartition.build(),
        "Equal_eff" => PolicyKind::EqualEfficiency.build(),
        _ => PolicyKind::Pdpa.build(),
    }
}

/// The fixed chaos plan: cpu2 dies at t=120 s and returns at t=900 s,
/// cpu40 dies at t=300 s for good, and the first submitted job crashes at
/// t=70 s under the default retry policy (2 retries, 30 s backoff, ×2).
pub fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .fail_cpu_between(CpuId(2), 120.0, 900.0)
        .fail_cpu_at(CpuId(40), 300.0)
        .fail_job_at(JobId(0), 70.0)
        .with_retry(RetryPolicy::default())
}

struct Row {
    healthy_makespan: f64,
    chaos_makespan: f64,
    cpu_failures: u64,
    job_retries: u64,
    jobs_failed: u64,
}

fn one_run(label: &str, seed: u64, faults: Option<FaultPlan>) -> RunResult {
    let wl = Workload::W3;
    let jobs = wl.build(1.0, seed);
    let mode = if faults.is_some() { "chaos" } else { "healthy" };
    let mut config = EngineConfig::default().with_seed(seed ^ 0xA5A5);
    if let Some(plan) = faults {
        config = config.with_faults(plan);
    }
    let key = format!("{}-{label}-{mode}-seed{seed}", wl.name());
    let r = run_engine_observed(&key, &Engine::new(config), jobs, build(label));
    assert!(r.completed_all, "{label} wedged under {mode}");
    r
}

fn run_policy(label: &str) -> Row {
    let mut row = Row {
        healthy_makespan: 0.0,
        chaos_makespan: 0.0,
        cpu_failures: 0,
        job_retries: 0,
        jobs_failed: 0,
    };
    for &seed in &SEEDS {
        let healthy = one_run(label, seed, None);
        let chaos = one_run(label, seed, Some(chaos_plan()));
        row.healthy_makespan += healthy.summary.makespan_secs();
        row.chaos_makespan += chaos.summary.makespan_secs();
        row.cpu_failures += chaos.cpu_failures;
        row.job_retries += chaos.job_retries;
        row.jobs_failed += chaos.jobs_failed;
    }
    let n = SEEDS.len() as f64;
    row.healthy_makespan /= n;
    row.chaos_makespan /= n;
    row
}

/// Renders the experiment.
pub fn run() -> String {
    let rows = pdpa_parallel::par_map(&LABELS, pdpa_parallel::num_threads(), |&label| {
        run_policy(label)
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Chaos (extension): graceful degradation under injected faults\n"
    );
    let _ = writeln!(
        out,
        "w3 at 100 % load; plan: cpu2 down 120-900 s, cpu40 down at 300 s,\n\
         job0 crashes at 70 s (2 retries, 30 s backoff, x2); {} seeds\n",
        SEEDS.len()
    );
    let _ = writeln!(
        out,
        "{:<10} {:>16} {:>14} {:>10} {:>9} {:>8} {:>7}",
        "policy", "healthy mkspan", "chaos mkspan", "slowdown", "cpufails", "retries", "failed"
    );
    for (label, row) in LABELS.iter().zip(&rows) {
        let slowdown = if row.healthy_makespan > 0.0 {
            (row.chaos_makespan / row.healthy_makespan - 1.0) * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<10} {:>15.0}s {:>13.0}s {:>9.1}% {:>9} {:>8} {:>7}",
            label,
            row.healthy_makespan,
            row.chaos_makespan,
            slowdown,
            row.cpu_failures,
            row.job_retries,
            row.jobs_failed,
        );
    }
    let _ = writeln!(
        out,
        "\nEvery policy drains the workload with capacity loss and a crashing\n\
         job; adaptive space sharing re-spreads the surviving processors,\n\
         while rigid partitions and gang slots simply run degraded."
    );
    out
}
