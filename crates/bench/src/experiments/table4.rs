//! Table 4 — workload 4 not tuned (every application requests 30
//! processors), load = 60 %.
//!
//! The paper's numbers (Origin 2000), Equip / PDPA / improvement:
//!
//! | | swim | bt | hydro2d | apsi | total exec |
//! |---|---|---|---|---|---|
//! | exec | 6 / 8 (−30 %) | 101 / 81 (−24 %*) | 32 / 37 (−15 %) | 104 / 98 (6 %) | — |
//! | resp | 368 / 13 (2830 %) | 568 / 92 (617 %) | 453 / 45 (1006 %) | 773 / 109 (109 %) | 126** / 496 (282 %) |
//!
//! (*) Negative numbers mean Equipartition's execution time was better —
//! the price PDPA pays for efficiency-bounded allocations. (**) The paper's
//! total row mixes columns; the reproduction prints the makespan.

use std::fmt::Write as _;

use crate::{run_cell, PolicyKind, SEEDS};
use pdpa_apps::AppClass;
use pdpa_metrics::improvement_pct;
use pdpa_qs::Workload;

/// Renders the experiment.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 4 — w4 untuned (all requests = 30), load = 60 %\n"
    );
    let equip = run_cell(Workload::W4, false, PolicyKind::Equipartition, 0.6, &SEEDS);
    let pdpa = run_cell(Workload::W4, false, PolicyKind::Pdpa, 0.6, &SEEDS);

    let _ = writeln!(
        out,
        "{:<10} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>10}",
        "",
        "swim x",
        "swim r",
        "bt x",
        "bt r",
        "hydro x",
        "hydro r",
        "apsi x",
        "apsi r",
        "makespan"
    );
    for (label, cell) in [("Equip", &equip), ("PDPA", &pdpa)] {
        let _ = write!(out, "{label:<10}");
        for class in AppClass::ALL {
            let _ = write!(
                out,
                " {:>10.0}s {:>10.0}s",
                cell.execution[&class], cell.response[&class]
            );
        }
        let _ = writeln!(out, " {:>9.0}s", cell.makespan);
    }
    let _ = write!(out, "{:<10}", "%");
    for class in AppClass::ALL {
        let _ = write!(
            out,
            " {:>10.0}% {:>10.0}%",
            improvement_pct(pdpa.execution[&class], equip.execution[&class]),
            improvement_pct(pdpa.response[&class], equip.response[&class]),
        );
    }
    let _ = writeln!(
        out,
        " {:>9.0}%",
        improvement_pct(pdpa.makespan, equip.makespan)
    );
    let _ = writeln!(
        out,
        "\nmax multiprogramming level: Equip {:.0}, PDPA {:.0}",
        equip.max_ml, pdpa.max_ml
    );
    let _ = writeln!(
        out,
        "machine utilization: Equip {:.0} %, PDPA {:.0} % — \"applications under PDPA\n\
         have consumed half of the CPU time than under Equipartition to execute the\n\
         same amount of work\" (§5.4: ≈100 % vs ≈70 %)",
        equip.utilization * 100.0,
        pdpa.utilization * 100.0
    );
    let _ = writeln!(
        out,
        "paper: response improvements 2830% / 617% / 1006% / 109%; exec −30% / −24% / −15% / 6%; total 282%"
    );
    out
}
