//! Table 1 — workload characteristics.
//!
//! Renders the composition of the four workloads (the share of the system
//! load each application class contributes) and, for each, the realized job
//! mix of a generated instance at 100 % load.

use std::fmt::Write as _;

use pdpa_apps::AppClass;
use pdpa_qs::Workload;

/// Renders the experiment.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Table 1 — workload characteristics\n");
    let _ = write!(out, "{:<6}", "");
    for class in AppClass::ALL {
        let _ = write!(out, "{:>10}", class.name());
    }
    out.push('\n');
    for wl in Workload::ALL {
        let _ = write!(out, "{:<6}", wl.name());
        let comp = wl.composition();
        for class in AppClass::ALL {
            match comp.iter().find(|&&(c, _)| c == class) {
                Some(&(_, share)) => {
                    let _ = write!(out, "{:>9.0}%", share * 100.0);
                }
                None => {
                    let _ = write!(out, "{:>10}", "-");
                }
            }
        }
        out.push('\n');
    }

    let _ = writeln!(
        out,
        "\nrealized instance at load = 100% (seed 42): job counts and submitted work"
    );
    for wl in Workload::ALL {
        let jobs = wl.build(1.0, 42);
        let _ = write!(out, "{:<6} {:>3} jobs —", wl.name(), jobs.len());
        for class in AppClass::ALL {
            let of_class: Vec<_> = jobs.iter().filter(|j| j.app.class == class).collect();
            if of_class.is_empty() {
                continue;
            }
            let work: f64 = of_class
                .iter()
                .map(|j| j.app.total_seq_time().as_secs())
                .sum();
            let _ = write!(
                out,
                " {}: {} jobs / {:.0} cpu-s;",
                class.name(),
                of_class.len(),
                work
            );
        }
        out.push('\n');
    }
    out
}
