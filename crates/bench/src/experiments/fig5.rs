//! Fig. 5 — execution views for workload 1 under IRIX and PDPA.
//!
//! Renders the Paraver-style per-CPU activity view of a workload-1 run at
//! 100 % load: "each line represents the activity of a CPU and each color
//! represents a different application". The paper's visual point — IRIX
//! looks chaotic, PDPA shows long solid blocks — survives ASCII rendering.

use std::fmt::Write as _;

use crate::{run_engine_observed, PolicyKind};
use pdpa_engine::{Engine, EngineConfig};
use pdpa_qs::Workload;
use pdpa_trace::{render_ascii, RenderOptions};

/// Renders the experiment.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 5 — execution views, workload 1, load = 100 %\n"
    );
    for policy in [PolicyKind::Irix, PolicyKind::Pdpa] {
        let jobs = Workload::W1.build(1.0, 42);
        let config = EngineConfig::default().with_trace().with_seed(42);
        let key = format!("w1-{}-load1-seed42", policy.label());
        let result = run_engine_observed(&key, &Engine::new(config), jobs, policy.build());
        let migrations = result.total_migrations();
        let trace = result.trace.expect("trace collection enabled");
        let _ = writeln!(
            out,
            "## {} (migrations: {}, utilization: {:.0} %)\n",
            policy.label(),
            migrations,
            trace.utilization() * 100.0
        );
        let options = RenderOptions {
            width: 100,
            cpu_stride: 3, // every third CPU keeps the view readable
        };
        let _ = writeln!(out, "{}", render_ascii(&trace, &options));
    }
    out
}
