//! Fig. 3 — speedup curves of the four applications.
//!
//! Renders each calibrated curve as a table and an ASCII plot, matching the
//! qualitative shapes of the paper's figure: swim superlinear, bt.A good,
//! hydro2d medium, apsi flat.

use std::fmt::Write as _;

use pdpa_apps::{paper_app, AppClass};

/// Renders the experiment.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 3 — speedup curves\n");
    let procs: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 20, 24, 30, 40, 50, 60];

    // Table.
    let _ = write!(out, "{:<10}", "procs");
    for p in &procs {
        let _ = write!(out, "{p:>7}");
    }
    out.push('\n');
    for class in AppClass::ALL {
        let app = paper_app(class);
        let _ = write!(out, "{:<10}", class.name());
        for &p in &procs {
            let _ = write!(out, "{:>7.1}", app.speedup.speedup(p));
        }
        out.push('\n');
    }

    // Efficiency at the paper's target.
    let _ = writeln!(out, "\nefficiency (speedup / procs):");
    let _ = write!(out, "{:<10}", "procs");
    for p in &procs {
        let _ = write!(out, "{p:>7}");
    }
    out.push('\n');
    for class in AppClass::ALL {
        let app = paper_app(class);
        let _ = write!(out, "{:<10}", class.name());
        for &p in &procs {
            let _ = write!(out, "{:>7.2}", app.speedup.efficiency(p));
        }
        out.push('\n');
    }

    // ASCII plot: speedup vs processors, like the figure.
    let _ = writeln!(
        out,
        "\nascii plot (x: processors 1..60, y: speedup 0..32, marks: s=swim b=bt.A h=hydro2d a=apsi)"
    );
    let height = 17;
    let max_s = 32.0;
    let mut rows = vec![vec![' '; 61]; height];
    for class in AppClass::ALL {
        let mark = match class {
            AppClass::Swim => 's',
            AppClass::BtA => 'b',
            AppClass::Hydro2d => 'h',
            AppClass::Apsi => 'a',
        };
        let app = paper_app(class);
        // `p` is a processor count plotted on the x axis, not just an
        // index; the row it lands in depends on the computed speedup.
        #[allow(clippy::needless_range_loop)]
        for p in 1..=60usize {
            let s = app.speedup.speedup(p).min(max_s);
            let y = ((s / max_s) * (height - 1) as f64).round() as usize;
            rows[height - 1 - y][p] = mark;
        }
    }
    for (i, row) in rows.iter().enumerate() {
        let y_val = max_s * (height - 1 - i) as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y_val:>5.1} |{line}");
    }
    let _ = writeln!(out, "      +{}", "-".repeat(61));
    out
}
