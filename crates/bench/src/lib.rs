//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§5).
//!
//! Each `expt-*` binary reproduces one paper artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `expt-fig3` | Fig. 3 — speedup curves of the four applications |
//! | `expt-table1` | Table 1 — workload compositions |
//! | `expt-fig4` | Fig. 4 — workload 1 response/execution times |
//! | `expt-fig5` | Fig. 5 — execution views (IRIX vs PDPA) |
//! | `expt-table2` | Table 2 — migrations and burst statistics |
//! | `expt-fig6` | Fig. 6 — workload 2 response/execution times |
//! | `expt-fig7` | Fig. 7 — workload 2 under multiprogramming levels 2/3/4 |
//! | `expt-fig8` | Fig. 8 — PDPA's dynamic multiprogramming level |
//! | `expt-fig9` | Fig. 9 — workload 3 response/execution times |
//! | `expt-table3` | Table 3 — workload 3 with an untuned apsi request |
//! | `expt-fig10` | Fig. 10 — workload 4 response/execution times |
//! | `expt-table4` | Table 4 — workload 4 untuned |
//! | `expt-ablation` | (extension) PDPA design-choice ablations |
//! | `expt-tournament` | (extension) policy-zoo slowdown tournament |
//! | `expt-all` | everything above, in order |
//!
//! Numbers are averaged over several seeds; absolute values depend on the
//! calibrated simulator, but the *shapes* — which policy wins, by what
//! factor, where the crossovers sit — are the reproduction targets recorded
//! in `EXPERIMENTS.md`.

use std::collections::HashMap;

use pdpa_apps::AppClass;
use pdpa_core::{Pdpa, PdpaParams};
use pdpa_engine::{Engine, EngineConfig, RunResult};
use pdpa_policies::{EqualEfficiency, Equipartition, IrixLike, SchedulingPolicy};
use pdpa_qs::Workload;

pub mod experiments;
pub mod harness;
pub mod json;
pub mod regression;
pub mod stats;
pub mod trajectory;

/// The paper's load points: 60 %, 80 %, 100 % of machine capacity.
pub const PAPER_LOADS: [f64; 3] = [0.6, 0.8, 1.0];

/// Seeds averaged by every experiment (arbitrary but fixed).
pub const SEEDS: [u64; 3] = [42, 1337, 20_000];

/// The four evaluated scheduling policies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PolicyKind {
    /// The native IRIX time-sharing model.
    Irix,
    /// Equipartition with the paper's fixed multiprogramming level of 4.
    Equipartition,
    /// Equal_efficiency with the paper's fixed multiprogramming level of 4.
    EqualEfficiency,
    /// PDPA with the paper's parameters.
    Pdpa,
}

impl PolicyKind {
    /// The policies in the paper's presentation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Irix,
        PolicyKind::Equipartition,
        PolicyKind::EqualEfficiency,
        PolicyKind::Pdpa,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Irix => "IRIX",
            PolicyKind::Equipartition => "Equip",
            PolicyKind::EqualEfficiency => "Equal_eff",
            PolicyKind::Pdpa => "PDPA",
        }
    }

    /// Instantiates the policy with the paper's configuration.
    pub fn build(self) -> Box<dyn SchedulingPolicy> {
        match self {
            PolicyKind::Irix => Box::new(IrixLike::paper_default()),
            PolicyKind::Equipartition => Box::new(Equipartition::default()),
            PolicyKind::EqualEfficiency => Box::new(EqualEfficiency::paper_default()),
            PolicyKind::Pdpa => Box::new(Pdpa::paper_default()),
        }
    }

    /// Instantiates the policy with an overridden multiprogramming level
    /// (used by the Fig. 7 sweep). For PDPA the override sets the *default*
    /// level; the coordinated policy may still exceed it.
    pub fn build_with_ml(self, ml: usize) -> Box<dyn SchedulingPolicy> {
        match self {
            PolicyKind::Irix => Box::new(IrixLike::new(
                ml,
                pdpa_policies::TimeSharingParams::default(),
            )),
            PolicyKind::Equipartition => Box::new(Equipartition::new(ml)),
            PolicyKind::EqualEfficiency => Box::new(EqualEfficiency::new(ml)),
            PolicyKind::Pdpa => Box::new(Pdpa::new(PdpaParams::default().with_base_ml(ml))),
        }
    }
}

/// Seed-averaged measurements of one `(policy, load)` cell.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cell {
    /// Mean response time per application class, seconds.
    pub response: HashMap<AppClass, f64>,
    /// Mean execution time per application class, seconds.
    pub execution: HashMap<AppClass, f64>,
    /// Mean processors held per application class.
    pub avg_alloc: HashMap<AppClass, f64>,
    /// Mean workload makespan, seconds.
    pub makespan: f64,
    /// Mean of the per-run maximum multiprogramming level.
    pub max_ml: f64,
    /// Mean machine utilization (CPU-seconds held / capacity over the
    /// makespan).
    pub utilization: f64,
    /// All seed runs completed every job.
    pub completed_all: bool,
}

/// Runs one engine execution, records its harness [`stats`], and — when
/// the process-wide [`pdpa_obs::collector`] is recording (`--trace-out`
/// and friends) — captures the decision-event stream under
/// `<scope>/<run_key>`.
///
/// The key is derived from the run's parameters, never from scheduling
/// order, so the drained streams are identical between sequential and
/// parallel harness executions.
pub fn run_engine_observed(
    run_key: &str,
    engine: &Engine,
    jobs: Vec<pdpa_qs::JobSpec>,
    policy: Box<dyn SchedulingPolicy>,
) -> RunResult {
    let result = if pdpa_obs::collector::is_recording() {
        let mut rec = pdpa_obs::RecordingObserver::new();
        let r = engine.run_observed(jobs, policy, &mut rec);
        let scope = pdpa_obs::scope::current().unwrap_or_default();
        pdpa_obs::collector::record_run(format!("{scope}/{run_key}"), rec.take_events());
        r
    } else {
        engine.run(jobs, policy)
    };
    stats::record_run(&result);
    result
}

/// Runs one engine execution of `(workload, policy, load)` at `seed`.
///
/// This is the unit of work the parallel sweeps fan out; it also feeds the
/// global [`stats`] counters that the `--json` trajectory reports.
pub fn run_single(
    workload: Workload,
    tuned: bool,
    policy: PolicyKind,
    load: f64,
    seed: u64,
) -> RunResult {
    let jobs = workload.build_with_tuning(load, seed, tuned);
    let config = EngineConfig::default().with_seed(seed ^ 0xA5A5);
    let key = format!(
        "{}-{}-{}-load{load}-seed{seed}",
        workload.name(),
        if tuned { "tuned" } else { "untuned" },
        policy.label(),
    );
    run_engine_observed(&key, &Engine::new(config), jobs, policy.build())
}

/// Runs one `(workload, policy, load)` cell averaged over `seeds`, with
/// the seed runs spread across worker threads. Results are identical to
/// [`run_cell_seq`] regardless of thread count (seed runs are independent
/// and averaged in seed order).
pub fn run_cell(
    workload: Workload,
    tuned: bool,
    policy: PolicyKind,
    load: f64,
    seeds: &[u64],
) -> Cell {
    let runs = pdpa_parallel::par_map(seeds, pdpa_parallel::num_threads(), |&seed| {
        run_single(workload, tuned, policy, load, seed)
    });
    average(&runs, workload)
}

/// Sequential reference implementation of [`run_cell`] (one thread, same
/// output bytes — the determinism test pins the two together).
pub fn run_cell_seq(
    workload: Workload,
    tuned: bool,
    policy: PolicyKind,
    load: f64,
    seeds: &[u64],
) -> Cell {
    let runs: Vec<RunResult> = seeds
        .iter()
        .map(|&seed| run_single(workload, tuned, policy, load, seed))
        .collect();
    average(&runs, workload)
}

/// Averages a set of runs into a [`Cell`].
pub fn average(runs: &[RunResult], workload: Workload) -> Cell {
    stats::record_cell();
    let mut cell = Cell {
        completed_all: runs.iter().all(|r| r.completed_all),
        ..Cell::default()
    };
    let n = runs.len() as f64;
    for class in workload.classes() {
        let mut resp = 0.0;
        let mut exec = 0.0;
        let mut alloc = 0.0;
        let mut count = 0usize;
        for run in runs {
            if let Some(avgs) = run.summary.class_averages(class) {
                resp += avgs.avg_response_secs;
                exec += avgs.avg_execution_secs;
                alloc += run.avg_alloc_by_class.get(&class).copied().unwrap_or(0.0);
                count += 1;
            }
        }
        if count > 0 {
            cell.response.insert(class, resp / count as f64);
            cell.execution.insert(class, exec / count as f64);
            cell.avg_alloc.insert(class, alloc / count as f64);
        }
    }
    cell.makespan = runs.iter().map(|r| r.summary.makespan_secs()).sum::<f64>() / n;
    cell.max_ml = runs.iter().map(|r| r.max_ml as f64).sum::<f64>() / n;
    cell.utilization = runs.iter().map(RunResult::utilization).sum::<f64>() / n;
    cell
}

/// The full grid of one figure: `grid[policy][load index]`.
pub type Grid = Vec<(PolicyKind, Vec<Cell>)>;

/// Runs a whole response/execution figure (Fig. 4/6/9/10 shape): every
/// policy at every paper load.
///
/// The 4 policies × 3 loads × [`SEEDS`] engine runs are flattened into one
/// task list and spread over worker threads (one level of parallelism, no
/// nested pools), then regrouped into cells in the original policy/load/
/// seed order — so the grid is byte-identical to [`run_figure_seq`].
pub fn run_figure(workload: Workload, tuned: bool) -> Grid {
    let tasks: Vec<(PolicyKind, f64, u64)> = PolicyKind::ALL
        .iter()
        .flat_map(|&policy| {
            PAPER_LOADS
                .iter()
                .flat_map(move |&load| SEEDS.iter().map(move |&seed| (policy, load, seed)))
        })
        .collect();
    let runs = pdpa_parallel::par_map(
        &tasks,
        pdpa_parallel::num_threads(),
        |&(policy, load, seed)| run_single(workload, tuned, policy, load, seed),
    );
    // Regroup: tasks were laid out policy-major, load-minor, seeds innermost.
    let mut runs = runs.into_iter();
    PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let cells = PAPER_LOADS
                .iter()
                .map(|_| {
                    let cell_runs: Vec<RunResult> = (&mut runs).take(SEEDS.len()).collect();
                    average(&cell_runs, workload)
                })
                .collect();
            (policy, cells)
        })
        .collect()
}

/// Sequential reference implementation of [`run_figure`]: nested loops,
/// one engine run at a time, same output bytes.
pub fn run_figure_seq(workload: Workload, tuned: bool) -> Grid {
    PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let cells = PAPER_LOADS
                .iter()
                .map(|&load| run_cell_seq(workload, tuned, policy, load, &SEEDS))
                .collect();
            (policy, cells)
        })
        .collect()
}

/// Prints one metric of a figure as a table: rows = policies, columns =
/// loads, one block per application class.
pub fn print_figure(title: &str, workload: Workload, grid: &Grid, metric: Metric) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    for class in workload.classes() {
        out.push_str(&format!(
            "\n{} — average {} time (s) by system load\n",
            class.name(),
            metric.name()
        ));
        let mut table = pdpa_metrics::TableBuilder::new(&["load 60%", "load 80%", "load 100%"]);
        for (policy, cells) in grid {
            let row: Vec<f64> = cells.iter().map(|c| metric.pick(c, class)).collect();
            table.row_secs(policy.label(), &row);
        }
        out.push_str(&table.build());
    }
    out
}

/// Which quantity a printed table shows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Response time: submission to completion.
    Response,
    /// Execution time: start to completion.
    Execution,
    /// Average processors held.
    AvgAlloc,
}

impl Metric {
    /// Human name of the metric.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Response => "response",
            Metric::Execution => "execution",
            Metric::AvgAlloc => "allocation",
        }
    }

    /// Extracts the metric from a cell.
    pub fn pick(self, cell: &Cell, class: AppClass) -> f64 {
        let map = match self {
            Metric::Response => &cell.response,
            Metric::Execution => &cell.execution,
            Metric::AvgAlloc => &cell.avg_alloc,
        };
        map.get(&class).copied().unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kinds_build() {
        for kind in PolicyKind::ALL {
            let p = kind.build();
            assert!(!p.name().is_empty());
            let p = kind.build_with_ml(2);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyKind::Irix.label(), "IRIX");
        assert_eq!(PolicyKind::Pdpa.label(), "PDPA");
    }

    #[test]
    fn run_cell_produces_complete_results() {
        let cell = run_cell(Workload::W3, true, PolicyKind::Pdpa, 0.6, &[42]);
        assert!(cell.completed_all);
        assert!(cell.response.contains_key(&AppClass::BtA));
        assert!(cell.response.contains_key(&AppClass::Apsi));
        assert!(cell.makespan > 0.0);
    }

    #[test]
    fn print_figure_contains_all_policies() {
        let grid = vec![
            (PolicyKind::Pdpa, vec![Cell::default(); 3]),
            (PolicyKind::Equipartition, vec![Cell::default(); 3]),
        ];
        let text = print_figure("t", Workload::W1, &grid, Metric::Response);
        assert!(text.contains("PDPA"));
        assert!(text.contains("Equip"));
        assert!(text.contains("swim"));
        assert!(text.contains("bt.A"));
    }
}
