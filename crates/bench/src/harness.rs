//! The command-line harness behind every `expt-*` binary.
//!
//! `expt-all` used to fan out one subprocess per experiment; each child
//! rebuilt its workloads, and a panic anywhere took the whole run down with
//! a raw backtrace. The harness replaces that with the in-process
//! [`crate::experiments`] registry: experiments run concurrently on worker
//! threads, panics are caught per experiment, and outputs print in
//! deterministic paper order regardless of completion order.
//!
//! Flags (shared by `expt-all` and the single-experiment binaries):
//!
//! - `--json` — record this run in `BENCH_pdpa.json`: the mode block is
//!   overwritten, and one entry is **appended** to the `trajectory` array
//!   (see [`crate::trajectory`]), so the file accumulates per-invocation
//!   history for `bench-compare` to gate on;
//! - `--sequential` — one worker thread everywhere, including the
//!   experiments' inner sweeps (the baseline mode for the trajectory);
//! - `--only <name>` — run a single experiment from `expt-all`;
//! - `--trace-out <file>` — record every engine run's decision-event
//!   stream and export it as Chrome `trace_event` JSON (open in Perfetto);
//! - `--metrics-out <file>` — write the metrics-registry snapshot
//!   (counters, scopes, histograms, failures) as JSON;
//! - `--mpl-csv <file>` — export the recorded runs' multiprogramming-level
//!   history as CSV (the Fig.-8 series, one row per change);
//! - `--analyze-out <file>` — run `pdpa-analyze` over every recorded
//!   stream and write the `pdpa-analyze/v1` document (timelines,
//!   time-in-state, migrations, CPU/MPL series) as JSON;
//! - `--shards <n>` — replay-style experiments (`scale`) run their engine
//!   executions on `n` shards via the epoch-parallel sharded engine.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Instant;

use crate::experiments::{self, Experiment};
use crate::json;
use crate::stats;
use crate::trajectory::{BenchReport, ExperimentTiming, ModeReport};
use pdpa_obs::metrics::Registry;
use pdpa_obs::{chrome_trace, collector, metrics_json, mpl_series_csv, scope};

/// Width of the separator rule between experiments (matches the old
/// subprocess-based `expt-all`).
const SEPARATOR_WIDTH: usize = 78;

/// File the `--json` trajectory is merged into, relative to the working
/// directory (the repo root under `cargo run`).
pub const BENCH_PATH: &str = "BENCH_pdpa.json";

/// Parsed command-line flags.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Options {
    /// Write the run's timings into [`BENCH_PATH`].
    pub json: bool,
    /// Force one worker thread everywhere.
    pub sequential: bool,
    /// Restrict `expt-all` to one named experiment.
    pub only: Option<String>,
    /// Export the recorded event streams as Chrome trace JSON.
    pub trace_out: Option<String>,
    /// Export the metrics-registry snapshot as JSON.
    pub metrics_out: Option<String>,
    /// Export the recorded runs' MPL history as CSV.
    pub mpl_csv: Option<String>,
    /// Export the recorded runs' derived analytics as JSON.
    pub analyze_out: Option<String>,
    /// Replay-style experiments run their engine executions on this many
    /// shards (epoch-parallel sharded engine) instead of the classic
    /// sequential loop.
    pub shards: Option<usize>,
}

impl Options {
    /// Whether engine runs should record their decision-event streams.
    fn observing(&self) -> bool {
        self.trace_out.is_some() || self.mpl_csv.is_some() || self.analyze_out.is_some()
    }
}

/// Parses flags from an argument iterator (without the program name).
pub fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut args = args;
    let mut opts = Options::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--sequential" => opts.sequential = true,
            "--only" => match args.next() {
                Some(name) => opts.only = Some(name),
                None => return Err("--only requires an experiment name".into()),
            },
            "--trace-out" => match args.next() {
                Some(path) => opts.trace_out = Some(path),
                None => return Err("--trace-out requires a file path".into()),
            },
            "--metrics-out" => match args.next() {
                Some(path) => opts.metrics_out = Some(path),
                None => return Err("--metrics-out requires a file path".into()),
            },
            "--mpl-csv" => match args.next() {
                Some(path) => opts.mpl_csv = Some(path),
                None => return Err("--mpl-csv requires a file path".into()),
            },
            "--analyze-out" => match args.next() {
                Some(path) => opts.analyze_out = Some(path),
                None => return Err("--analyze-out requires a file path".into()),
            },
            "--shards" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.shards = Some(n),
                _ => return Err("--shards requires a positive integer".into()),
            },
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected --json, --sequential, --only <name>, \
                     --trace-out <file>, --metrics-out <file>, --mpl-csv <file>, \
                     --analyze-out <file>, or --shards <n>)"
                ))
            }
        }
    }
    Ok(opts)
}

/// Entry point for `expt-all`: every registered experiment, or the
/// `--only` subset.
pub fn main_all() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(message) => return usage_error(&message),
    };
    let list = match &opts.only {
        None => experiments::registry(),
        Some(name) => match experiments::find(name) {
            Some(e) => vec![e],
            None => {
                let known: Vec<&str> = experiments::registry().iter().map(|e| e.name).collect();
                return usage_error(&format!(
                    "unknown experiment `{name}`; available: {}",
                    known.join(", ")
                ));
            }
        },
    };
    run(&list, &opts)
}

/// Entry point for the single-experiment binaries (`expt-fig5`, …).
pub fn main_single(name: &str) -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) if opts.only.is_some() => {
            return usage_error("--only is only meaningful for expt-all")
        }
        Ok(opts) => opts,
        Err(message) => return usage_error(&message),
    };
    let e = experiments::find(name).unwrap_or_else(|| panic!("unregistered experiment {name}"));
    run(&[e], &opts)
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

/// One guarded experiment execution.
struct Outcome {
    /// Rendered output, or the panic message.
    output: Result<String, String>,
    wall_secs: f64,
}

fn run_guarded(e: &Experiment) -> Outcome {
    // Engine runs below are attributed to this experiment in the metrics
    // registry (and in recorded event-stream keys).
    let _scope = scope::enter(e.name);
    let start = Instant::now();
    let output = catch_unwind(AssertUnwindSafe(e.run)).map_err(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with a non-string payload".to_string());
        // Preserve the panic as a structured event so the failure shows up
        // in the metrics export, not just on stderr.
        collector::record_failure(e.name, message.clone());
        message
    });
    Outcome {
        output,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

use crate::trajectory::git_rev;

/// Writes an export file, reporting the path on stderr like the CLI does.
fn write_export(path: &str, what: &str, contents: &str) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {path}: {e}");
        return Err(ExitCode::FAILURE);
    }
    eprintln!("[{path}] {what} written");
    Ok(())
}

/// Runs `list` (concurrently unless `--sequential`), prints the outputs in
/// registry order, merges the trajectory under `--json`, and reports
/// failures with a nonzero exit instead of a panic.
fn run(list: &[Experiment], opts: &Options) -> ExitCode {
    if opts.sequential {
        // Push the choice down into the experiments' own par_map sweeps.
        std::env::set_var("RAYON_NUM_THREADS", "1");
    }
    if let Some(shards) = opts.shards {
        // Experiments are fn() thunks, so the shard request travels the
        // same way --sequential does: through the environment. Only the
        // replay-style experiments (scale) consult it.
        std::env::set_var("PDPA_SHARDS", shards.to_string());
    }
    let threads = if opts.sequential {
        1
    } else {
        pdpa_parallel::num_threads()
    };
    if opts.observing() {
        collector::set_recording(true);
    }

    let before = stats::snapshot();
    let start = Instant::now();
    let outcomes = pdpa_parallel::par_map(list, threads, run_guarded);
    let wall_secs = start.elapsed().as_secs_f64();
    let counters = stats::snapshot().since(&before);

    let mut failures: Vec<&str> = Vec::new();
    for (e, outcome) in list.iter().zip(&outcomes) {
        if list.len() > 1 {
            println!("{}", "=".repeat(SEPARATOR_WIDTH));
        }
        match &outcome.output {
            Ok(text) => print!("{text}"),
            Err(message) => {
                eprintln!("{}: FAILED: {message}", e.name);
                failures.push(e.name);
            }
        }
    }

    // Drain the observability state once; every export below reads from
    // these (deterministically ordered) drains.
    let recorded_runs = if opts.observing() {
        collector::set_recording(false);
        collector::take_runs()
    } else {
        Vec::new()
    };
    let obs_failures = collector::take_failures();
    let metrics_text = metrics_json(&Registry::global().snapshot(), &obs_failures);

    if let Some(path) = &opts.trace_out {
        if let Err(code) = write_export(path, "Chrome trace", &chrome_trace(&recorded_runs)) {
            return code;
        }
    }
    if let Some(path) = &opts.mpl_csv {
        if let Err(code) = write_export(path, "MPL series CSV", &mpl_series_csv(&recorded_runs)) {
            return code;
        }
    }
    if let Some(path) = &opts.metrics_out {
        if let Err(code) = write_export(path, "metrics JSON", &metrics_text) {
            return code;
        }
    }
    if let Some(path) = &opts.analyze_out {
        let analyses: Vec<(String, pdpa_analyze::RunAnalysis)> = recorded_runs
            .iter()
            .map(|(key, events)| (key.clone(), pdpa_analyze::RunAnalysis::from_events(events)))
            .collect();
        let doc = pdpa_analyze::analysis_json(&analyses);
        if let Err(code) = write_export(path, "run analysis JSON", &doc) {
            return code;
        }
    }

    if opts.json {
        let report = ModeReport {
            threads,
            wall_secs,
            counters,
            // The same document `--metrics-out` writes, embedded as the
            // mode's `metrics` block (pdpa-bench/v2).
            metrics: json::parse(&metrics_text).ok(),
            experiments: list
                .iter()
                .zip(&outcomes)
                .map(|(e, o)| ExperimentTiming {
                    name: e.name.to_string(),
                    wall_secs: o.wall_secs,
                    ok: o.output.is_ok(),
                })
                .collect(),
        };
        let events_per_sec = report.events_per_sec();
        let existing = std::fs::read_to_string(BENCH_PATH).ok();
        let merged =
            BenchReport::merge_into(existing.as_deref(), opts.sequential, report, &git_rev());
        if let Err(e) = std::fs::write(BENCH_PATH, merged) {
            eprintln!("error: cannot write {BENCH_PATH}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[{}] {} mode: {} thread(s), {:.2}s wall, {:.0} events/sec, {} engine runs, {} cells",
            BENCH_PATH,
            if opts.sequential {
                "sequential"
            } else {
                "parallel"
            },
            threads,
            wall_secs,
            events_per_sec,
            counters.engine_runs,
            counters.cells_run,
        );
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "error: {} of {} experiment(s) failed: {}",
            failures.len(),
            list.len(),
            failures.join(", ")
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Options, String> {
        parse_args(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        assert_eq!(parse(&[]).unwrap(), Options::default());
        let opts = parse(&["--json", "--sequential", "--only", "fig5"]).unwrap();
        assert!(opts.json && opts.sequential);
        assert_eq!(opts.only.as_deref(), Some("fig5"));
    }

    #[test]
    fn parses_observability_flags() {
        let opts = parse(&[
            "--trace-out",
            "trace.json",
            "--metrics-out",
            "metrics.json",
            "--mpl-csv",
            "mpl.csv",
            "--analyze-out",
            "analysis.json",
        ])
        .unwrap();
        assert_eq!(opts.trace_out.as_deref(), Some("trace.json"));
        assert_eq!(opts.metrics_out.as_deref(), Some("metrics.json"));
        assert_eq!(opts.mpl_csv.as_deref(), Some("mpl.csv"));
        assert_eq!(opts.analyze_out.as_deref(), Some("analysis.json"));
        assert!(opts.observing());
        assert!(!Options::default().observing());
        // --analyze-out alone must turn recording on, or the analysis
        // would silently be empty.
        let alone = parse(&["--analyze-out", "analysis.json"]).unwrap();
        assert!(alone.observing());
    }

    #[test]
    fn parses_shards() {
        assert_eq!(parse(&["--shards", "4"]).unwrap().shards, Some(4));
        assert_eq!(parse(&[]).unwrap().shards, None);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse(&["--only"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
        assert!(parse(&["--metrics-out"]).is_err());
        assert!(parse(&["--mpl-csv"]).is_err());
        assert!(parse(&["--analyze-out"]).is_err());
        assert!(parse(&["--shards"]).is_err());
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards", "x"]).is_err());
    }

    #[test]
    fn guarded_runs_catch_panics() {
        let boom = Experiment {
            name: "boom",
            title: "always panics",
            run: || panic!("exploded as designed"),
        };
        let outcome = run_guarded(&boom);
        assert_eq!(
            outcome.output.unwrap_err(),
            "exploded as designed".to_string()
        );
        assert!(outcome.wall_secs >= 0.0);
    }
}
