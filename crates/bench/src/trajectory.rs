//! The machine-readable bench trajectory written to `BENCH_pdpa.json`.
//!
//! Each `--json` run records wall time per experiment, the event-queue
//! throughput derived from the engine's pushed/popped counters, the number
//! of cells run, and the thread count. Parallel and sequential runs land
//! under separate mode keys in the same file, so a single document carries
//! both the baseline and the parallel number (and their ratio) for later
//! PRs to regress against.

use crate::json::{parse, Value};
use crate::stats::Snapshot;

/// Schema tag written at the top of the document. `v2` adds the optional
/// per-mode `metrics` block (the observability registry snapshot).
pub const SCHEMA: &str = "pdpa-bench/v2";

/// The previous schema, still accepted on read so existing trajectories
/// merge instead of being discarded (their modes just have no `metrics`).
pub const SCHEMA_V1: &str = "pdpa-bench/v1";

/// Wall time of one experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentTiming {
    /// Registry name (`fig3`, `table1`, …).
    pub name: String,
    /// Wall-clock seconds for this experiment.
    pub wall_secs: f64,
    /// False when the experiment panicked.
    pub ok: bool,
}

/// Measurements of one harness invocation (one mode).
#[derive(Clone, Debug, PartialEq)]
pub struct ModeReport {
    /// Worker threads used (1 for the sequential path).
    pub threads: usize,
    /// End-to-end wall-clock seconds of the invocation.
    pub wall_secs: f64,
    /// Harness counter deltas over the invocation.
    pub counters: Snapshot,
    /// The observability metrics snapshot of the invocation (the same
    /// document `--metrics-out` writes), when one was captured.
    pub metrics: Option<Value>,
    /// Per-experiment wall times, in registry order.
    pub experiments: Vec<ExperimentTiming>,
}

impl ModeReport {
    /// Simulation events drained per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.counters.events_popped as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("threads".into(), Value::Num(self.threads as f64)),
            ("wall_secs".into(), Value::Num(self.wall_secs)),
            (
                "events_pushed".into(),
                Value::Num(self.counters.events_pushed as f64),
            ),
            (
                "events_popped".into(),
                Value::Num(self.counters.events_popped as f64),
            ),
            ("events_per_sec".into(), Value::Num(self.events_per_sec())),
            (
                "engine_runs".into(),
                Value::Num(self.counters.engine_runs as f64),
            ),
            (
                "cells_run".into(),
                Value::Num(self.counters.cells_run as f64),
            ),
            (
                "experiments".into(),
                Value::Arr(
                    self.experiments
                        .iter()
                        .map(|e| {
                            Value::Obj(vec![
                                ("name".into(), Value::Str(e.name.clone())),
                                ("wall_secs".into(), Value::Num(e.wall_secs)),
                                ("ok".into(), Value::Bool(e.ok)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(metrics) = &self.metrics {
            pairs.push(("metrics".into(), metrics.clone()));
        }
        Value::Obj(pairs)
    }

    fn from_value(v: &Value) -> Option<ModeReport> {
        Some(ModeReport {
            threads: v.get("threads")?.as_u64()? as usize,
            wall_secs: v.get("wall_secs")?.as_f64()?,
            counters: Snapshot {
                events_pushed: v.get("events_pushed")?.as_u64()?,
                events_popped: v.get("events_popped")?.as_u64()?,
                engine_runs: v.get("engine_runs")?.as_u64()?,
                cells_run: v.get("cells_run")?.as_u64()?,
            },
            metrics: v.get("metrics").cloned(),
            experiments: v
                .get("experiments")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Some(ExperimentTiming {
                        name: e.get("name")?.as_str()?.to_string(),
                        wall_secs: e.get("wall_secs")?.as_f64()?,
                        ok: e.get("ok")?.as_bool()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// The whole `BENCH_pdpa.json` document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// The parallel harness run, when recorded.
    pub parallel: Option<ModeReport>,
    /// The sequential baseline run, when recorded.
    pub sequential: Option<ModeReport>,
}

impl BenchReport {
    /// Parallel-over-sequential wall-time ratio, when both modes are
    /// recorded.
    pub fn speedup(&self) -> Option<f64> {
        match (&self.sequential, &self.parallel) {
            (Some(seq), Some(par)) if par.wall_secs > 0.0 => Some(seq.wall_secs / par.wall_secs),
            _ => None,
        }
    }

    /// Serializes the report to the `BENCH_pdpa.json` document text.
    pub fn to_json(&self) -> String {
        let mut modes = Vec::new();
        if let Some(par) = &self.parallel {
            modes.push(("parallel".to_string(), par.to_value()));
        }
        if let Some(seq) = &self.sequential {
            modes.push(("sequential".to_string(), seq.to_value()));
        }
        let mut doc = vec![
            ("schema".to_string(), Value::Str(SCHEMA.into())),
            ("modes".to_string(), Value::Obj(modes)),
        ];
        if let Some(speedup) = self.speedup() {
            doc.push((
                "speedup_parallel_over_sequential".to_string(),
                Value::Num(speedup),
            ));
        }
        Value::Obj(doc).to_pretty()
    }

    /// Parses a previously-written document. Unknown schemas and malformed
    /// documents yield `None` (the caller starts a fresh report).
    pub fn from_json(text: &str) -> Option<BenchReport> {
        let doc = parse(text).ok()?;
        let schema = doc.get("schema")?.as_str()?;
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return None;
        }
        let modes = doc.get("modes")?;
        Some(BenchReport {
            parallel: modes.get("parallel").and_then(ModeReport::from_value),
            sequential: modes.get("sequential").and_then(ModeReport::from_value),
        })
    }

    /// Folds this run's mode report into a document on disk, preserving
    /// the other mode's numbers when present, and returns the merged text.
    pub fn merge_into(existing: Option<&str>, sequential_mode: bool, report: ModeReport) -> String {
        let mut doc = existing
            .and_then(BenchReport::from_json)
            .unwrap_or_default();
        if sequential_mode {
            doc.sequential = Some(report);
        } else {
            doc.parallel = Some(report);
        }
        doc.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mode(threads: usize, wall: f64) -> ModeReport {
        ModeReport {
            threads,
            wall_secs: wall,
            counters: Snapshot {
                events_pushed: 1000,
                events_popped: 950,
                engine_runs: 36,
                cells_run: 12,
            },
            metrics: None,
            experiments: vec![
                ExperimentTiming {
                    name: "fig3".into(),
                    wall_secs: 0.25,
                    ok: true,
                },
                ExperimentTiming {
                    name: "table1".into(),
                    wall_secs: 0.5,
                    ok: false,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            parallel: Some(sample_mode(4, 3.5)),
            sequential: Some(sample_mode(1, 14.0)),
        };
        let text = report.to_json();
        let back = BenchReport::from_json(&text).expect("parse back");
        assert_eq!(back, report);
        assert!((back.speedup().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_the_other_mode() {
        let first = BenchReport::merge_into(None, true, sample_mode(1, 14.0));
        assert!(BenchReport::from_json(&first).unwrap().parallel.is_none());
        let second = BenchReport::merge_into(Some(&first), false, sample_mode(4, 3.5));
        let doc = BenchReport::from_json(&second).unwrap();
        assert_eq!(doc.sequential.as_ref().unwrap().wall_secs, 14.0);
        assert_eq!(doc.parallel.as_ref().unwrap().wall_secs, 3.5);
        assert!(second.contains("speedup_parallel_over_sequential"));
    }

    #[test]
    fn metrics_block_round_trips() {
        let mut mode = sample_mode(4, 3.5);
        mode.metrics = Some(Value::Obj(vec![
            ("schema".into(), Value::Str("pdpa-obs-metrics/v1".into())),
            (
                "engine".into(),
                Value::Obj(vec![("runs".into(), Value::Num(36.0))]),
            ),
        ]));
        let report = BenchReport {
            parallel: Some(mode.clone()),
            sequential: None,
        };
        let text = report.to_json();
        assert!(text.contains("pdpa-bench/v2"));
        assert!(text.contains("pdpa-obs-metrics/v1"));
        let back = BenchReport::from_json(&text).expect("parse back");
        assert_eq!(back.parallel.unwrap().metrics, mode.metrics);
    }

    #[test]
    fn v1_documents_still_parse() {
        // A v1 document (no metrics block) merges rather than being
        // discarded.
        let mut report = BenchReport {
            sequential: Some(sample_mode(1, 14.0)),
            parallel: None,
        };
        let v1_text = report.to_json().replace("pdpa-bench/v2", "pdpa-bench/v1");
        let doc = BenchReport::from_json(&v1_text).expect("v1 accepted");
        assert_eq!(doc.sequential.as_ref().unwrap().wall_secs, 14.0);
        assert_eq!(doc.sequential.as_ref().unwrap().metrics, None);
        // Merging a v2 mode into a v1 document keeps the old mode.
        report.parallel = Some(sample_mode(4, 3.5));
        let merged = BenchReport::merge_into(Some(&v1_text), false, sample_mode(4, 3.5));
        let doc = BenchReport::from_json(&merged).unwrap();
        assert!(doc.sequential.is_some() && doc.parallel.is_some());
        assert!(merged.contains("pdpa-bench/v2"));
    }

    #[test]
    fn malformed_documents_start_fresh() {
        assert!(BenchReport::from_json("{]").is_none());
        assert!(BenchReport::from_json("{\"schema\": \"other\"}").is_none());
        let text = BenchReport::merge_into(Some("not json"), false, sample_mode(4, 1.0));
        assert!(BenchReport::from_json(&text).unwrap().parallel.is_some());
    }

    #[test]
    fn events_per_sec_derives_from_counters() {
        let m = sample_mode(4, 2.0);
        assert!((m.events_per_sec() - 475.0).abs() < 1e-12);
    }
}
