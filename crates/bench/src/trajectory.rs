//! The machine-readable bench trajectory written to `BENCH_pdpa.json`.
//!
//! Each `--json` run records wall time per experiment, the event-queue
//! throughput derived from the engine's pushed/popped counters, the number
//! of cells run, and the thread count. Parallel and sequential runs land
//! under separate mode keys in the same file, so a single document carries
//! both the baseline and the parallel number (and their ratio) for later
//! PRs to regress against.
//!
//! The mode blocks are *latest-wins*: each invocation overwrites its own
//! mode. History lives in the `trajectory` array instead — every `--json`
//! invocation **appends** one entry `(git_rev, mode, threads, wall_secs,
//! events_per_sec)`, so the file accumulates a real performance trajectory
//! across commits for `bench-compare` to gate on.

use crate::json::{parse, Value};
use crate::stats::Snapshot;

/// Schema tag written at the top of the document. `v3` adds the
/// append-only `trajectory` array; `v2` added the optional per-mode
/// `metrics` block (the observability registry snapshot).
pub const SCHEMA: &str = "pdpa-bench/v3";

/// Previous schemas, still accepted on read so existing trajectories merge
/// instead of being discarded (their modes just lack the newer blocks).
pub const SCHEMA_V2: &str = "pdpa-bench/v2";
/// See [`SCHEMA_V2`].
pub const SCHEMA_V1: &str = "pdpa-bench/v1";

/// One appended line of bench history: which commit ran, in which mode,
/// and how fast.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryEntry {
    /// Abbreviated git revision of the working tree (`unknown` outside a
    /// repository).
    pub git_rev: String,
    /// `parallel` or `sequential`.
    pub mode: String,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock seconds of the invocation.
    pub wall_secs: f64,
    /// Simulation events drained per wall-clock second.
    pub events_per_sec: f64,
    /// Per-shard event-count imbalance of a sharded replay
    /// (`max/mean - 1`, so `0.0` is perfectly balanced). Absent for
    /// classic runs and entries written before the field existed.
    pub shard_imbalance: Option<f64>,
}

impl TrajectoryEntry {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("git_rev".into(), Value::Str(self.git_rev.clone())),
            ("mode".into(), Value::Str(self.mode.clone())),
            ("threads".into(), Value::Num(self.threads as f64)),
            ("wall_secs".into(), Value::Num(self.wall_secs)),
            ("events_per_sec".into(), Value::Num(self.events_per_sec)),
        ];
        if let Some(imbalance) = self.shard_imbalance {
            pairs.push(("shard_imbalance".into(), Value::Num(imbalance)));
        }
        Value::Obj(pairs)
    }

    fn from_value(v: &Value) -> Option<TrajectoryEntry> {
        Some(TrajectoryEntry {
            git_rev: v.get("git_rev")?.as_str()?.to_string(),
            mode: v.get("mode")?.as_str()?.to_string(),
            threads: v.get("threads")?.as_u64()? as usize,
            wall_secs: v.get("wall_secs")?.as_f64()?,
            events_per_sec: v.get("events_per_sec")?.as_f64()?,
            // Optional for back-compat: pre-existing entries lack it.
            shard_imbalance: v.get("shard_imbalance").and_then(Value::as_f64),
        })
    }
}

/// Wall time of one experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentTiming {
    /// Registry name (`fig3`, `table1`, …).
    pub name: String,
    /// Wall-clock seconds for this experiment.
    pub wall_secs: f64,
    /// False when the experiment panicked.
    pub ok: bool,
}

/// Measurements of one harness invocation (one mode).
#[derive(Clone, Debug, PartialEq)]
pub struct ModeReport {
    /// Worker threads used (1 for the sequential path).
    pub threads: usize,
    /// End-to-end wall-clock seconds of the invocation.
    pub wall_secs: f64,
    /// Harness counter deltas over the invocation.
    pub counters: Snapshot,
    /// The observability metrics snapshot of the invocation (the same
    /// document `--metrics-out` writes), when one was captured.
    pub metrics: Option<Value>,
    /// Per-experiment wall times, in registry order.
    pub experiments: Vec<ExperimentTiming>,
}

impl ModeReport {
    /// Simulation events drained per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.counters.events_popped as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("threads".into(), Value::Num(self.threads as f64)),
            ("wall_secs".into(), Value::Num(self.wall_secs)),
            (
                "events_pushed".into(),
                Value::Num(self.counters.events_pushed as f64),
            ),
            (
                "events_popped".into(),
                Value::Num(self.counters.events_popped as f64),
            ),
            ("events_per_sec".into(), Value::Num(self.events_per_sec())),
            (
                "engine_runs".into(),
                Value::Num(self.counters.engine_runs as f64),
            ),
            (
                "cells_run".into(),
                Value::Num(self.counters.cells_run as f64),
            ),
            (
                "experiments".into(),
                Value::Arr(
                    self.experiments
                        .iter()
                        .map(|e| {
                            Value::Obj(vec![
                                ("name".into(), Value::Str(e.name.clone())),
                                ("wall_secs".into(), Value::Num(e.wall_secs)),
                                ("ok".into(), Value::Bool(e.ok)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(metrics) = &self.metrics {
            pairs.push(("metrics".into(), metrics.clone()));
        }
        Value::Obj(pairs)
    }

    fn from_value(v: &Value) -> Option<ModeReport> {
        Some(ModeReport {
            threads: v.get("threads")?.as_u64()? as usize,
            wall_secs: v.get("wall_secs")?.as_f64()?,
            counters: Snapshot {
                events_pushed: v.get("events_pushed")?.as_u64()?,
                events_popped: v.get("events_popped")?.as_u64()?,
                engine_runs: v.get("engine_runs")?.as_u64()?,
                cells_run: v.get("cells_run")?.as_u64()?,
            },
            metrics: v.get("metrics").cloned(),
            experiments: v
                .get("experiments")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Some(ExperimentTiming {
                        name: e.get("name")?.as_str()?.to_string(),
                        wall_secs: e.get("wall_secs")?.as_f64()?,
                        ok: e.get("ok")?.as_bool()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// The whole `BENCH_pdpa.json` document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// The parallel harness run, when recorded.
    pub parallel: Option<ModeReport>,
    /// The sequential baseline run, when recorded.
    pub sequential: Option<ModeReport>,
    /// Append-only history, one entry per `--json` invocation.
    pub trajectory: Vec<TrajectoryEntry>,
}

impl BenchReport {
    /// Parallel-over-sequential wall-time ratio, when both modes are
    /// recorded.
    pub fn speedup(&self) -> Option<f64> {
        match (&self.sequential, &self.parallel) {
            (Some(seq), Some(par)) if par.wall_secs > 0.0 => Some(seq.wall_secs / par.wall_secs),
            _ => None,
        }
    }

    /// Serializes the report to the `BENCH_pdpa.json` document text.
    pub fn to_json(&self) -> String {
        let mut modes = Vec::new();
        if let Some(par) = &self.parallel {
            modes.push(("parallel".to_string(), par.to_value()));
        }
        if let Some(seq) = &self.sequential {
            modes.push(("sequential".to_string(), seq.to_value()));
        }
        let mut doc = vec![
            ("schema".to_string(), Value::Str(SCHEMA.into())),
            ("modes".to_string(), Value::Obj(modes)),
            (
                "trajectory".to_string(),
                Value::Arr(
                    self.trajectory
                        .iter()
                        .map(TrajectoryEntry::to_value)
                        .collect(),
                ),
            ),
        ];
        if let Some(speedup) = self.speedup() {
            doc.push((
                "speedup_parallel_over_sequential".to_string(),
                Value::Num(speedup),
            ));
        }
        Value::Obj(doc).to_pretty()
    }

    /// Parses a previously-written document. Unknown schemas and malformed
    /// documents yield `None` (the caller starts a fresh report).
    pub fn from_json(text: &str) -> Option<BenchReport> {
        let doc = parse(text).ok()?;
        let schema = doc.get("schema")?.as_str()?;
        if schema != SCHEMA && schema != SCHEMA_V2 && schema != SCHEMA_V1 {
            return None;
        }
        let modes = doc.get("modes")?;
        Some(BenchReport {
            parallel: modes.get("parallel").and_then(ModeReport::from_value),
            sequential: modes.get("sequential").and_then(ModeReport::from_value),
            trajectory: doc
                .get("trajectory")
                .and_then(Value::as_arr)
                .map(|entries| {
                    entries
                        .iter()
                        .filter_map(TrajectoryEntry::from_value)
                        .collect()
                })
                .unwrap_or_default(),
        })
    }

    /// Folds this run's mode report into a document on disk — overwriting
    /// this mode's block, preserving the other mode's, and **appending**
    /// one trajectory entry — and returns the merged text.
    pub fn merge_into(
        existing: Option<&str>,
        sequential_mode: bool,
        report: ModeReport,
        git_rev: &str,
    ) -> String {
        let mut doc = existing
            .and_then(BenchReport::from_json)
            .unwrap_or_default();
        let mode = if sequential_mode {
            "sequential"
        } else {
            "parallel"
        };
        doc.trajectory.push(TrajectoryEntry {
            git_rev: git_rev.to_string(),
            mode: mode.to_string(),
            threads: report.threads,
            wall_secs: report.wall_secs,
            events_per_sec: report.events_per_sec(),
            shard_imbalance: None,
        });
        if sequential_mode {
            doc.sequential = Some(report);
        } else {
            doc.parallel = Some(report);
        }
        doc.to_json()
    }

    /// Appends one trajectory entry for an arbitrary mode (the harness's
    /// two fixed modes use [`merge_into`](Self::merge_into)) to a document
    /// on disk and returns the merged text. This is how trace replays
    /// (`pdpa replay --json`, mode `replay-<policy>`) enter the same
    /// history the regression gate reads; the `parallel`/`sequential` mode
    /// blocks are preserved untouched.
    pub fn append_entry(existing: Option<&str>, entry: TrajectoryEntry) -> String {
        let mut doc = existing
            .and_then(BenchReport::from_json)
            .unwrap_or_default();
        doc.trajectory.push(entry);
        doc.to_json()
    }
}

/// Abbreviated git revision of the working tree, or `unknown` outside a
/// repository — the provenance stamp on every trajectory entry.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mode(threads: usize, wall: f64) -> ModeReport {
        ModeReport {
            threads,
            wall_secs: wall,
            counters: Snapshot {
                events_pushed: 1000,
                events_popped: 950,
                engine_runs: 36,
                cells_run: 12,
            },
            metrics: None,
            experiments: vec![
                ExperimentTiming {
                    name: "fig3".into(),
                    wall_secs: 0.25,
                    ok: true,
                },
                ExperimentTiming {
                    name: "table1".into(),
                    wall_secs: 0.5,
                    ok: false,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            parallel: Some(sample_mode(4, 3.5)),
            sequential: Some(sample_mode(1, 14.0)),
            trajectory: vec![TrajectoryEntry {
                git_rev: "abc1234".into(),
                mode: "parallel".into(),
                threads: 4,
                wall_secs: 3.5,
                events_per_sec: 271.4,
                shard_imbalance: Some(0.125),
            }],
        };
        let text = report.to_json();
        let back = BenchReport::from_json(&text).expect("parse back");
        assert_eq!(back, report);
        assert!((back.speedup().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_the_other_mode() {
        let first = BenchReport::merge_into(None, true, sample_mode(1, 14.0), "rev1");
        assert!(BenchReport::from_json(&first).unwrap().parallel.is_none());
        let second = BenchReport::merge_into(Some(&first), false, sample_mode(4, 3.5), "rev1");
        let doc = BenchReport::from_json(&second).unwrap();
        assert_eq!(doc.sequential.as_ref().unwrap().wall_secs, 14.0);
        assert_eq!(doc.parallel.as_ref().unwrap().wall_secs, 3.5);
        assert!(second.contains("speedup_parallel_over_sequential"));
    }

    #[test]
    fn every_merge_appends_a_trajectory_entry() {
        // Re-running the same mode overwrites the mode block but GROWS the
        // trajectory — history is never lost to a rerun.
        let first = BenchReport::merge_into(None, false, sample_mode(4, 3.5), "rev1");
        let second = BenchReport::merge_into(Some(&first), false, sample_mode(4, 3.2), "rev2");
        let third = BenchReport::merge_into(Some(&second), true, sample_mode(1, 14.0), "rev2");
        let doc = BenchReport::from_json(&third).unwrap();
        assert_eq!(doc.trajectory.len(), 3);
        assert_eq!(doc.trajectory[0].git_rev, "rev1");
        assert_eq!(doc.trajectory[1].wall_secs, 3.2);
        assert_eq!(doc.trajectory[2].mode, "sequential");
        // The mode block holds only the latest parallel run.
        assert_eq!(doc.parallel.as_ref().unwrap().wall_secs, 3.2);
        // events_per_sec is derived from the run's own counters.
        let expected = 950.0 / 3.2;
        assert!((doc.trajectory[1].events_per_sec - expected).abs() < 1e-9);
    }

    #[test]
    fn metrics_block_round_trips() {
        let mut mode = sample_mode(4, 3.5);
        mode.metrics = Some(Value::Obj(vec![
            ("schema".into(), Value::Str("pdpa-obs-metrics/v1".into())),
            (
                "engine".into(),
                Value::Obj(vec![("runs".into(), Value::Num(36.0))]),
            ),
        ]));
        let report = BenchReport {
            parallel: Some(mode.clone()),
            sequential: None,
            trajectory: Vec::new(),
        };
        let text = report.to_json();
        assert!(text.contains("pdpa-bench/v3"));
        assert!(text.contains("pdpa-obs-metrics/v1"));
        let back = BenchReport::from_json(&text).expect("parse back");
        assert_eq!(back.parallel.unwrap().metrics, mode.metrics);
    }

    #[test]
    fn older_schemas_still_parse() {
        // v1/v2 documents (no trajectory array) merge rather than being
        // discarded; the upgrade rewrites them as v3.
        let report = BenchReport {
            sequential: Some(sample_mode(1, 14.0)),
            parallel: None,
            trajectory: Vec::new(),
        };
        for old in ["pdpa-bench/v1", "pdpa-bench/v2"] {
            let old_text = report.to_json().replace("pdpa-bench/v3", old);
            let doc = BenchReport::from_json(&old_text).expect("old schema accepted");
            assert_eq!(doc.sequential.as_ref().unwrap().wall_secs, 14.0);
            assert_eq!(doc.sequential.as_ref().unwrap().metrics, None);
            // Merging into the old document keeps its mode and upgrades the
            // schema tag.
            let merged = BenchReport::merge_into(Some(&old_text), false, sample_mode(4, 3.5), "r");
            let doc = BenchReport::from_json(&merged).unwrap();
            assert!(doc.sequential.is_some() && doc.parallel.is_some());
            assert_eq!(doc.trajectory.len(), 1);
            assert!(merged.contains("pdpa-bench/v3"));
        }
    }

    #[test]
    fn malformed_documents_start_fresh() {
        assert!(BenchReport::from_json("{]").is_none());
        assert!(BenchReport::from_json("{\"schema\": \"other\"}").is_none());
        let text = BenchReport::merge_into(Some("not json"), false, sample_mode(4, 1.0), "r");
        assert!(BenchReport::from_json(&text).unwrap().parallel.is_some());
    }

    #[test]
    fn events_per_sec_derives_from_counters() {
        let m = sample_mode(4, 2.0);
        assert!((m.events_per_sec() - 475.0).abs() < 1e-12);
    }
}
