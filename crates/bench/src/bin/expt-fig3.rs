//! Fig. 3 — speedup curves of the four applications.
//!
//! Prints each calibrated curve as a table and an ASCII plot, matching the
//! qualitative shapes of the paper's figure: swim superlinear, bt.A good,
//! hydro2d medium, apsi flat.

use pdpa_apps::{paper_app, AppClass};

fn main() {
    println!("# Fig. 3 — speedup curves\n");
    let procs: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 20, 24, 30, 40, 50, 60];

    // Table.
    print!("{:<10}", "procs");
    for p in &procs {
        print!("{p:>7}");
    }
    println!();
    for class in AppClass::ALL {
        let app = paper_app(class);
        print!("{:<10}", class.name());
        for &p in &procs {
            print!("{:>7.1}", app.speedup.speedup(p));
        }
        println!();
    }

    // Efficiency at the paper's target.
    println!("\nefficiency (speedup / procs):");
    print!("{:<10}", "procs");
    for p in &procs {
        print!("{p:>7}");
    }
    println!();
    for class in AppClass::ALL {
        let app = paper_app(class);
        print!("{:<10}", class.name());
        for &p in &procs {
            print!("{:>7.2}", app.speedup.efficiency(p));
        }
        println!();
    }

    // ASCII plot: speedup vs processors, like the figure.
    println!("\nascii plot (x: processors 1..60, y: speedup 0..32, marks: s=swim b=bt.A h=hydro2d a=apsi)");
    let height = 17;
    let max_s = 32.0;
    let mut rows = vec![vec![' '; 61]; height];
    for class in AppClass::ALL {
        let mark = match class {
            AppClass::Swim => 's',
            AppClass::BtA => 'b',
            AppClass::Hydro2d => 'h',
            AppClass::Apsi => 'a',
        };
        let app = paper_app(class);
        for p in 1..=60usize {
            let s = app.speedup.speedup(p).min(max_s);
            let y = ((s / max_s) * (height - 1) as f64).round() as usize;
            rows[height - 1 - y][p] = mark;
        }
    }
    for (i, row) in rows.iter().enumerate() {
        let y_val = max_s * (height - 1 - i) as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        println!("{y_val:>5.1} |{line}");
    }
    println!("      +{}", "-".repeat(61));
}
