//! Extension experiment — the three sharing disciplines side by side.
//!
//! The scheduling literature the paper builds on contrasts three ways to
//! multiplex a multiprocessor: **space sharing** (dedicated partitions —
//! Equipartition, PDPA), **gang scheduling** (whole-machine round-robin
//! slots, perfectly coscheduled), and **uncoordinated time sharing** (the
//! IRIX model). This experiment puts all three on the paper's workloads at
//! 100 % load, with per-policy mean response, makespan, and the Table-2
//! burst structure.

use pdpa_bench::{PolicyKind, SEEDS};
use pdpa_engine::{Engine, EngineConfig};
use pdpa_policies::{GangScheduler, SchedulingPolicy};
use pdpa_qs::Workload;
use pdpa_trace::BurstStats;

fn build(label: &str) -> Box<dyn SchedulingPolicy> {
    match label {
        "Gang" => Box::new(GangScheduler::paper_comparable()),
        "IRIX" => PolicyKind::Irix.build(),
        "Equip" => PolicyKind::Equipartition.build(),
        _ => PolicyKind::Pdpa.build(),
    }
}

fn main() {
    println!("# Sharing disciplines (extension): space vs gang vs time sharing\n");
    for wl in [Workload::W1, Workload::W4] {
        println!("## {wl} at 100 % load\n");
        println!(
            "{:<8} {:>10} {:>15} {:>12} {:>17}",
            "policy", "makespan", "mean response", "migrations", "avg burst (ms)"
        );
        for label in ["Equip", "PDPA", "Gang", "IRIX"] {
            let mut makespan = 0.0;
            let mut resp = 0.0;
            // Burst structure from one traced run (seed 42).
            let traced = {
                let jobs = wl.build(1.0, 42);
                let config = EngineConfig::default().with_trace().with_seed(42);
                let r = Engine::new(config).run(jobs, build(label));
                let migrations = r.total_migrations();
                let trace = r.trace.expect("traced");
                BurstStats::from_trace(&trace, migrations)
            };
            for &seed in &SEEDS {
                let jobs = wl.build(1.0, seed);
                let r = Engine::new(EngineConfig::default().with_seed(seed ^ 0xA5A5))
                    .run(jobs, build(label));
                assert!(r.completed_all, "{wl}/{label} wedged");
                makespan += r.summary.makespan_secs();
                resp += r.summary.overall_avg_response_secs();
            }
            let n = SEEDS.len() as f64;
            println!(
                "{:<8} {:>9.0}s {:>14.0}s {:>12} {:>17.0}",
                label,
                makespan / n,
                resp / n,
                traced.migrations,
                traced.avg_burst_secs * 1e3
            );
        }
        println!();
    }
    println!(
        "Gang coschedules perfectly but pays the 1/n duty cycle: fine for the\n\
         all-scalable w1, poor for w4 where apsi wastes whole-machine slots.\n\
         Uncoordinated time sharing pays migrations and affinity loss instead."
    );
}
