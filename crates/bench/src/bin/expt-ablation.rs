//! PDPA ablations (extension beyond the paper's evaluation).
//!
//! Three design choices DESIGN.md calls out, each removed in isolation on
//! workload 4 at 100 % load:
//!
//! 1. **No coordination** (`coordinate_ml = false`) — PDPA's allocation
//!    search with a fixed multiprogramming level of 4: quantifies how much
//!    of PDPA's win is the dynamic level versus the efficiency search.
//! 2. **No relative-speedup test** (`use_relative_speedup = false`) — the
//!    INC state keeps growing superlinear applications as long as raw
//!    efficiency stays high (§4.2.2 exists to stop exactly this).
//! 3. **Target-efficiency sweep** — `target_eff` ∈ {0.5, 0.7, 0.9}: the
//!    knob trading individual execution time against system throughput.
//! 4. **Load-adaptive target** — §4.1's alternative of setting the target
//!    efficiency dynamically from the load of the system.

use pdpa_apps::AppClass;
use pdpa_bench::{average, SEEDS};
use pdpa_core::{Pdpa, PdpaParams, TargetMode};
use pdpa_engine::{Engine, EngineConfig};
use pdpa_qs::Workload;

fn run(params: PdpaParams, label: &str) {
    let workload = Workload::W4;
    let runs: Vec<_> = SEEDS
        .iter()
        .map(|&seed| {
            let jobs = workload.build(1.0, seed);
            let config = EngineConfig::default().with_seed(seed ^ 0xA5A5);
            Engine::new(config).run(jobs, Box::new(Pdpa::new(params)))
        })
        .collect();
    let cell = average(&runs, workload);
    print!("{label:<28}");
    for class in AppClass::ALL {
        print!(
            " {:>5.0}/{:<5.0}",
            cell.response[&class], cell.execution[&class]
        );
    }
    println!(
        " makespan {:>5.0}s  maxML {:>3.0}",
        cell.makespan, cell.max_ml
    );
}

fn main() {
    println!("# PDPA ablations — workload 4, load = 100 % (response/execution per class)\n");
    println!(
        "{:<28} {:>11} {:>11} {:>11} {:>11}",
        "", "swim", "bt.A", "hydro2d", "apsi"
    );

    run(PdpaParams::default(), "PDPA (paper)");

    let mut no_coord = PdpaParams::default();
    no_coord.coordinate_ml = false;
    run(no_coord, "no ML coordination");

    let mut no_rel = PdpaParams::default();
    no_rel.use_relative_speedup = false;
    run(no_rel, "no relative-speedup test");

    for target in [0.5, 0.9] {
        let params = PdpaParams::default().with_target_eff(target);
        run(params, &format!("target_eff = {target}"));
    }

    for step in [2usize, 8] {
        let params = PdpaParams::default().with_step(step);
        run(params, &format!("step = {step}"));
    }

    // §4.1's alternative: the target efficiency set dynamically from load.
    let adaptive = PdpaParams::default().with_target_mode(TargetMode::LoadAdaptive {
        min: 0.5,
        max: 0.85,
    });
    run(adaptive, "adaptive target 0.5..0.85");
}
