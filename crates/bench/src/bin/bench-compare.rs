//! The CI perf-regression gate over the bench trajectory.
//!
//! ```text
//! bench-compare --baseline BENCH_pdpa.json [--current other.json] \
//!               [--threshold 10%] [--assert-faster <modeA>:<modeB>]
//! ```
//!
//! With only `--baseline`, the latest trajectory entry of each mode is
//! compared against the previous entry of the same mode in the same file
//! (the append-only history `expt-*` binaries grow on every `--json`
//! run). With `--current`, the newest entries of the two files are
//! compared — baseline from the main branch, current from the candidate.
//!
//! `--assert-faster modeA:modeB` (repeatable) additionally requires the
//! latest `modeA` entry of the current document to show strictly higher
//! events/sec than the latest `modeB` entry — the cross-mode check CI
//! uses to prove the sharded replay outruns the sequential one.
//!
//! Exit status: 0 when the gate passes, 1 on a perf regression or a
//! failed assertion, 2 on usage or I/O errors.

use pdpa_bench::regression::{assert_faster, compare_reports};
use pdpa_bench::trajectory::BenchReport;
use std::process::ExitCode;

const USAGE: &str = "usage: bench-compare --baseline <file> [--current <file>] \
                     [--threshold <pct>] [--assert-faster <modeA>:<modeB>]";

fn main() -> ExitCode {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut threshold = 0.10;
    let mut assertions: Vec<(String, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next(),
            "--current" => current_path = args.next(),
            "--assert-faster" => {
                let Some(raw) = args.next() else {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                };
                match raw.split_once(':') {
                    Some((a, b)) if !a.is_empty() && !b.is_empty() => {
                        assertions.push((a.to_string(), b.to_string()));
                    }
                    _ => {
                        eprintln!(
                            "bench-compare: bad --assert-faster {raw:?} (want <modeA>:<modeB>)"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--threshold" => {
                let Some(raw) = args.next() else {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                };
                match parse_threshold(&raw) {
                    Some(t) => threshold = t,
                    None => {
                        eprintln!("bench-compare: bad threshold {raw:?} (want e.g. 10% or 0.1)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench-compare: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(baseline_path) = baseline_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let baseline = match load(&baseline_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench-compare: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match &current_path {
        None => baseline.clone(),
        Some(path) => match load(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("bench-compare: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let gate = compare_reports(&baseline, &current, threshold);
    println!("{}", gate.render(threshold));
    let mut failed = gate.regressed();
    for (faster, slower) in &assertions {
        match assert_faster(&current, faster, slower) {
            Ok(line) => println!("{line}"),
            Err(line) => {
                println!("{line}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    BenchReport::from_json(&text)
        .ok_or_else(|| format!("{path:?} is not a pdpa-bench trajectory document"))
}

/// Accepts `10%`, `10`, or `0.1` — all meaning ten percent.
fn parse_threshold(raw: &str) -> Option<f64> {
    let trimmed = raw.strip_suffix('%').unwrap_or(raw);
    let v: f64 = trimmed.parse().ok()?;
    if !(v.is_finite() && v >= 0.0) {
        return None;
    }
    Some(if raw.ends_with('%') || v >= 1.0 {
        v / 100.0
    } else {
        v
    })
}
