//! Thin wrapper over the in-process registry: `tournament` via the shared
//! harness (flags: `--json`, `--sequential`).

use std::process::ExitCode;

fn main() -> ExitCode {
    pdpa_bench::harness::main_single("tournament")
}
