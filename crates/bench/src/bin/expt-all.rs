//! Runs every experiment in paper order.
//!
//! `cargo run -p pdpa-bench --release --bin expt-all > results.txt`
//! regenerates the full evaluation; `EXPERIMENTS.md` was produced from this
//! output.

use std::process::Command;

fn main() {
    let binaries = [
        "expt-fig3",
        "expt-table1",
        "expt-fig4",
        "expt-fig5",
        "expt-table2",
        "expt-fig6",
        "expt-fig7",
        "expt-fig8",
        "expt-fig9",
        "expt-table3",
        "expt-fig10",
        "expt-table4",
        "expt-ablation",
        "expt-hybrid",
        "expt-cluster",
        "expt-fragmentation",
        "expt-sensitivity",
        "expt-sharing",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in binaries {
        println!("{}", "=".repeat(78));
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
}
