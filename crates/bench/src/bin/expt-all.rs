//! Runs every experiment in paper order.
//!
//! `cargo run -p pdpa-bench --release --bin expt-all > results.txt`
//! regenerates the full evaluation; `EXPERIMENTS.md` was produced from this
//! output. Experiments run concurrently in-process (see
//! `pdpa_bench::harness`); outputs print in deterministic registry order.
//! Flags: `--json`, `--sequential`, `--only <name>`.

use std::process::ExitCode;

fn main() -> ExitCode {
    pdpa_bench::harness::main_all()
}
