//! Validates the self-profiling exports of `pdpa replay --profile-out` —
//! the CI gate behind the span profiler and the binary observer stream.
//!
//! ```text
//! validate-prof --profile prof.json --shards 2 \
//!               [--report report.txt] [--stream run.bin]
//! ```
//!
//! Checks (any failure exits nonzero with a message):
//!
//! - the profile parses as Chrome `trace_event` JSON, every event is a
//!   complete (`X`) span or a metadata (`M`) record, every `X` span has a
//!   name and a duration on a declared lane, and with `--shards N` the
//!   thread lanes are exactly `coordinator` plus `shard-0..shard-N-1`;
//! - with `--report`, the text hot-path report is non-empty and carries
//!   the table header plus the top-level `replay` span row;
//! - with `--stream`, the file starts with the `PDPAOBS1` magic and every
//!   frame decodes back to a `TimedEvent` (non-empty).

use std::collections::BTreeSet;
use std::process::ExitCode;

use pdpa_bench::json::{parse, Value};

fn fail(message: &str) -> ExitCode {
    eprintln!("validate-prof: FAILED: {message}");
    ExitCode::FAILURE
}

fn read(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Validates the profiler's Chrome trace and returns
/// `(span_count, lane_count)`.
fn check_profile(doc: &Value, shards: Option<usize>) -> Result<(usize, usize), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("profile has no traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let mut lanes: BTreeSet<String> = BTreeSet::new();
    let mut lane_tids: BTreeSet<u64> = BTreeSet::new();
    let mut spans = 0usize;
    let mut span_tids: BTreeSet<u64> = BTreeSet::new();
    for ev in events {
        let phase = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or("event without ph")?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or("event without name")?;
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
        match phase {
            "M" => {
                if name == "thread_name" {
                    let lane = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .ok_or("thread_name record without args.name")?;
                    lanes.insert(lane.to_string());
                    lane_tids.insert(tid);
                }
            }
            "X" => {
                if ev.get("ts").and_then(Value::as_f64).is_none()
                    || ev.get("dur").and_then(Value::as_f64).is_none()
                {
                    return Err(format!("X span {name:?} lacks ts/dur"));
                }
                spans += 1;
                span_tids.insert(tid);
            }
            other => return Err(format!("unexpected phase {other:?} (want X or M)")),
        }
    }
    if spans == 0 {
        return Err("no X spans — the profiler recorded nothing".into());
    }
    if let Some(tid) = span_tids.difference(&lane_tids).next() {
        return Err(format!("span on tid {tid} has no thread_name lane"));
    }
    if let Some(n) = shards {
        // One lane per shard plus the coordinator: the acceptance shape.
        let mut want: BTreeSet<String> = (0..n).map(|i| format!("shard-{i}")).collect();
        want.insert("coordinator".to_string());
        if lanes != want {
            return Err(format!(
                "lanes {lanes:?} do not match coordinator + {n} shard(s)"
            ));
        }
    }
    Ok((spans, lanes.len()))
}

fn check_report(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !text.contains("hot-path report") {
        return Err(format!("{path}: no hot-path report header"));
    }
    if !text.contains("total ms") {
        return Err(format!("{path}: no span table header"));
    }
    if !text.lines().any(|l| l.starts_with("replay ")) {
        return Err(format!("{path}: no top-level replay span row"));
    }
    Ok(())
}

fn check_stream(path: &str) -> Result<usize, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !pdpa_obs::is_binary(&bytes) {
        return Err(format!("{path}: missing PDPAOBS1 magic"));
    }
    let events = pdpa_obs::read_stream(&bytes).map_err(|e| format!("{path}: {e}"))?;
    if events.is_empty() {
        return Err(format!("{path}: stream decodes to zero events"));
    }
    Ok(events.len())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (mut profile, mut report, mut stream) = (None, None, None);
    let mut shards = None;
    while let Some(arg) = args.next() {
        let Some(value) = args.next() else {
            return fail(&format!("{arg} requires a value"));
        };
        match arg.as_str() {
            "--profile" => profile = Some(value),
            "--report" => report = Some(value),
            "--stream" => stream = Some(value),
            "--shards" => match value.parse::<usize>() {
                Ok(n) if n > 0 => shards = Some(n),
                _ => {
                    return fail(&format!(
                        "--shards expects a positive integer, got {value:?}"
                    ))
                }
            },
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }
    if profile.is_none() && report.is_none() && stream.is_none() {
        return fail("nothing to validate (pass --profile, --report, or --stream)");
    }

    if let Some(path) = profile {
        match read(&path).and_then(|doc| check_profile(&doc, shards)) {
            Ok((spans, lanes)) => {
                println!("validate-prof: {path}: OK ({spans} spans across {lanes} lane(s))");
            }
            Err(e) => return fail(&e),
        }
    }
    if let Some(path) = report {
        match check_report(&path) {
            Ok(()) => println!("validate-prof: {path}: OK (hot-path report)"),
            Err(e) => return fail(&e),
        }
    }
    if let Some(path) = stream {
        match check_stream(&path) {
            Ok(n) => println!("validate-prof: {path}: OK ({n} binary frames decoded)"),
            Err(e) => return fail(&e),
        }
    }
    ExitCode::SUCCESS
}
