//! Fig. 9 — workload 3 response and execution times.
//!
//! Reproduces the paper's Fig. 9: average response time (top) and average
//! execution time (bottom) per application class, for the four scheduling
//! policies at 60/80/100 % system load.

use pdpa_bench::{print_figure, run_figure, Metric};
use pdpa_qs::Workload;

fn main() {
    let workload = Workload::W3;
    let grid = run_figure(workload, true);
    print!(
        "{}",
        print_figure(
            "Fig. 9 — workload 3 response times",
            workload,
            &grid,
            Metric::Response
        )
    );
    print!(
        "{}",
        print_figure(
            "Fig. 9 — workload 3 execution times",
            workload,
            &grid,
            Metric::Execution
        )
    );
    print!(
        "{}",
        print_figure(
            "Fig. 9 — workload 3 average allocations (analysis)",
            workload,
            &grid,
            Metric::AvgAlloc
        )
    );
    for (policy, cells) in &grid {
        let mls: Vec<String> = cells.iter().map(|c| format!("{:.0}", c.max_ml)).collect();
        println!(
            "max multiprogramming level {:<10} {}",
            policy.label(),
            mls.join(" / ")
        );
    }
}
