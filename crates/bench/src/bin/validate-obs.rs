//! Validates the observability exports emitted by the harness flags —
//! the CI gate behind `--trace-out` / `--metrics-out`.
//!
//! ```text
//! validate-obs --trace trace.json --metrics metrics.json \
//!              [--bench BENCH_pdpa.json] [--analyze analysis.json]
//! ```
//!
//! Checks (any failure exits nonzero with a message):
//!
//! - the Chrome trace parses as JSON, has a non-empty `traceEvents` array,
//!   and every duration-begin (`B`) event is closed by an end (`E`) on the
//!   same `(pid, tid)` lane;
//! - the metrics document parses, carries the `pdpa-obs-metrics/v1`
//!   schema, and shows nonzero engine runs, drained events, and decisions;
//! - with `--bench`, the trajectory carries a `pdpa-bench/v2`-or-newer
//!   schema, at least one mode embeds a metrics block, and (v3) the
//!   `trajectory` array is non-empty;
//! - with `--analyze`, the analysis document carries the `pdpa-analyze/v1`
//!   schema and every run shows events, jobs, and decisions.

use std::collections::HashMap;
use std::process::ExitCode;

use pdpa_bench::json::{parse, Value};

fn fail(message: &str) -> ExitCode {
    eprintln!("validate-obs: FAILED: {message}");
    ExitCode::FAILURE
}

fn read(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn check_trace(doc: &Value) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("trace has no traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    // Every B must be matched by an E on its (pid, tid) lane; the exporter
    // closes leftovers synthetically, so an imbalance is a writer bug.
    let mut open: HashMap<(u64, u64), i64> = HashMap::new();
    for ev in events {
        let phase = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or("event without ph")?;
        let lane = (
            ev.get("pid").and_then(Value::as_u64).unwrap_or(0),
            ev.get("tid").and_then(Value::as_u64).unwrap_or(0),
        );
        match phase {
            "B" => *open.entry(lane).or_insert(0) += 1,
            "E" => {
                let depth = open.entry(lane).or_insert(0);
                *depth -= 1;
                if *depth < 0 {
                    return Err(format!("E without B on pid={} tid={}", lane.0, lane.1));
                }
            }
            _ => {}
        }
    }
    if let Some((lane, depth)) = open.iter().find(|(_, &d)| d != 0) {
        return Err(format!(
            "unclosed span on pid={} tid={} (depth {depth})",
            lane.0, lane.1
        ));
    }
    Ok(events.len())
}

fn check_metrics(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("metrics document has no schema")?;
    if schema != "pdpa-obs-metrics/v1" {
        return Err(format!("unexpected metrics schema {schema:?}"));
    }
    let engine = doc.get("engine").ok_or("metrics has no engine block")?;
    for key in ["runs", "events_popped", "decisions"] {
        let n = engine
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("engine.{key} missing"))?;
        if n == 0 {
            return Err(format!("engine.{key} is zero — nothing was observed"));
        }
    }
    let failures = doc
        .get("failures")
        .and_then(Value::as_arr)
        .ok_or("metrics has no failures array")?;
    if !failures.is_empty() {
        return Err(format!("{} experiment failure(s) recorded", failures.len()));
    }
    Ok(())
}

fn check_bench(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("bench document has no schema")?;
    if schema != "pdpa-bench/v2" && schema != "pdpa-bench/v3" {
        return Err(format!("unexpected bench schema {schema:?}"));
    }
    let modes = doc.get("modes").ok_or("bench document has no modes")?;
    let has_metrics = ["parallel", "sequential"]
        .iter()
        .filter_map(|m| modes.get(m))
        .any(|m| m.get("metrics").is_some());
    if !has_metrics {
        return Err("no mode embeds a metrics block".into());
    }
    if schema == "pdpa-bench/v3" {
        // v3 documents must carry history: a --json run that failed to
        // append would silently starve the perf gate.
        let entries = doc
            .get("trajectory")
            .and_then(Value::as_arr)
            .ok_or("v3 bench document has no trajectory array")?;
        if entries.is_empty() {
            return Err("trajectory array is empty — the run did not append".into());
        }
        for e in entries {
            for key in ["git_rev", "mode"] {
                if e.get(key).and_then(Value::as_str).is_none() {
                    return Err(format!("trajectory entry missing {key}"));
                }
            }
            for key in ["threads", "wall_secs", "events_per_sec"] {
                if e.get(key).and_then(Value::as_f64).is_none() {
                    return Err(format!("trajectory entry missing {key}"));
                }
            }
        }
    }
    Ok(())
}

fn check_analysis(doc: &Value) -> Result<usize, String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("analysis document has no schema")?;
    if schema != "pdpa-analyze/v1" {
        return Err(format!("unexpected analysis schema {schema:?}"));
    }
    let runs = doc.get("runs").ok_or("analysis document has no runs")?;
    let Value::Obj(pairs) = runs else {
        return Err("runs is not an object".into());
    };
    if pairs.is_empty() {
        return Err("runs is empty — nothing was recorded".into());
    }
    for (key, run) in pairs {
        for field in ["events", "jobs", "decisions"] {
            let n = run
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("run {key:?} missing {field}"))?;
            if n <= 0.0 {
                return Err(format!("run {key:?} has zero {field}"));
            }
        }
    }
    Ok(pairs.len())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (mut trace, mut metrics, mut bench, mut analyze) = (None, None, None, None);
    while let Some(arg) = args.next() {
        let slot = match arg.as_str() {
            "--trace" => &mut trace,
            "--metrics" => &mut metrics,
            "--bench" => &mut bench,
            "--analyze" => &mut analyze,
            other => return fail(&format!("unknown argument `{other}`")),
        };
        match args.next() {
            Some(path) => *slot = Some(path),
            None => return fail(&format!("{arg} requires a file path")),
        }
    }
    if trace.is_none() && metrics.is_none() && bench.is_none() && analyze.is_none() {
        return fail("nothing to validate (pass --trace, --metrics, --bench, or --analyze)");
    }

    if let Some(path) = trace {
        match read(&path).and_then(|doc| check_trace(&doc)) {
            Ok(n) => println!("validate-obs: {path}: OK ({n} trace events, spans paired)"),
            Err(e) => return fail(&e),
        }
    }
    if let Some(path) = metrics {
        match read(&path).and_then(|doc| check_metrics(&doc)) {
            Ok(()) => println!("validate-obs: {path}: OK (schema, nonzero counters)"),
            Err(e) => return fail(&e),
        }
    }
    if let Some(path) = bench {
        match read(&path).and_then(|doc| check_bench(&doc)) {
            Ok(()) => println!("validate-obs: {path}: OK (bench schema, metrics, trajectory)"),
            Err(e) => return fail(&e),
        }
    }
    if let Some(path) = analyze {
        match read(&path).and_then(|doc| check_analysis(&doc)) {
            Ok(n) => println!("validate-obs: {path}: OK ({n} analyzed run(s), nonzero metrics)"),
            Err(e) => return fail(&e),
        }
    }
    ExitCode::SUCCESS
}
