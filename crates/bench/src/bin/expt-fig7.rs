//! Fig. 7 — workload 2 under multiprogramming levels 2, 3, and 4.
//!
//! The paper's conclusion: "PDPA is more robust than Equipartition to the
//! multiprogramming level decided by the system administrator: PDPA
//! dynamically detects the optimal value for any moment", so its results
//! barely move with the configured level, while Equipartition's response
//! times blow up at ML = 2 (jobs get their full requests but the queue
//! stalls).

use pdpa_bench::{average, Metric, PolicyKind, PAPER_LOADS, SEEDS};
use pdpa_engine::{Engine, EngineConfig};
use pdpa_qs::Workload;

fn main() {
    println!("# Fig. 7 — workload 2, multiprogramming levels 2/3/4\n");
    let workload = Workload::W2;
    for metric in [Metric::Response, Metric::Execution] {
        println!("## average {} time (s)\n", metric.name());
        println!(
            "{:<18} {:>10} {:>10} {:>10}",
            "policy/ml @ load", "60%", "80%", "100%"
        );
        for policy in [PolicyKind::Equipartition, PolicyKind::Pdpa] {
            for ml in [2usize, 3, 4] {
                for class in workload.classes() {
                    let mut cols = Vec::new();
                    for &load in &PAPER_LOADS {
                        let runs: Vec<_> = SEEDS
                            .iter()
                            .map(|&seed| {
                                let jobs = workload.build(load, seed);
                                let config = EngineConfig::default().with_seed(seed ^ 0xA5A5);
                                Engine::new(config).run(jobs, policy.build_with_ml(ml))
                            })
                            .collect();
                        let cell = average(&runs, workload);
                        cols.push(format!("{:>10.1}", metric.pick(&cell, class)));
                    }
                    println!(
                        "{:<18} {}",
                        format!("{} ml={} {}", policy.label(), ml, class.name()),
                        cols.join(" ")
                    );
                }
            }
        }
        println!();
    }
}
