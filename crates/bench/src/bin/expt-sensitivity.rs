//! Extension experiment — sensitivity to measurement noise and
//! reallocation cost.
//!
//! The paper's robustness argument, quantified: "Equal_efficiency … is too
//! sensitive to small changes in the efficiency measurements" while PDPA's
//! target-efficiency band and stable states absorb noise. Sweeps:
//!
//! 1. measurement noise σ ∈ {0, 2 %, 5 %, 10 %} on workload 1 (the
//!    all-scalable mix where Equal_efficiency's thrash is most visible);
//! 2. reallocation cost × {0, 1, 4} — reallocation-hungry policies pay
//!    proportionally.

use pdpa_bench::{PolicyKind, SEEDS};
use pdpa_engine::{Engine, EngineConfig};
use pdpa_qs::Workload;
use pdpa_sim::{CostModel, SimDuration};

fn mean_response(policy: PolicyKind, config_of: impl Fn(u64) -> EngineConfig) -> (f64, u64) {
    let mut resp = 0.0;
    let mut reallocs = 0u64;
    for &seed in &SEEDS {
        let jobs = Workload::W1.build(1.0, seed);
        let r = Engine::new(config_of(seed)).run(jobs, policy.build());
        assert!(r.completed_all);
        resp += r.summary.overall_avg_response_secs();
        reallocs += r.machine_stats.reallocations;
    }
    (resp / SEEDS.len() as f64, reallocs / SEEDS.len() as u64)
}

fn main() {
    println!("# Sensitivity sweeps (extension) — workload 1, load = 100 %\n");

    println!("## measurement noise (mean response (s) / reallocations)\n");
    print!("{:<12}", "sigma");
    for policy in [
        PolicyKind::Equipartition,
        PolicyKind::EqualEfficiency,
        PolicyKind::Pdpa,
    ] {
        print!("{:>22}", policy.label());
    }
    println!();
    for sigma in [0.0, 0.02, 0.05, 0.10] {
        print!("{:<12}", format!("{:.0}%", sigma * 100.0));
        for policy in [
            PolicyKind::Equipartition,
            PolicyKind::EqualEfficiency,
            PolicyKind::Pdpa,
        ] {
            let (resp, reallocs) = mean_response(policy, |seed| {
                let mut c = EngineConfig::default().with_seed(seed ^ 0xA5A5);
                c.noise_sigma = sigma;
                c
            });
            print!("{:>15.0}s/{:<6}", resp, reallocs);
        }
        println!();
    }

    println!("\n## reallocation cost (mean response (s))\n");
    print!("{:<12}", "cost");
    for policy in [
        PolicyKind::Equipartition,
        PolicyKind::EqualEfficiency,
        PolicyKind::Pdpa,
    ] {
        print!("{:>15}", policy.label());
    }
    println!();
    for factor in [0.0, 1.0, 4.0] {
        print!("{:<12}", format!("x{factor}"));
        for policy in [
            PolicyKind::Equipartition,
            PolicyKind::EqualEfficiency,
            PolicyKind::Pdpa,
        ] {
            let (resp, _) = mean_response(policy, |seed| {
                let mut c = EngineConfig::default().with_seed(seed ^ 0xA5A5);
                let base = CostModel::origin2000();
                c.cost = CostModel {
                    realloc_fixed: SimDuration::from_secs(base.realloc_fixed.as_secs() * factor),
                    per_gained_cpu: SimDuration::from_secs(base.per_gained_cpu.as_secs() * factor),
                    per_lost_cpu: SimDuration::from_secs(base.per_lost_cpu.as_secs() * factor),
                };
                c
            });
            print!("{:>14.0}s", resp);
        }
        println!();
    }
    println!(
        "\nReading: Equal_efficiency's response degrades with noise (each noisy\n\
         report re-fits its extrapolation and reallocates the whole machine)\n\
         and with reallocation cost; PDPA's smoothing and stable states keep\n\
         it within a band of Equipartition at every setting."
    );
}
