//! Micro-benchmarks of speedup-curve evaluation and the SelfAnalyzer path.
//!
//! These sit inside every simulated iteration, so they bound the
//! simulator's events-per-second throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdpa_apps::{paper_app, AppClass};
use pdpa_perf::{EfficiencyEstimator, SelfAnalyzer, SelfAnalyzerConfig};
use pdpa_sim::SimDuration;

fn bench_curves(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup");

    for class in AppClass::ALL {
        let app = paper_app(class);
        group.bench_function(format!("piecewise_lookup/{}", class.name()), |b| {
            let mut p = 1usize;
            b.iter(|| {
                p = p % 60 + 1;
                black_box(app.speedup.speedup(black_box(p)))
            });
        });
    }

    group.bench_function("selfanalyzer_record", |b| {
        let mut sa = SelfAnalyzer::new(SelfAnalyzerConfig::default());
        sa.record_iteration(2, SimDuration::from_secs(1.0));
        sa.record_iteration(2, SimDuration::from_secs(1.0));
        b.iter(|| black_box(sa.record_iteration(black_box(16), SimDuration::from_secs(0.12))));
    });

    group.bench_function("amdahl_fit_and_extrapolate", |b| {
        let mut est = EfficiencyEstimator::new();
        b.iter(|| {
            est.observe(black_box(16), black_box(12.2));
            black_box(est.efficiency_at(40))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_curves);
criterion_main!(benches);
