//! Sweep-level throughput: seed-averaged cells per second, sequential
//! versus the in-process parallel fan-out.
//!
//! This is the unit the experiment harness is built from — `run_cell` is
//! one (policy, load) point averaged over the paper's three seeds, and
//! `run_figure` is the full 4-policy × 3-load grid behind Figs. 4/6/9/10.
//! Comparing `seq` and `par` entries here shows the harness speedup
//! without the per-experiment rendering noise of `expt-all --json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdpa_bench::{run_cell, run_cell_seq, run_figure, run_figure_seq, PolicyKind, SEEDS};
use pdpa_qs::Workload;

fn bench_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_cell");
    group.sample_size(10);

    group.bench_function("w1_pdpa_load60/seq", |b| {
        b.iter(|| {
            black_box(run_cell_seq(
                Workload::W1,
                true,
                PolicyKind::Pdpa,
                0.6,
                &SEEDS,
            ))
        })
    });
    group.bench_function("w1_pdpa_load60/par", |b| {
        b.iter(|| black_box(run_cell(Workload::W1, true, PolicyKind::Pdpa, 0.6, &SEEDS)))
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_figure");
    group.sample_size(10);

    group.bench_function("w1_grid/seq", |b| {
        b.iter(|| black_box(run_figure_seq(Workload::W1, true)))
    });
    group.bench_function("w1_grid/par", |b| {
        b.iter(|| black_box(run_figure(Workload::W1, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_cells, bench_figures);
criterion_main!(benches);
