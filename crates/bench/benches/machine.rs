//! Micro-benchmarks of the CC-NUMA machine model's cpuset operations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdpa_sim::{JobId, Machine};

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");

    group.bench_function("resize_grow_shrink_cycle", |b| {
        let mut m = Machine::new(60);
        m.resize(JobId(0), 20);
        m.resize(JobId(1), 20);
        b.iter(|| {
            m.resize(JobId(0), 28);
            m.resize(JobId(0), 20);
            black_box(m.free_cpus())
        });
    });

    group.bench_function("place_release_15_jobs", |b| {
        b.iter(|| {
            let mut m = Machine::new(60);
            for j in 0..15u32 {
                m.resize(JobId(j), 4);
            }
            for j in 0..15u32 {
                m.release(JobId(j));
            }
            black_box(m.free_cpus())
        });
    });

    group.bench_function("equipartition_style_reshuffle", |b| {
        // The worst realistic case: every arrival repartitions all jobs.
        let mut m = Machine::new(60);
        for j in 0..6u32 {
            m.resize(JobId(j), 10);
        }
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let (a, b_) = if flip { (12, 8) } else { (8, 12) };
            for j in 0..3u32 {
                m.resize(JobId(j), a);
            }
            for j in 3..6u32 {
                m.resize(JobId(j), b_);
            }
            black_box(m.stats().reallocations)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
