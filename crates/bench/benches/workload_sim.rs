//! End-to-end simulation throughput: one full paper workload per iteration.
//!
//! A complete workload-3 run (tens of jobs, thousands of events) should
//! cost single-digit milliseconds; this keeps the full experiment suite
//! under a minute even on one core.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdpa_bench::PolicyKind;
use pdpa_engine::{Engine, EngineConfig};
use pdpa_qs::Workload;

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_run");
    group.sample_size(20);

    for policy in PolicyKind::ALL {
        group.bench_function(format!("w3_load60/{}", policy.label()), |b| {
            b.iter(|| {
                let jobs = Workload::W3.build(0.6, 42);
                let r = Engine::new(EngineConfig::default()).run(jobs, policy.build());
                assert!(r.completed_all);
                black_box(r.end_secs)
            });
        });
    }

    group.bench_function("w4_load100/PDPA", |b| {
        b.iter(|| {
            let jobs = Workload::W4.build(1.0, 42);
            let r = Engine::new(EngineConfig::default()).run(jobs, PolicyKind::Pdpa.build());
            assert!(r.completed_all);
            black_box(r.end_secs)
        });
    });

    group.bench_function("w1_load100_traced/IRIX", |b| {
        // The heaviest configuration: time sharing with per-quantum ticks.
        b.iter(|| {
            let jobs = Workload::W1.build(1.0, 42);
            let config = EngineConfig::default().with_trace();
            let r = Engine::new(config).run(jobs, PolicyKind::Irix.build());
            black_box(r.total_migrations())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_full_runs);
criterion_main!(benches);
