//! Micro-benchmarks of the scheduling policies' decision paths.
//!
//! The NANOS RM sits on the critical path of every performance report, so a
//! decision must cost microseconds, not milliseconds — these benches pin
//! that down for PDPA and both space-sharing baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdpa_core::Pdpa;
use pdpa_perf::PerfSample;
use pdpa_policies::{EqualEfficiency, Equipartition, JobView, PolicyCtx, SchedulingPolicy};
use pdpa_sim::{JobId, SimDuration, SimTime};

fn views(n: usize) -> Vec<JobView> {
    (0..n)
        .map(|i| JobView {
            id: JobId(i as u32),
            request: 30,
            allocated: 60 / n.max(1),
            last_sample: None,
            remaining_secs: 50.0 + i as f64,
        })
        .collect()
}

fn ctx<'a>(jobs: &'a [JobView]) -> PolicyCtx<'a> {
    PolicyCtx {
        now: SimTime::from_secs(100.0),
        total_cpus: 60,
        free_cpus: 4,
        jobs,
        queued_jobs: 3,
        next_request: Some(30),
    }
}

fn sample(procs: usize) -> PerfSample {
    PerfSample {
        procs,
        speedup: procs as f64 * 0.8,
        efficiency: 0.8,
        iter_time: SimDuration::from_secs(1.0),
        iteration: 7,
    }
}

fn bench_reports(c: &mut Criterion) {
    let mut group = c.benchmark_group("performance_report");
    for n_jobs in [4usize, 16] {
        let jobs = views(n_jobs);

        group.bench_function(format!("pdpa/{n_jobs}_jobs"), |b| {
            let mut policy = Pdpa::paper_default();
            for v in &jobs {
                policy.on_job_arrival(&ctx(&jobs), v.id);
            }
            let alloc = jobs[0].allocated;
            b.iter(|| {
                black_box(policy.on_performance_report(
                    &ctx(&jobs),
                    JobId(0),
                    black_box(sample(alloc)),
                ))
            });
        });

        group.bench_function(format!("equal_efficiency/{n_jobs}_jobs"), |b| {
            let mut policy = EqualEfficiency::paper_default();
            for v in &jobs {
                policy.on_job_arrival(&ctx(&jobs), v.id);
            }
            let alloc = jobs[0].allocated;
            b.iter(|| {
                black_box(policy.on_performance_report(
                    &ctx(&jobs),
                    JobId(0),
                    black_box(sample(alloc)),
                ))
            });
        });
    }
    group.finish();
}

fn bench_repartition(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival");
    for n_jobs in [4usize, 16, 60] {
        let jobs = views(n_jobs);
        group.bench_function(format!("equipartition/{n_jobs}_jobs"), |b| {
            let mut policy = Equipartition::default();
            b.iter(|| black_box(policy.on_job_arrival(&ctx(&jobs), JobId(0))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reports, bench_repartition);
criterion_main!(benches);
