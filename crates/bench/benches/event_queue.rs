//! Micro-benchmarks of the discrete-event queue.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdpa_sim::{EventQueue, SimRng, SimTime};

fn bench_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");

    group.bench_function("push_pop_1k_sorted", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000 {
                q.push(SimTime::from_secs(i as f64), i);
            }
            let mut sum = 0usize;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        });
    });

    group.bench_function("push_pop_1k_random", |b| {
        let mut rng = SimRng::new(7);
        let times: Vec<f64> = (0..1_000).map(|_| rng.uniform(0.0, 1_000.0)).collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_secs(t), i);
            }
            let mut sum = 0usize;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        });
    });

    group.bench_function("interleaved_steady_state", |b| {
        // The engine's real pattern: a bounded queue with push/pop pairs.
        let mut q = EventQueue::new();
        let mut rng = SimRng::new(9);
        let mut now = 0.0f64;
        for _ in 0..64 {
            q.push(SimTime::from_secs(rng.uniform(0.0, 10.0)), 0u32);
        }
        b.iter(|| {
            if let Some((t, _)) = q.pop() {
                now = t.as_secs();
            }
            q.push(SimTime::from_secs(now + rng.uniform(0.01, 5.0)), 1);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_push_pop);
criterion_main!(benches);
