//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a fully materialized, seeded schedule of machine and
//! job faults that the engine replays alongside the workload:
//!
//! - [`CpuFault`] — a CPU fails at an instant and (optionally) recovers at
//!   a later one. The engine revokes the CPU from whoever owns it and
//!   re-drives the active policy at the reduced capacity.
//! - [`JobFault`] — a running job crashes at an instant. Depending on the
//!   plan's [`RetryPolicy`] the job is retried with exponential backoff or
//!   fails terminally, freeing its resources either way.
//!
//! Plans are *data*, not callbacks: an MTBF-driven plan is sampled up front
//! from its own [`SimRng`] stream, so identical seeds produce identical
//! fault schedules regardless of what the engine does between faults. That
//! is what makes chaos runs byte-reproducible.
//!
//! # Plan grammar
//!
//! [`FaultPlan::parse`] accepts a compact text form used by the CLI's and
//! bench harness's `--faults` flag: `;`-separated elements, each one of
//!
//! ```text
//! cpu<N>@<secs>[:recover@<secs>]    one targeted CPU failure
//! job<N>@<secs>                     one job crash
//! mtbf=<secs>,horizon=<secs>[,repair=<secs>][,seed=<n>]
//!                                   sampled per-CPU failures
//! retry=<max>,backoff=<secs>[,factor=<f>]
//!                                   retry policy for job crashes
//! ```
//!
//! Example: `cpu3@100:recover@400;job2@250;retry=2,backoff=30`.

use pdpa_sim::{CpuId, JobId, SimDuration, SimRng, SimTime};

/// One scheduled CPU failure, with an optional recovery instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuFault {
    /// The CPU that fails.
    pub cpu: CpuId,
    /// When it fails.
    pub at: SimTime,
    /// When it comes back, if it ever does.
    pub recover_at: Option<SimTime>,
}

/// One scheduled job crash.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobFault {
    /// The job that crashes (by submission rank).
    pub job: JobId,
    /// When it crashes. If the job is not running at this instant the
    /// fault is dropped (you cannot crash what is not there).
    pub at: SimTime,
}

/// Bounded retry with exponential backoff for crashed jobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the first crash; the `max_retries + 1`-th
    /// crash is terminal.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the backoff on each subsequent retry (≥ 1).
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base: SimDuration::from_secs(30.0),
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry attempt `attempt` (1-based): `base *
    /// factor^(attempt-1)`.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        let factor = self.backoff_factor.powi(attempt.saturating_sub(1) as i32);
        SimDuration::from_secs(self.backoff_base.as_secs() * factor)
    }
}

/// A complete, deterministic fault schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// CPU failures, in no particular order (the engine's event queue
    /// orders them by time).
    pub cpu_faults: Vec<CpuFault>,
    /// Job crashes.
    pub job_faults: Vec<JobFault>,
    /// Retry policy for job crashes; `None` makes every crash terminal.
    pub retry: Option<RetryPolicy>,
}

impl FaultPlan {
    /// The empty plan: no faults, no retries.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.cpu_faults.is_empty() && self.job_faults.is_empty()
    }

    /// Adds a permanent CPU failure at `at` seconds.
    pub fn fail_cpu_at(mut self, cpu: CpuId, at: f64) -> Self {
        self.cpu_faults.push(CpuFault {
            cpu,
            at: SimTime::from_secs(at),
            recover_at: None,
        });
        self
    }

    /// Adds a transient CPU failure: down at `at`, back at `recover_at`.
    ///
    /// # Panics
    ///
    /// Panics if `recover_at <= at`.
    pub fn fail_cpu_between(mut self, cpu: CpuId, at: f64, recover_at: f64) -> Self {
        assert!(recover_at > at, "recovery must follow the failure");
        self.cpu_faults.push(CpuFault {
            cpu,
            at: SimTime::from_secs(at),
            recover_at: Some(SimTime::from_secs(recover_at)),
        });
        self
    }

    /// Adds a job crash at `at` seconds.
    pub fn fail_job_at(mut self, job: JobId, at: f64) -> Self {
        self.job_faults.push(JobFault {
            job,
            at: SimTime::from_secs(at),
        });
        self
    }

    /// Sets the retry policy for job crashes.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Samples an MTBF-driven failure schedule: each of `n_cpus` CPUs draws
    /// exponential inter-failure times with mean `mtbf_secs` until the
    /// `horizon_secs` bound; with `repair_secs > 0` every failure recovers
    /// after that fixed repair time (failures whose repair would overlap the
    /// next failure of the same CPU are skipped).
    ///
    /// The schedule depends only on the arguments — the sampler forks its
    /// own RNG stream per CPU — so the same seed always yields the same
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `mtbf_secs` or `horizon_secs` is not positive.
    pub fn mtbf(mut self, mtbf_secs: f64, horizon_secs: f64, n_cpus: usize, seed: u64) -> Self {
        self.sample_mtbf(mtbf_secs, horizon_secs, 0.0, n_cpus, seed);
        self
    }

    /// Like [`FaultPlan::mtbf`] with a fixed repair time per failure.
    pub fn mtbf_with_repair(
        mut self,
        mtbf_secs: f64,
        horizon_secs: f64,
        repair_secs: f64,
        n_cpus: usize,
        seed: u64,
    ) -> Self {
        self.sample_mtbf(mtbf_secs, horizon_secs, repair_secs, n_cpus, seed);
        self
    }

    fn sample_mtbf(
        &mut self,
        mtbf_secs: f64,
        horizon_secs: f64,
        repair_secs: f64,
        n_cpus: usize,
        seed: u64,
    ) {
        assert!(mtbf_secs > 0.0, "MTBF must be positive");
        assert!(horizon_secs > 0.0, "horizon must be positive");
        let mut root = SimRng::new(seed ^ 0xFA17);
        for cpu in 0..n_cpus {
            let mut rng = root.fork(cpu as u64);
            let mut t = rng.exponential(mtbf_secs);
            while t < horizon_secs {
                let recover_at = if repair_secs > 0.0 {
                    Some(SimTime::from_secs(t + repair_secs))
                } else {
                    None
                };
                self.cpu_faults.push(CpuFault {
                    cpu: CpuId(cpu as u16),
                    at: SimTime::from_secs(t),
                    recover_at,
                });
                if repair_secs == 0.0 {
                    break; // permanent: one failure per CPU is all there is
                }
                // Next failure can only happen once the CPU is back.
                t = t + repair_secs + rng.exponential(mtbf_secs);
            }
        }
    }

    /// Parses the `--faults` plan grammar (see the module docs).
    ///
    /// `n_cpus` bounds the CPU ids a plan may target and sizes MTBF
    /// sampling.
    ///
    /// # Errors
    ///
    /// Returns a human-readable diagnostic naming the offending element.
    pub fn parse(input: &str, n_cpus: usize) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for raw in input.split(';') {
            let element = raw.trim();
            if element.is_empty() {
                continue;
            }
            if let Some(rest) = element.strip_prefix("cpu") {
                plan = parse_cpu_fault(element, rest, n_cpus, plan)?;
            } else if let Some(rest) = element.strip_prefix("job") {
                plan = parse_job_fault(element, rest, plan)?;
            } else if element.starts_with("mtbf=") {
                plan = parse_mtbf(element, n_cpus, plan)?;
            } else if element.starts_with("retry=") {
                plan = parse_retry(element, plan)?;
            } else {
                return Err(format!(
                    "unknown fault element {element:?}; expected cpu<N>@<t>, job<N>@<t>, \
                     mtbf=..., or retry=..."
                ));
            }
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for cf in &self.cpu_faults {
            match cf.recover_at {
                Some(r) => parts.push(format!(
                    "cpu{}@{}:recover@{}",
                    cf.cpu.index(),
                    cf.at.as_secs(),
                    r.as_secs()
                )),
                None => parts.push(format!("cpu{}@{}", cf.cpu.index(), cf.at.as_secs())),
            }
        }
        for jf in &self.job_faults {
            parts.push(format!("job{}@{}", jf.job.index(), jf.at.as_secs()));
        }
        if let Some(r) = &self.retry {
            parts.push(format!(
                "retry={},backoff={},factor={}",
                r.max_retries,
                r.backoff_base.as_secs(),
                r.backoff_factor
            ));
        }
        write!(f, "{}", parts.join(";"))
    }
}

fn parse_secs(element: &str, field: &str, value: &str) -> Result<f64, String> {
    let secs: f64 = value
        .parse()
        .map_err(|_| format!("{element:?}: {field} expects seconds, got {value:?}"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("{element:?}: {field} must be non-negative"));
    }
    Ok(secs)
}

fn parse_cpu_fault(
    element: &str,
    rest: &str,
    n_cpus: usize,
    mut plan: FaultPlan,
) -> Result<FaultPlan, String> {
    let (id_str, when) = rest
        .split_once('@')
        .ok_or_else(|| format!("{element:?}: expected cpu<N>@<secs>"))?;
    let id: usize = id_str
        .parse()
        .map_err(|_| format!("{element:?}: bad CPU id {id_str:?}"))?;
    if id >= n_cpus {
        return Err(format!(
            "{element:?}: cpu{id} out of range for a {n_cpus}-CPU machine"
        ));
    }
    let (at_str, recover) = match when.split_once(":recover@") {
        Some((a, r)) => (a, Some(r)),
        None => (when, None),
    };
    let at = parse_secs(element, "failure time", at_str)?;
    let fault = match recover {
        Some(r_str) => {
            let r = parse_secs(element, "recovery time", r_str)?;
            if r <= at {
                return Err(format!("{element:?}: recovery must follow the failure"));
            }
            CpuFault {
                cpu: CpuId(id as u16),
                at: SimTime::from_secs(at),
                recover_at: Some(SimTime::from_secs(r)),
            }
        }
        None => CpuFault {
            cpu: CpuId(id as u16),
            at: SimTime::from_secs(at),
            recover_at: None,
        },
    };
    plan.cpu_faults.push(fault);
    Ok(plan)
}

fn parse_job_fault(element: &str, rest: &str, mut plan: FaultPlan) -> Result<FaultPlan, String> {
    let (id_str, at_str) = rest
        .split_once('@')
        .ok_or_else(|| format!("{element:?}: expected job<N>@<secs>"))?;
    let id: u32 = id_str
        .parse()
        .map_err(|_| format!("{element:?}: bad job id {id_str:?}"))?;
    let at = parse_secs(element, "crash time", at_str)?;
    plan.job_faults.push(JobFault {
        job: JobId(id),
        at: SimTime::from_secs(at),
    });
    Ok(plan)
}

fn key_values(element: &str) -> impl Iterator<Item = (&str, &str)> {
    element
        .split(',')
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.trim(), v.trim()))
}

fn parse_mtbf(element: &str, n_cpus: usize, plan: FaultPlan) -> Result<FaultPlan, String> {
    let mut mtbf = None;
    let mut horizon = None;
    let mut repair = 0.0;
    let mut seed = 0u64;
    for (k, v) in key_values(element) {
        match k {
            "mtbf" => mtbf = Some(parse_secs(element, "mtbf", v)?),
            "horizon" => horizon = Some(parse_secs(element, "horizon", v)?),
            "repair" => repair = parse_secs(element, "repair", v)?,
            "seed" => {
                seed = v
                    .parse()
                    .map_err(|_| format!("{element:?}: seed expects an integer, got {v:?}"))?
            }
            other => return Err(format!("{element:?}: unknown mtbf field {other:?}")),
        }
    }
    let mtbf = mtbf
        .filter(|&m| m > 0.0)
        .ok_or_else(|| format!("{element:?}: mtbf=<secs> must be present and positive"))?;
    let horizon = horizon
        .filter(|&h| h > 0.0)
        .ok_or_else(|| format!("{element:?}: horizon=<secs> must be present and positive"))?;
    Ok(if repair > 0.0 {
        plan.mtbf_with_repair(mtbf, horizon, repair, n_cpus, seed)
    } else {
        plan.mtbf(mtbf, horizon, n_cpus, seed)
    })
}

fn parse_retry(element: &str, mut plan: FaultPlan) -> Result<FaultPlan, String> {
    let mut retry = RetryPolicy::default();
    for (k, v) in key_values(element) {
        match k {
            "retry" => {
                retry.max_retries = v
                    .parse()
                    .map_err(|_| format!("{element:?}: retry expects an integer, got {v:?}"))?
            }
            "backoff" => {
                retry.backoff_base = SimDuration::from_secs(parse_secs(element, "backoff", v)?)
            }
            "factor" => {
                let f: f64 = v
                    .parse()
                    .map_err(|_| format!("{element:?}: factor expects a number, got {v:?}"))?;
                if !f.is_finite() || f < 1.0 {
                    return Err(format!("{element:?}: factor must be at least 1"));
                }
                retry.backoff_factor = f;
            }
            other => return Err(format!("{element:?}: unknown retry field {other:?}")),
        }
    }
    plan.retry = Some(retry);
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.retry.is_none());
        assert_eq!(FaultPlan::parse("", 60).unwrap(), plan);
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::none()
            .fail_cpu_at(CpuId(3), 100.0)
            .fail_cpu_between(CpuId(5), 50.0, 250.0)
            .fail_job_at(JobId(2), 75.0)
            .with_retry(RetryPolicy::default());
        assert_eq!(plan.cpu_faults.len(), 2);
        assert_eq!(plan.job_faults.len(), 1);
        assert_eq!(
            plan.cpu_faults[1].recover_at,
            Some(SimTime::from_secs(250.0))
        );
        assert!(plan.retry.is_some());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy {
            max_retries: 3,
            backoff_base: SimDuration::from_secs(10.0),
            backoff_factor: 2.0,
        };
        assert_eq!(r.backoff_for(1).as_secs(), 10.0);
        assert_eq!(r.backoff_for(2).as_secs(), 20.0);
        assert_eq!(r.backoff_for(3).as_secs(), 40.0);
    }

    #[test]
    fn mtbf_is_deterministic_and_bounded() {
        let a = FaultPlan::none().mtbf(500.0, 1000.0, 16, 7);
        let b = FaultPlan::none().mtbf(500.0, 1000.0, 16, 7);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty(), "16 CPUs over 2 MTBFs should see failures");
        for f in &a.cpu_faults {
            assert!(f.at.as_secs() < 1000.0);
            assert!(f.recover_at.is_none());
            assert!(f.cpu.index() < 16);
        }
        let c = FaultPlan::none().mtbf(500.0, 1000.0, 16, 8);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn mtbf_with_repair_recovers_and_can_refail() {
        let plan = FaultPlan::none().mtbf_with_repair(100.0, 2000.0, 50.0, 4, 3);
        assert!(!plan.is_empty());
        for f in &plan.cpu_faults {
            let r = f.recover_at.expect("repairing plan always recovers");
            assert!((r.since(f.at).as_secs() - 50.0).abs() < 1e-9);
        }
        // With MTBF far below the horizon some CPU fails more than once.
        let per_cpu_max = (0..4u16)
            .map(|c| plan.cpu_faults.iter().filter(|f| f.cpu == CpuId(c)).count())
            .max()
            .unwrap();
        assert!(per_cpu_max > 1, "expected repeat failures, got {plan:?}");
    }

    #[test]
    fn parse_targeted_elements() {
        let plan = FaultPlan::parse("cpu3@100:recover@400; job2@250 ;cpu7@10", 60).unwrap();
        assert_eq!(plan.cpu_faults.len(), 2);
        assert_eq!(plan.cpu_faults[0].cpu, CpuId(3));
        assert_eq!(
            plan.cpu_faults[0].recover_at,
            Some(SimTime::from_secs(400.0))
        );
        assert_eq!(plan.cpu_faults[1].recover_at, None);
        assert_eq!(
            plan.job_faults,
            vec![JobFault {
                job: JobId(2),
                at: SimTime::from_secs(250.0)
            }]
        );
    }

    #[test]
    fn parse_mtbf_and_retry() {
        let plan = FaultPlan::parse(
            "mtbf=400,horizon=1000,repair=150,seed=7;retry=2,backoff=30",
            8,
        )
        .unwrap();
        assert!(!plan.cpu_faults.is_empty());
        let retry = plan.retry.unwrap();
        assert_eq!(retry.max_retries, 2);
        assert_eq!(retry.backoff_base.as_secs(), 30.0);
        assert_eq!(retry.backoff_factor, 2.0);
        // Same string parses to the same plan (determinism end to end).
        let again = FaultPlan::parse(
            "mtbf=400,horizon=1000,repair=150,seed=7;retry=2,backoff=30",
            8,
        )
        .unwrap();
        assert_eq!(plan, again);
    }

    #[test]
    fn parse_diagnostics_name_the_element() {
        for (input, needle) in [
            ("cpu99@10", "out of range"),
            ("cpu3", "expected cpu<N>@<secs>"),
            ("cpuX@10", "bad CPU id"),
            ("cpu3@-5", "non-negative"),
            ("cpu3@100:recover@50", "recovery must follow"),
            ("jobX@10", "bad job id"),
            ("mtbf=0,horizon=10", "positive"),
            ("mtbf=10", "horizon"),
            ("retry=1,factor=0.5", "at least 1"),
            ("frob", "unknown fault element"),
            ("mtbf=5,horizon=10,bogus=1", "unknown mtbf field"),
        ] {
            let err = FaultPlan::parse(input, 60).unwrap_err();
            assert!(err.contains(needle), "{input:?} -> {err:?}");
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        let plan = FaultPlan::parse(
            "cpu3@100:recover@400;cpu7@10;job2@250;retry=3,backoff=15,factor=1.5",
            60,
        )
        .unwrap();
        let reparsed = FaultPlan::parse(&plan.to_string(), 60).unwrap();
        assert_eq!(plan, reparsed);
    }
}
