//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the subset of criterion's harness API its benches
//! use: `Criterion::benchmark_group`, `bench_function`, `sample_size`,
//! `b.iter(..)`, and the `criterion_group!`/`criterion_main!` macros.
//! Timing is a simple adaptive loop (grow the batch until it runs long
//! enough to time reliably, then report the mean); there is no warmup
//! modelling, outlier analysis, or HTML report.

use std::time::{Duration, Instant};

/// How long each measurement aims to run.
const TARGET_MEASURE: Duration = Duration::from_millis(200);

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&name.into(), f);
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup {
    prefix: String,
}

impl BenchmarkGroup {
    /// Tuning knob accepted for criterion compatibility; the adaptive
    /// timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measures one closure under `prefix/name`.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name.into());
        run_benchmark(&full, f);
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Hands the measured closure its iteration loop.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, adaptively growing the batch size until the measurement
    /// is long enough to be meaningful.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup / calibration: find a batch that runs ≥ ~10 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(10) || batch >= (1 << 24) {
                // Scale to the measurement target and time for real.
                let scale = (TARGET_MEASURE.as_nanos() / took.as_nanos().max(1)).max(1);
                let iters = batch.saturating_mul(scale as u64);
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                self.elapsed = start.elapsed();
                self.iters = iters;
                return;
            }
            batch *= 4;
        }
    }
}

fn run_benchmark(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<50} (no measurement)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let (value, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else {
        (ns / 1_000_000.0, "ms")
    };
    println!(
        "{name:<50} time: {value:>10.2} {unit}/iter ({} iters)",
        b.iters
    );
}

/// Re-export so `use criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 0u64);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
