//! Two concurrent applications on real threads, one resource manager.
//!
//! The Fig. 1 picture with two applications: each runs its iterative region
//! on its own crew in its own thread; both report to a shared `LocalRm`
//! running PDPA, which divides the machine's workers between them by
//! measured efficiency.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use pdpa_core::Pdpa;
use pdpa_nthlib::{Crew, CurveKernel, LocalRm, Task};
use pdpa_perf::{SelfAnalyzer, SelfAnalyzerConfig};
use pdpa_sim::SimDuration;

/// Runs one region to completion against the shared manager; returns the
/// final allocation.
fn drive_region(
    rm: &Arc<Mutex<LocalRm>>,
    crew: &Crew,
    task: Arc<dyn Task>,
    request: usize,
    iterations: u32,
) -> usize {
    let job = rm.lock().unwrap().register(request);
    let mut analyzer = SelfAnalyzer::new(SelfAnalyzerConfig::default());
    let mut last = 1;
    for _ in 0..iterations {
        let granted = rm.lock().unwrap().allocation(job).max(1);
        let workers = analyzer
            .effective_procs(granted)
            .clamp(1, crew.max_workers());
        let wall = crew.run(task.clone(), workers);
        if let Some(sample) =
            analyzer.record_iteration(workers, SimDuration::from_secs(wall.as_secs_f64()))
        {
            last = rm.lock().unwrap().report(job, sample);
        }
    }
    rm.lock().unwrap().complete(job);
    last
}

#[test]
fn pdpa_divides_real_workers_by_measured_efficiency() {
    // An 8-worker machine; both applications request 6.
    let rm = Arc::new(Mutex::new(LocalRm::new(Box::new(Pdpa::paper_default()), 8)));

    // Application A scales linearly; application B saturates at ≈ 2.
    let scalable = Arc::new(CurveKernel::new(Duration::from_millis(120), |n| n as f64));
    let saturating = Arc::new(CurveKernel::new(Duration::from_millis(120), |n| match n {
        0 => 0.0,
        1 => 1.0,
        2 => 1.8,
        _ => 2.0,
    }));

    let rm_a = Arc::clone(&rm);
    let a = std::thread::spawn(move || {
        let crew = Crew::new(8);
        drive_region(&rm_a, &crew, scalable, 6, 14)
    });
    let rm_b = Arc::clone(&rm);
    let b = std::thread::spawn(move || {
        let crew = Crew::new(8);
        drive_region(&rm_b, &crew, saturating, 6, 14)
    });
    let alloc_a = a.join().expect("region A");
    let alloc_b = b.join().expect("region B");

    // The saturating application must end up small; the scalable one keeps
    // more workers. (Generous bounds: wall-clock noise on a loaded CI box.)
    assert!(alloc_b <= 3, "saturating region held {alloc_b} workers");
    assert!(
        alloc_a >= alloc_b,
        "scalable {alloc_a} vs saturating {alloc_b}"
    );
}
