//! A resizable crew of persistent worker threads.
//!
//! NthLib keeps its kernel threads alive and reacts to allocation changes;
//! the crew does the same: `max_workers` threads are spawned once and park
//! on a condition variable. Each call to [`Crew::run`] wakes the first
//! `active` workers for one parallel iteration and blocks until all of them
//! finish. Malleability is free: `active` may differ on every call.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::kernels::Task;

/// Shared state between the coordinator and the workers.
struct Shared {
    state: Mutex<State>,
    go: Condvar,
    done: Condvar,
}

struct State {
    /// Bumped for each iteration; workers run when they see a new value.
    generation: u64,
    /// Workers participating in the current iteration.
    active: usize,
    /// The task of the current iteration.
    task: Option<Arc<dyn Task>>,
    /// Workers that finished the current iteration.
    finished: usize,
    shutdown: bool,
}

/// A crew of persistent, parkable worker threads.
pub struct Crew {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Crew {
    /// Spawns `max_workers` parked workers.
    ///
    /// # Panics
    ///
    /// Panics if `max_workers` is zero.
    pub fn new(max_workers: usize) -> Self {
        assert!(max_workers > 0, "crew needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                generation: 0,
                active: 0,
                task: None,
                finished: 0,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..max_workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("crew-worker-{index}"))
                    .spawn(move || worker_loop(index, &shared))
                    .expect("spawn crew worker")
            })
            .collect();
        Crew { shared, handles }
    }

    /// Maximum workers available.
    pub fn max_workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs one parallel iteration of `task` on `active` workers and returns
    /// the measured wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics if `active` is zero or exceeds `max_workers`.
    pub fn run(&self, task: Arc<dyn Task>, active: usize) -> Duration {
        assert!(active >= 1, "an iteration needs a worker");
        assert!(
            active <= self.max_workers(),
            "active ({active}) exceeds crew size ({})",
            self.max_workers()
        );
        let t0 = Instant::now();
        {
            let mut st = self.shared.state.lock().expect("crew lock");
            st.task = Some(task);
            st.active = active;
            st.finished = 0;
            st.generation += 1;
            self.shared.go.notify_all();
            while st.finished < st.active {
                st = self.shared.done.wait(st).expect("crew wait");
            }
            st.task = None;
        }
        t0.elapsed()
    }
}

impl Drop for Crew {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("crew lock");
            st.shutdown = true;
            self.shared.go.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The body of one worker thread: wait for a generation bump, run the task
/// if within the active set, report completion, repeat.
fn worker_loop(index: usize, shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let (task, active, generation) = {
            let mut st = shared.state.lock().expect("crew lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    break;
                }
                st = shared.go.wait(st).expect("crew wait");
            }
            seen = st.generation;
            (st.task.clone(), st.active, st.generation)
        };
        // Workers beyond the active set skip the iteration (they are the
        // "preempted threads" NthLib parks when processors are taken away).
        if index < active {
            if let Some(task) = task {
                task.run(index, active);
            }
            let mut st = shared.state.lock().expect("crew lock");
            // Guard against a lost generation (cannot happen while `run`
            // holds the protocol, but keeps the invariant explicit).
            if st.generation == generation {
                st.finished += 1;
                if st.finished >= st.active {
                    shared.done.notify_all();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{SleepKernel, SpinKernel};
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counter(AtomicUsize);

    impl Task for Counter {
        fn run(&self, _index: usize, _active: usize) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn runs_exactly_active_workers() {
        let crew = Crew::new(8);
        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        crew.run(counter.clone(), 5);
        assert_eq!(counter.0.load(Ordering::SeqCst), 5);
        crew.run(counter.clone(), 2);
        assert_eq!(counter.0.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn resize_between_iterations_is_free() {
        let crew = Crew::new(4);
        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        for active in [1, 4, 2, 3, 1] {
            crew.run(counter.clone(), active);
        }
        assert_eq!(counter.0.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn sleep_kernel_speeds_up_with_workers() {
        let crew = Crew::new(4);
        let kernel = Arc::new(SleepKernel::new(Duration::from_millis(240)));
        let t1 = crew.run(kernel.clone(), 1);
        let t4 = crew.run(kernel, 4);
        // 240 ms vs 60 ms; allow generous scheduling slack.
        assert!(
            t1.as_secs_f64() > 2.0 * t4.as_secs_f64(),
            "t1 {t1:?} vs t4 {t4:?}"
        );
    }

    #[test]
    fn spin_kernel_runs_on_crew() {
        let crew = Crew::new(2);
        let kernel = Arc::new(SpinKernel::new(10_000));
        let took = crew.run(kernel, 2);
        assert!(took < Duration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "exceeds crew size")]
    fn oversized_iteration_is_rejected() {
        let crew = Crew::new(2);
        let kernel = Arc::new(SleepKernel::new(Duration::from_millis(1)));
        crew.run(kernel, 3);
    }

    #[test]
    fn drop_joins_workers() {
        let crew = Crew::new(3);
        let kernel = Arc::new(SleepKernel::new(Duration::from_millis(1)));
        crew.run(kernel, 3);
        drop(crew); // must not hang
    }
}
