//! Work kernels executed by the crew.

use std::time::Duration;

/// A parallel task: called once per active worker per iteration.
///
/// Implementations receive the worker's index and the number of active
/// workers and must block until that worker's share of the iteration is
/// done.
pub trait Task: Send + Sync {
    /// Executes worker `index` of `active` for one iteration.
    fn run(&self, index: usize, active: usize);
}

/// Perfectly scalable sleep-based work: the iteration represents
/// `total` of sequential "work", divided evenly — each worker sleeps
/// `total / active`. Wall-clock speedup is exactly linear, independent of
/// the physical core count.
#[derive(Clone, Copy, Debug)]
pub struct SleepKernel {
    /// Sequential duration of one iteration.
    pub total: Duration,
}

impl SleepKernel {
    /// One iteration worth `total` of sequential work.
    pub fn new(total: Duration) -> Self {
        SleepKernel { total }
    }
}

impl Task for SleepKernel {
    fn run(&self, _index: usize, active: usize) {
        std::thread::sleep(self.total / active.max(1) as u32);
    }
}

/// Sleep-based work following an arbitrary speedup curve: with `n` active
/// workers every worker sleeps `seq / curve(n)`, so the measured wall-clock
/// speedup *is* `curve(n)`. This lets integration tests drive PDPA with any
/// scalability shape on any machine.
pub struct CurveKernel {
    /// Sequential duration of one iteration.
    pub seq: Duration,
    /// The speedup curve to emulate.
    pub curve: Box<dyn Fn(usize) -> f64 + Send + Sync>,
}

impl CurveKernel {
    /// Creates a kernel emulating `curve`.
    pub fn new(seq: Duration, curve: impl Fn(usize) -> f64 + Send + Sync + 'static) -> Self {
        CurveKernel {
            seq,
            curve: Box::new(curve),
        }
    }
}

impl Task for CurveKernel {
    fn run(&self, _index: usize, active: usize) {
        let s = (self.curve)(active.max(1)).max(1e-6);
        let wall = self.seq.as_secs_f64() / s;
        std::thread::sleep(Duration::from_secs_f64(wall));
    }
}

/// CPU-burning work for real multicore machines: each worker spins through
/// its share of `total_units` of arithmetic. Scales with physical cores —
/// do not assert speedups with this kernel on unknown hardware.
#[derive(Clone, Copy, Debug)]
pub struct SpinKernel {
    /// Total arithmetic units of one iteration.
    pub total_units: u64,
}

impl SpinKernel {
    /// One iteration worth `total_units` of spinning.
    pub fn new(total_units: u64) -> Self {
        SpinKernel { total_units }
    }
}

impl Task for SpinKernel {
    fn run(&self, index: usize, active: usize) {
        let share = self.total_units / active.max(1) as u64;
        // A data dependency the optimizer cannot remove.
        let mut acc = index as u64 + 1;
        for i in 0..share {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn sleep_kernel_divides_work() {
        // Generous bounds: the test machine may be a loaded single core,
        // and sleeps overshoot under contention.
        let k = SleepKernel::new(Duration::from_millis(200));
        let t0 = Instant::now();
        k.run(0, 4);
        let took = t0.elapsed();
        assert!(took >= Duration::from_millis(45), "slept {took:?}");
        assert!(took < Duration::from_millis(190), "slept {took:?}");
    }

    #[test]
    fn curve_kernel_follows_curve() {
        let k = CurveKernel::new(Duration::from_millis(150), |n| (n as f64).sqrt());
        let t0 = Instant::now();
        k.run(0, 9); // speedup 3 → ~50 ms
        let took = t0.elapsed().as_millis();
        assert!((45..140).contains(&took), "took {took} ms");
    }

    #[test]
    fn spin_kernel_terminates_and_splits() {
        let k = SpinKernel::new(100_000);
        k.run(0, 1);
        k.run(3, 8);
    }
}
