//! A malleable parallel runtime on real threads — the NthLib stand-in.
//!
//! The paper's NthLib "implements the policies and mechanisms needed for the
//! application-level scheduling … it requests for processors and reacts to
//! changes in the number of processors allocated to the application" (§3.1).
//! This crate demonstrates the same loop end-to-end on actual
//! `std::thread` workers with wall-clock measurements:
//!
//! 1. a [`Crew`] of persistent parked worker threads executes one parallel
//!    iteration at a time with however many workers the scheduler granted;
//! 2. an [`IterativeRegion`] runs an application's outer loop, timing each
//!    iteration and feeding the [`pdpa_perf::SelfAnalyzer`];
//! 3. a [`LocalRm`] applies any [`pdpa_policies::SchedulingPolicy`] —
//!    PDPA included — to those live measurements and resizes the crew
//!    between iterations (malleability).
//!
//! Because this test machine may have a single CPU, the bundled
//! [`kernels`] emulate parallel work by *sleeping*: a kernel that sleeps
//! `T/S(n)` per worker exhibits exactly the speedup curve `S` in wall-clock
//! time regardless of the physical core count, which exercises every code
//! path of the measurement/decision loop with honest timings. A spinning
//! kernel is provided for use on real multicore hardware.

pub mod crew;
pub mod kernels;
pub mod region;
pub mod rm;

pub use crew::Crew;
pub use kernels::{CurveKernel, SleepKernel, SpinKernel, Task};
pub use region::{IterationOutcome, IterativeRegion};
pub use rm::LocalRm;
