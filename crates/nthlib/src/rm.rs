//! An in-process resource manager for real-thread applications.
//!
//! [`LocalRm`] is the NANOS RM scaled down to a single address space: it
//! holds a [`SchedulingPolicy`], tracks the worker allocation of each
//! registered application, and applies the policy's decisions to live
//! wall-clock performance reports. The `pdpa-engine` crate does the same
//! job for simulated workloads; this one does it for [`crate::Crew`]s.

use std::time::Instant;

use pdpa_perf::PerfSample;
use pdpa_policies::{JobView, PolicyCtx, SchedulingPolicy};
use pdpa_sim::{JobId, SimTime};

/// Tracked state of one registered application.
#[derive(Clone, Debug)]
struct LocalJob {
    id: JobId,
    request: usize,
    allocated: usize,
    last_sample: Option<PerfSample>,
}

/// The in-process resource manager.
///
/// The policy box is `Send` so the manager can sit behind a `Mutex` shared
/// by several application threads (see the `multi_region_threads` example).
pub struct LocalRm {
    policy: Box<dyn SchedulingPolicy + Send>,
    total_workers: usize,
    jobs: Vec<LocalJob>,
    next_id: u32,
    epoch: Instant,
}

impl LocalRm {
    /// Creates a resource manager for a machine of `total_workers` workers.
    ///
    /// # Panics
    ///
    /// Panics if `total_workers` is zero.
    pub fn new(policy: Box<dyn SchedulingPolicy + Send>, total_workers: usize) -> Self {
        assert!(total_workers > 0, "need at least one worker");
        LocalRm {
            policy,
            total_workers,
            jobs: Vec::new(),
            next_id: 0,
            epoch: Instant::now(),
        }
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Workers not allocated to any application.
    pub fn free_workers(&self) -> usize {
        let used: usize = self.jobs.iter().map(|j| j.allocated).sum();
        self.total_workers.saturating_sub(used)
    }

    /// Registers an application requesting `request` workers; returns its id
    /// and lets the policy assign the initial allocation.
    pub fn register(&mut self, request: usize) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.push(LocalJob {
            id,
            request,
            allocated: 0,
            last_sample: None,
        });
        let decisions = {
            let views = self.views();
            let ctx = self.ctx(&views);
            self.policy.on_job_arrival(&ctx, id)
        };
        self.apply(decisions);
        id
    }

    /// The current allocation of an application (0 if unknown).
    pub fn allocation(&self, job: JobId) -> usize {
        self.jobs
            .iter()
            .find(|j| j.id == job)
            .map_or(0, |j| j.allocated)
    }

    /// Feeds a performance report; returns the (possibly changed)
    /// allocation.
    pub fn report(&mut self, job: JobId, sample: PerfSample) -> usize {
        if let Some(j) = self.jobs.iter_mut().find(|j| j.id == job) {
            j.last_sample = Some(sample);
        }
        let decisions = {
            let views = self.views();
            let ctx = self.ctx(&views);
            self.policy.on_performance_report(&ctx, job, sample)
        };
        self.apply(decisions);
        self.allocation(job)
    }

    /// Unregisters a completed application.
    pub fn complete(&mut self, job: JobId) {
        self.jobs.retain(|j| j.id != job);
        let decisions = {
            let views = self.views();
            let ctx = self.ctx(&views);
            self.policy.on_job_completion(&ctx, job)
        };
        self.apply(decisions);
    }

    fn views(&self) -> Vec<JobView> {
        self.jobs
            .iter()
            .map(|j| JobView {
                id: j.id,
                request: j.request,
                allocated: j.allocated,
                last_sample: j.last_sample,
                // The native runtime has no iteration model to estimate
                // remaining work from.
                remaining_secs: 0.0,
            })
            .collect()
    }

    fn ctx<'a>(&self, views: &'a [JobView]) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::from_secs(self.epoch.elapsed().as_secs_f64()),
            total_cpus: self.total_workers,
            free_cpus: self.free_workers(),
            jobs: views,
            queued_jobs: 0,
            next_request: None,
        }
    }

    fn apply(&mut self, decisions: pdpa_policies::Decisions) {
        for (id, target) in decisions.allocations {
            if let Some(j) = self.jobs.iter_mut().find(|j| j.id == id) {
                j.allocated = target.clamp(1, j.request.min(self.total_workers));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_core::Pdpa;
    use pdpa_policies::Equipartition;
    use pdpa_sim::SimDuration;

    fn sample(procs: usize, speedup: f64) -> PerfSample {
        PerfSample {
            procs,
            speedup,
            efficiency: speedup / procs as f64,
            iter_time: SimDuration::from_secs(0.01),
            iteration: 5,
        }
    }

    #[test]
    fn register_allocates_under_pdpa() {
        let mut rm = LocalRm::new(Box::new(Pdpa::paper_default()), 8);
        let job = rm.register(8);
        assert_eq!(rm.allocation(job), 8, "min(request, free)");
        assert_eq!(rm.free_workers(), 0);
    }

    #[test]
    fn bad_reports_shrink_the_allocation() {
        let mut rm = LocalRm::new(Box::new(Pdpa::paper_default()), 8);
        let job = rm.register(8);
        // Two confirming reports of terrible efficiency.
        rm.report(job, sample(8, 2.0));
        let alloc = rm.report(job, sample(8, 2.0));
        assert!(alloc < 8, "PDPA shrinks a bad performer, got {alloc}");
    }

    #[test]
    fn equipartition_splits_two_jobs() {
        let mut rm = LocalRm::new(Box::new(Equipartition::new(4)), 8);
        let a = rm.register(8);
        let b = rm.register(8);
        assert_eq!(rm.allocation(a), 4);
        assert_eq!(rm.allocation(b), 4);
        rm.complete(a);
        assert_eq!(rm.allocation(b), 8, "survivor reclaims the machine");
    }

    #[test]
    fn allocations_never_exceed_machine_or_request() {
        let mut rm = LocalRm::new(Box::new(Pdpa::paper_default()), 4);
        let job = rm.register(16);
        assert!(rm.allocation(job) <= 4);
    }
}
