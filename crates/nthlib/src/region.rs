//! Iterative parallel regions on the crew.
//!
//! An [`IterativeRegion`] is the runtime shape the SelfAnalyzer exploits: a
//! sequential outer loop whose body runs in parallel. Each iteration runs on
//! however many workers the resource manager currently grants, is timed with
//! a real clock, and the resulting estimate is fed back — closing the exact
//! loop of Fig. 1 (NthLib ↔ SelfAnalyzer ↔ NANOS RM) on real threads.

use std::sync::Arc;
use std::time::Duration;

use pdpa_perf::{PerfSample, SelfAnalyzer};
use pdpa_sim::{JobId, SimDuration};

use crate::crew::Crew;
use crate::kernels::Task;
use crate::rm::LocalRm;

/// What one iteration did.
#[derive(Clone, Copy, Debug)]
pub struct IterationOutcome {
    /// Iteration index (0-based).
    pub index: u32,
    /// Workers the iteration ran on.
    pub workers: usize,
    /// Measured wall-clock time.
    pub wall: Duration,
    /// The SelfAnalyzer's estimate, once past the baseline phase.
    pub estimate: Option<PerfSample>,
}

/// An iterative parallel region bound to a crew and a resource manager.
pub struct IterativeRegion {
    analyzer: SelfAnalyzer,
    job: JobId,
}

impl IterativeRegion {
    /// Registers the region with the resource manager as an application
    /// requesting `request` workers.
    pub fn register(rm: &mut LocalRm, request: usize, analyzer: SelfAnalyzer) -> Self {
        let job = rm.register(request);
        IterativeRegion { analyzer, job }
    }

    /// The region's job id at the resource manager.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// Runs `iterations` iterations of `task` on `crew`, reporting to `rm`
    /// after each one. Returns the per-iteration outcomes.
    pub fn run(
        &mut self,
        crew: &Crew,
        rm: &mut LocalRm,
        task: Arc<dyn Task>,
        iterations: u32,
    ) -> Vec<IterationOutcome> {
        let mut outcomes = Vec::with_capacity(iterations as usize);
        for index in 0..iterations {
            let granted = rm.allocation(self.job).clamp(1, crew.max_workers());
            let workers = self.analyzer.effective_procs(granted).max(1);
            let wall = crew.run(task.clone(), workers);
            let estimate = self
                .analyzer
                .record_iteration(workers, SimDuration::from_secs(wall.as_secs_f64()));
            if let Some(sample) = estimate {
                rm.report(self.job, sample);
            }
            outcomes.push(IterationOutcome {
                index,
                workers,
                wall,
                estimate,
            });
        }
        rm.complete(self.job);
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::CurveKernel;
    use pdpa_core::Pdpa;
    use pdpa_perf::SelfAnalyzerConfig;

    /// A saturating curve with its 0.7-efficiency knee near 4 workers.
    fn kneed_curve(n: usize) -> f64 {
        match n {
            0 => 0.0,
            1 => 1.0,
            2 => 1.9,
            3 => 2.7,
            4 => 3.1,
            5 => 3.3,
            6 => 3.4,
            _ => 3.5,
        }
    }

    #[test]
    fn pdpa_converges_to_the_knee_on_real_threads() {
        let crew = Crew::new(8);
        let mut rm = LocalRm::new(Box::new(Pdpa::paper_default()), 8);
        let analyzer = SelfAnalyzer::new(SelfAnalyzerConfig::default());
        let mut region = IterativeRegion::register(&mut rm, 8, analyzer);
        let task = Arc::new(CurveKernel::new(Duration::from_millis(150), kneed_curve));
        let outcomes = region.run(&crew, &mut rm, task, 14);

        assert_eq!(outcomes.len(), 14);
        // Baseline iterations run restrained.
        assert_eq!(outcomes[0].workers, 2);
        assert!(outcomes[0].estimate.is_none());
        // The search must walk down from 8 (efficiency ≈ 0.43) toward the
        // knee; the final allocation sits well below the request.
        let last = outcomes.last().unwrap();
        assert!(
            (2..=6).contains(&last.workers),
            "settled at {} workers",
            last.workers
        );
    }

    #[test]
    fn estimates_track_the_emulated_curve() {
        let crew = Crew::new(4);
        let mut rm = LocalRm::new(Box::new(Pdpa::paper_default()), 4);
        let analyzer = SelfAnalyzer::new(SelfAnalyzerConfig::default());
        let mut region = IterativeRegion::register(&mut rm, 4, analyzer);
        // Perfectly linear curve: estimates should hover near efficiency 1.
        let task = Arc::new(CurveKernel::new(Duration::from_millis(120), |n| n as f64));
        let outcomes = region.run(&crew, &mut rm, task, 8);
        let estimates: Vec<PerfSample> = outcomes.iter().filter_map(|o| o.estimate).collect();
        assert!(!estimates.is_empty());
        // Individual sleeps can overshoot badly on a loaded single-core CI
        // box, so bound the *median* estimate tightly and each sample only
        // loosely.
        let mut effs: Vec<f64> = estimates.iter().map(|e| e.efficiency).collect();
        effs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = effs[effs.len() / 2];
        assert!(
            median > 0.55,
            "median efficiency {median:.2} for a linear kernel"
        );
        for e in &estimates {
            assert!(
                e.efficiency > 0.25,
                "wild misestimate: eff {} at {} procs",
                e.efficiency,
                e.procs
            );
        }
    }
}
