//! The daemon's owned observer: one event, three destinations.
//!
//! The batch CLI composes borrowing observers (`TapObserver` wrapping a
//! `RecordingObserver`), which works because a batch run's observer chain
//! outlives exactly one `Engine::run` call. A session owns its observer
//! for the life of the daemon, so `pdpad` uses one owned observer that
//! fans each published event out to:
//!
//! 1. the [`LiveTap`] (status/progress/tail queries),
//! 2. the [`RunRegistry`] (per-job lifecycle for `jobs`/`job`),
//! 3. an optional decision-stream file, in the exact
//!    `pdpa_obs::TimedEvent` line grammar a batch replay records.
//!
//! The stream writer carries the snapshot/restore seq contract: the
//! observer numbers every event from a shared counter, and a restored
//! daemon suppresses *writing* (never counting) events below the
//! snapshot's `events_published` mark. Journal replay regenerates the
//! pre-snapshot events — identical, but already durable in the previous
//! process's stream file — so the continuation file starts at exactly the
//! first unwritten seq, and concatenating the two files reproduces the
//! uninterrupted stream byte for byte. `tests/snapshot_restore.rs` pins
//! that.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pdpa_obs::{ObsEvent, Observer, TimedEvent};
use pdpa_sim::SimTime;
use pdpa_watch::LiveTap;

use crate::registry::RunRegistry;

/// Shared handle to the decision-stream file, so the core can flush it at
/// snapshot/shutdown barriers while the observer owns the writes.
pub type StreamHandle = Arc<Mutex<BufWriter<File>>>;

/// The owned observer installed into the daemon's `EngineSession`.
pub struct DaemonObserver {
    tap: Arc<LiveTap>,
    registry: Arc<RunRegistry>,
    seq: Arc<AtomicU64>,
    first_kept: u64,
    stream: Option<StreamHandle>,
}

impl std::fmt::Debug for DaemonObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonObserver")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .field("first_kept", &self.first_kept)
            .field("stream", &self.stream.is_some())
            .finish()
    }
}

impl DaemonObserver {
    /// An observer feeding `tap` and `registry`, writing the stream to
    /// `stream` (if any) from seq `first_kept` onward. `seq` is shared so
    /// the core can read the published-event count for snapshots.
    pub fn new(
        tap: Arc<LiveTap>,
        registry: Arc<RunRegistry>,
        seq: Arc<AtomicU64>,
        first_kept: u64,
        stream: Option<StreamHandle>,
    ) -> Self {
        DaemonObserver {
            tap,
            registry,
            seq,
            first_kept,
            stream,
        }
    }
}

impl Observer for DaemonObserver {
    fn is_enabled(&self) -> bool {
        true
    }

    fn on_event(&mut self, at: SimTime, event: &ObsEvent) {
        // fetch_add returns the prior count: a 0-based publication seq,
        // aligned with the tap's events_published counter.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.tap.observe(at, event);
        self.registry.apply(at, event);
        if seq >= self.first_kept {
            if let Some(stream) = &self.stream {
                let line = TimedEvent {
                    at,
                    seq,
                    event: event.clone(),
                }
                .to_line();
                let mut writer = stream.lock().unwrap();
                let _ = writeln!(writer, "{line}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_sim::JobId;
    use pdpa_watch::RunMeta;

    #[test]
    fn observer_counts_feeds_tap_and_registry() {
        let tap = LiveTap::new(RunMeta::default());
        let registry = RunRegistry::new();
        registry.admit(0, "swim", 16, 0.0);
        let seq = Arc::new(AtomicU64::new(0));
        let mut obs = DaemonObserver::new(
            Arc::clone(&tap),
            Arc::clone(&registry),
            Arc::clone(&seq),
            0,
            None,
        );
        obs.on_event(
            SimTime::from_secs(0.0),
            &ObsEvent::JobSubmitted { job: JobId(0) },
        );
        obs.on_event(
            SimTime::from_secs(1.0),
            &ObsEvent::JobStarted {
                job: JobId(0),
                request: 16,
            },
        );
        assert_eq!(seq.load(Ordering::Relaxed), 2);
        assert_eq!(tap.status_body().jobs_submitted, 1);
        assert_eq!(registry.row(0).unwrap().state, "running");
    }
}
