//! The TCP front of `pdpad`: a [`Daemon`] couples the single-threaded
//! [`DaemonCore`] to the multi-threaded `pdpa_watch::StatusServer`.
//!
//! Split of responsibilities:
//!
//! - **Queries** (`status`, `progress`, `health`, `metrics`, `tail`) are
//!   answered by the server threads straight from the [`LiveTap`] — the
//!   unmodified v1 vocabulary, so an old `pdpa watch` works against a
//!   daemon without knowing it is one.
//! - **Control** (`hello`, `submit`, `cancel`, `drain`, `snapshot`,
//!   `shutdown`, `jobs`, `job`) goes through a bounded op channel into
//!   the core's loop thread and waits for the reply. `hello` is the one
//!   exception: it is answered directly on the connection thread so
//!   liveness probes keep working even while the core is deep inside a
//!   long `drain`.
//!
//! The channel bound is the daemon's second backpressure layer: when ops
//! arrive faster than the core retires them, `try_send` fails and the
//! client gets an explicit `busy` rejection with a retry hint — the
//! daemon never buffers unboundedly and never blocks a connection thread
//! on another client's work. (The first layer, `queue_full`, is about the
//! *simulated* machine and lives in the core.)

use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pdpa_watch::{
    ControlHandler, HelloBody, LiveTap, RejectBody, RequestKind, ResponseBody, StatusServer,
    PROTO_VERSION,
};

use crate::core::{DaemonConfig, DaemonCore};

/// Ops the channel buffers before clients see `busy`.
const OP_CHANNEL_BOUND: usize = 64;
/// How long a connection thread waits for the core's reply.
const CONTROL_TIMEOUT: Duration = Duration::from_secs(30);
/// Core loop tick between ops: pacing and progress cadence.
const TICK: Duration = Duration::from_millis(20);

struct ControlMsg {
    kind: RequestKind,
    reply: std::sync::mpsc::Sender<ResponseBody>,
}

/// The [`ControlHandler`] installed into the status server: forwards
/// control ops to the core loop, with channel-level backpressure.
struct DaemonControl {
    ops: SyncSender<ControlMsg>,
}

fn reject(reason: &str, retry_after_secs: Option<f64>) -> ResponseBody {
    ResponseBody::Reject(RejectBody {
        reason: reason.to_string(),
        retry_after_secs,
    })
}

impl ControlHandler for DaemonControl {
    fn control(&self, kind: &RequestKind, tap: &LiveTap) -> ResponseBody {
        if matches!(kind, RequestKind::Hello) {
            return ResponseBody::Hello(HelloBody {
                proto: PROTO_VERSION,
                server: "pdpad".to_string(),
                policy: tap.status_body().policy,
                state: tap.state(),
            });
        }
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        match self.ops.try_send(ControlMsg {
            kind: kind.clone(),
            reply: reply_tx,
        }) {
            Ok(()) => match reply_rx.recv_timeout(CONTROL_TIMEOUT) {
                Ok(body) => body,
                Err(_) => reject("busy", Some(1.0)),
            },
            Err(TrySendError::Full(_)) => reject("busy", Some(0.5)),
            Err(TrySendError::Disconnected(_)) => reject("shutting_down", None),
        }
    }
}

/// A bound, running `pdpad` instance: call [`Daemon::run`] to serve.
pub struct Daemon {
    core: DaemonCore,
    server: StatusServer,
    ops: Receiver<ControlMsg>,
    started: Instant,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.server.local_addr())
            .field("core", &self.core)
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Binds the daemon's TCP socket and wires the control channel; the
    /// daemon is reachable (queries *and* control) from the moment this
    /// returns, but ops only retire once [`run`](Daemon::run) starts.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(core: DaemonCore, addr: &str) -> Result<Daemon, String> {
        let (ops_tx, ops_rx) = sync_channel(OP_CHANNEL_BOUND);
        let handler = Arc::new(DaemonControl { ops: ops_tx });
        let server = StatusServer::bind_with_handler(addr, core.tap(), handler)
            .map_err(|e| format!("pdpad: cannot bind {addr}: {e}"))?;
        Ok(Daemon {
            core,
            server,
            ops: ops_rx,
            started: Instant::now(),
        })
    }

    /// The actual bound address (`:0` requests resolve at bind time).
    pub fn local_addr(&self) -> String {
        self.server.local_addr().to_string()
    }

    /// Serves until a `shutdown` request is acknowledged. Returns a
    /// one-paragraph closing summary.
    pub fn run(mut self) -> Result<String, String> {
        loop {
            match self.ops.recv_timeout(TICK) {
                Ok(msg) => {
                    let is_shutdown = matches!(msg.kind, RequestKind::Shutdown { .. });
                    let wall = self.started.elapsed().as_secs_f64();
                    let body = self.core.handle(&msg.kind, wall);
                    let accepted = !matches!(body, ResponseBody::Reject(_));
                    let _ = msg.reply.send(body);
                    if is_shutdown && accepted {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.core.pace(self.started.elapsed().as_secs_f64());
        }
        self.core.flush_stream();
        let tap = self.core.tap();
        tap.mark_done();
        // Give a polling watcher one window to observe the terminal
        // state before the socket goes away.
        self.server.wait_for_final_query(Duration::from_secs(1));
        let connections = self.server.connections();
        self.server.shutdown();
        let session = self.core.session();
        Ok(format!(
            "pdpad: shut down after {:.1}s — {} connections, {} jobs ({} done, {} failed), \
             sim clock {:.1}s, {} journal ops",
            self.started.elapsed().as_secs_f64(),
            connections,
            session.total_jobs(),
            session.completed_count(),
            session.failed_count(),
            session.clock().as_secs(),
            self.core.journal().len(),
        ))
    }
}

/// Convenience constructor: open a fresh core from `config` (or restore
/// it from `restore_from`) and bind it on `addr`.
///
/// # Errors
///
/// Propagates core construction/restore and bind failures.
pub fn bind_daemon(
    config: DaemonConfig,
    restore_from: Option<&str>,
    addr: &str,
) -> Result<Daemon, String> {
    let core = match restore_from {
        Some(path) => DaemonCore::restore(path, config)?,
        None => DaemonCore::new(config)?,
    };
    Daemon::bind(core, addr)
}
