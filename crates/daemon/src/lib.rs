//! `pdpad`: the resident PDPA scheduler daemon (ROADMAP item 1).
//!
//! Every engine before this crate runs a *closed* workload: jobs are known
//! up front, the run ends when they drain. `pdpad` turns the same
//! deterministic simulation core into an *open* service — a long-running
//! process that owns a live [`EngineSession`](pdpa_engine::EngineSession),
//! admits jobs as they arrive
//! over TCP, and can be killed and restarted mid-workload without losing
//! (or perturbing) a single decision event. Four layers:
//!
//! - [`core`] — the [`DaemonCore`]: the single-threaded heart that applies
//!   control operations (`submit`, `cancel`, `drain`, `snapshot`,
//!   `shutdown`) to the session, enforces the admission bound
//!   (`queue_full` backpressure), journals every accepted mutation, and
//!   writes/restores snapshots.
//! - [`journal`] — the [`Op`] journal and the `pdpa-snapshot/v1` file
//!   format. A snapshot is *not* a serialized heap: it is the engine
//!   config, the ordered journal of effective-instant ops, the time
//!   barrier, and an integrity block of counters a restore must
//!   reproduce exactly. Replaying the journal against a fresh session
//!   reconstructs the full state — RNG streams included, because all
//!   per-job noise derives positionally from `(seed, job, attempt)`.
//! - [`registry`] — the per-job run registry behind the `jobs`/`job`
//!   queries: class, request, lifecycle state, submit/finish instants.
//! - [`serve`] — the TCP front: a [`Daemon`] couples the core to a
//!   `pdpa_watch::StatusServer` through a bounded op channel. Query
//!   traffic (`status`, `progress`, `health`, `metrics`, `tail`) is
//!   answered from the [`LiveTap`](pdpa_watch::LiveTap) without touching
//!   the core; control traffic does a round-trip through the channel and
//!   gets explicit `busy` backpressure when the daemon cannot keep up.
//!
//! The wire protocol is `pdpa_watch::proto` v2; `DAEMON.md` at the repo
//! root documents every frame, error code, and the snapshot format.

#![deny(missing_docs)]

pub mod core;
pub mod journal;
pub mod observer;
pub mod policy;
pub mod registry;
pub mod serve;

pub use crate::core::{DaemonConfig, DaemonCore};
pub use journal::{Op, Snapshot, SnapshotCheck, SnapshotConfig, SNAPSHOT_FORMAT};
pub use policy::{known_policies, policy_from_slug};
pub use registry::RunRegistry;
pub use serve::{bind_daemon, Daemon};
