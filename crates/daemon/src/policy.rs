//! Policy construction from the stable CLI slugs.
//!
//! The daemon stores the *slug* (not the policy object) in its snapshots,
//! so a restore can rebuild the identical policy without serializing any
//! policy state — journal replay regenerates it. The slugs here are the
//! same stable identifiers `pdpa-cli` uses for `replay-<slug>` trajectory
//! modes; a snapshot written today must restore under any future build,
//! which is why both sides pin them with tests.

use pdpa_core::Pdpa;
use pdpa_policies::{
    EqualEfficiency, Equipartition, GangScheduler, HeSrpt, IrixLike, LearnedAlloc, OptSplit,
    RigidFirstFit, SchedulingPolicy,
};

/// Builds the policy named by `slug` (the CLI's stable identifiers, plus
/// the common long-form aliases). Returns `None` for unknown names.
pub fn policy_from_slug(slug: &str) -> Option<Box<dyn SchedulingPolicy>> {
    Some(match slug.to_ascii_lowercase().as_str() {
        "pdpa" => Box::new(Pdpa::paper_default()),
        "equip" | "equipartition" => Box::new(Equipartition::default()),
        "equal-eff" | "equal_eff" | "equal-efficiency" => {
            Box::new(EqualEfficiency::paper_default())
        }
        "irix" => Box::new(IrixLike::paper_default()),
        "rigid" => Box::new(RigidFirstFit::paper_default()),
        "gang" => Box::new(GangScheduler::paper_comparable()),
        "hesrpt" | "he-srpt" => Box::new(HeSrpt::default()),
        "optsplit" | "opt-split" => Box::new(OptSplit::default()),
        "learned" | "learnedalloc" | "learned-alloc" => Box::new(LearnedAlloc::default()),
        _ => return None,
    })
}

/// The canonical slugs [`policy_from_slug`] accepts, for error messages.
pub fn known_policies() -> &'static [&'static str] {
    &[
        "pdpa",
        "equip",
        "equal-eff",
        "irix",
        "rigid",
        "gang",
        "hesrpt",
        "optsplit",
        "learned",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_slug_builds() {
        for slug in known_policies() {
            let policy = policy_from_slug(slug);
            assert!(policy.is_some(), "slug {slug} must build");
        }
        assert!(policy_from_slug("no-such-policy").is_none());
    }

    #[test]
    fn slugs_are_case_insensitive() {
        assert!(policy_from_slug("PDPA").is_some());
        assert!(policy_from_slug("Equipartition").is_some());
    }
}
