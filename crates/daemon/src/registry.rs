//! The run registry: per-job lifecycle state behind the `jobs`/`job`
//! queries.
//!
//! The engine's own job store knows everything, but it lives inside the
//! single-owner simulation world. The registry is the concurrent mirror:
//! admission inserts a record, the daemon's observer moves it through the
//! lifecycle as decision events are published, and server threads read
//! [`JobRow`]s out of it without touching the engine. States:
//!
//! ```text
//! queued ── start ──► running ── finish ──► done
//!    │                   │
//!    │ cancel            │ cancel / fault exhaustion
//!    ▼                   ▼
//! cancelled           failed → cancelled (when the daemon cancelled it)
//! ```
//!
//! Cancellation is a daemon-level concept (the engine publishes a
//! terminal `JobFailed` either way), so [`RunRegistry::mark_cancelled`]
//! runs *after* the engine's events and overrides `failed`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use pdpa_obs::ObsEvent;
use pdpa_sim::SimTime;
use pdpa_watch::JobRow;

#[derive(Clone, Debug)]
struct JobRecord {
    class: String,
    request: usize,
    state: &'static str,
    submit_secs: f64,
    finish_secs: Option<f64>,
}

/// Concurrent per-job lifecycle mirror; keyed by job id.
#[derive(Debug, Default)]
pub struct RunRegistry {
    jobs: Mutex<BTreeMap<u64, JobRecord>>,
}

impl RunRegistry {
    /// An empty registry behind an [`Arc`], ready to share with the
    /// daemon's observer and the server threads.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records an admitted job in state `queued`.
    pub fn admit(&self, job: u64, class: &str, request: usize, submit_secs: f64) {
        self.jobs.lock().unwrap().insert(
            job,
            JobRecord {
                class: class.to_string(),
                request,
                state: "queued",
                submit_secs,
                finish_secs: None,
            },
        );
    }

    /// Marks a job cancelled at `at_secs`. Called after the engine's own
    /// terminal events, so it wins over `failed`.
    pub fn mark_cancelled(&self, job: u64, at_secs: f64) {
        if let Some(rec) = self.jobs.lock().unwrap().get_mut(&job) {
            rec.state = "cancelled";
            rec.finish_secs.get_or_insert(at_secs);
        }
    }

    /// Advances lifecycle state from one published observer event.
    pub fn apply(&self, at: SimTime, event: &ObsEvent) {
        let (job, state, finished) = match event {
            ObsEvent::JobStarted { job, .. } => (job.0, "running", false),
            ObsEvent::JobFinished { job } => (job.0, "done", true),
            ObsEvent::JobFailed { job, .. } => (job.0, "failed", true),
            _ => return,
        };
        if let Some(rec) = self.jobs.lock().unwrap().get_mut(&u64::from(job)) {
            // A retried job can re-enter `running` after a crash, but no
            // event un-cancels: the daemon's verdict is terminal.
            if rec.state == "cancelled" {
                return;
            }
            rec.state = state;
            if finished {
                rec.finish_secs = Some(at.as_secs());
            }
        }
    }

    /// The row for one job, if it was ever admitted.
    pub fn row(&self, job: u64) -> Option<JobRow> {
        self.jobs
            .lock()
            .unwrap()
            .get(&job)
            .map(|rec| to_row(job, rec))
    }

    /// Up to `n` most recently admitted jobs, ascending by id.
    pub fn rows(&self, n: usize) -> Vec<JobRow> {
        let jobs = self.jobs.lock().unwrap();
        let skip = jobs.len().saturating_sub(n);
        jobs.iter()
            .skip(skip)
            .map(|(id, rec)| to_row(*id, rec))
            .collect()
    }

    /// Jobs ever admitted.
    pub fn len(&self) -> usize {
        self.jobs.lock().unwrap().len()
    }

    /// True when nothing was ever admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn to_row(job: u64, rec: &JobRecord) -> JobRow {
    JobRow {
        job,
        class: rec.class.clone(),
        request: rec.request as u64,
        state: rec.state.to_string(),
        submit_secs: rec.submit_secs,
        finish_secs: rec.finish_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_sim::JobId;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn lifecycle_moves_through_states() {
        let reg = RunRegistry::new();
        reg.admit(0, "swim", 16, 0.0);
        assert_eq!(reg.row(0).unwrap().state, "queued");
        reg.apply(
            t(1.0),
            &ObsEvent::JobStarted {
                job: JobId(0),
                request: 16,
            },
        );
        assert_eq!(reg.row(0).unwrap().state, "running");
        reg.apply(t(9.0), &ObsEvent::JobFinished { job: JobId(0) });
        let row = reg.row(0).unwrap();
        assert_eq!(row.state, "done");
        assert_eq!(row.finish_secs, Some(9.0));
    }

    #[test]
    fn cancelled_wins_over_failed() {
        let reg = RunRegistry::new();
        reg.admit(3, "apsi", 8, 2.0);
        reg.apply(
            t(4.0),
            &ObsEvent::JobFailed {
                job: JobId(3),
                attempts: 0,
            },
        );
        reg.mark_cancelled(3, 4.0);
        assert_eq!(reg.row(3).unwrap().state, "cancelled");
        // Late events never resurrect it.
        reg.apply(
            t(5.0),
            &ObsEvent::JobStarted {
                job: JobId(3),
                request: 8,
            },
        );
        assert_eq!(reg.row(3).unwrap().state, "cancelled");
    }

    #[test]
    fn rows_returns_the_newest_n_in_id_order() {
        let reg = RunRegistry::new();
        for id in 0..5 {
            reg.admit(id, "swim", 4, id as f64);
        }
        let rows = reg.rows(2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].job, 3);
        assert_eq!(rows[1].job, 4);
        assert!(reg.row(99).is_none());
        assert_eq!(reg.len(), 5);
    }
}
