//! [`DaemonCore`]: the single-threaded state machine behind `pdpad`.
//!
//! The core owns the [`EngineSession`] and is the only place mutations
//! happen; the TCP layer in [`crate::serve`] feeds it one control op at a
//! time through a bounded channel, so every admission decision, journal
//! append, and snapshot happens at a quiescent point between ops. That is
//! what makes the persistence story honest: a snapshot taken "mid-run" is
//! always taken between two ops, and the decision-stream file is flushed
//! at the same boundary, so killing the process immediately after leaves
//! exactly the state the snapshot describes.
//!
//! Admission control is deterministic and simulation-level: a submission
//! is rejected with `queue_full` when the engine's *waiting* count has
//! reached the configured bound. Rejected submissions are not journaled —
//! they never touched the simulation. (The TCP layer adds a second,
//! wall-clock-level `busy` rejection when the op channel itself is full;
//! that one is about the daemon process, not the simulated machine.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pdpa_apps::{paper_app, AppClass, ApplicationSpec};
use pdpa_engine::{CancelOutcome, EngineConfig, EngineSession};
use pdpa_prof::ProgressSink as _;
use pdpa_sim::{JobId, SimTime};
use pdpa_watch::{
    AckBody, HelloBody, LiveTap, RejectBody, RequestKind, ResponseBody, RunMeta, PROTO_VERSION,
};

use crate::journal::{Op, Snapshot, SnapshotCheck, SnapshotConfig, SNAPSHOT_FORMAT};
use crate::observer::{DaemonObserver, StreamHandle};
use crate::policy::{known_policies, policy_from_slug};
use crate::registry::RunRegistry;

/// Everything a daemon needs to open (or restore) its session.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Policy slug (see [`crate::policy_from_slug`]).
    pub policy: String,
    /// Machine size.
    pub cpus: usize,
    /// Daemon seed; the engine seed derives from it exactly like the CLI.
    pub seed: u64,
    /// Queue backfilling.
    pub backfill: bool,
    /// Simulation horizon override, sim seconds.
    pub max_sim_secs: Option<f64>,
    /// Admission bound: submissions are rejected with `queue_full` while
    /// this many jobs are waiting.
    pub max_queue: usize,
    /// Sim seconds advanced per wall second between ops; `0` disables
    /// pacing (time advances only through ops and `drain`).
    pub time_scale: f64,
    /// Suggested client retry delay on `queue_full`, wall seconds.
    pub retry_after_secs: f64,
    /// Decision-stream file (same line grammar as `replay --obs-out`).
    pub stream_path: Option<String>,
    /// Default snapshot target for `snapshot`/`shutdown` requests that
    /// name no path.
    pub snapshot_path: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            policy: "pdpa".to_string(),
            cpus: 32,
            seed: 42,
            backfill: false,
            max_sim_secs: None,
            max_queue: 64,
            time_scale: 1.0,
            retry_after_secs: 0.5,
            stream_path: None,
            snapshot_path: None,
        }
    }
}

/// The daemon's state machine; see the [module docs](self).
pub struct DaemonCore {
    session: EngineSession,
    config: DaemonConfig,
    tap: Arc<LiveTap>,
    registry: Arc<RunRegistry>,
    seq: Arc<AtomicU64>,
    stream: Option<StreamHandle>,
    journal: Vec<Op>,
    draining: bool,
}

impl std::fmt::Debug for DaemonCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonCore")
            .field("policy", &self.config.policy)
            .field("journal_ops", &self.journal.len())
            .field("draining", &self.draining)
            .finish_non_exhaustive()
    }
}

fn reject(reason: &str, retry_after_secs: Option<f64>) -> ResponseBody {
    ResponseBody::Reject(RejectBody {
        reason: reason.to_string(),
        retry_after_secs,
    })
}

fn ack(job: Option<u64>, at_secs: Option<f64>, info: Option<String>) -> ResponseBody {
    ResponseBody::Ack(AckBody { job, at_secs, info })
}

/// Builds the concrete [`ApplicationSpec`] for a submission. Class names
/// follow `AppClass::parse`; `work_secs` rescales the iteration count so
/// total sequential work approximates the requested span; `request`
/// overrides the paper request.
fn materialize(
    class: &str,
    request: Option<u64>,
    work_secs: Option<f64>,
) -> Result<ApplicationSpec, String> {
    let class =
        AppClass::parse(class).ok_or_else(|| format!("unknown application class '{class}'"))?;
    let mut app = paper_app(class);
    if let Some(work) = work_secs {
        if !work.is_finite() || work <= 0.0 {
            return Err(format!("work_secs must be positive and finite, got {work}"));
        }
        let iter_secs = app.seq_iter_time.as_secs();
        let iterations = ((work / iter_secs).round() as u32).max(1);
        app = ApplicationSpec::new(
            app.class,
            iterations,
            app.seq_iter_time,
            app.request,
            app.speedup.clone(),
            app.measurement_overhead,
        );
    }
    if let Some(request) = request {
        if request == 0 || request > u32::MAX as u64 {
            return Err(format!("request must be in 1..=2^32, got {request}"));
        }
        app = app.with_request(request as usize);
    }
    Ok(app)
}

impl DaemonCore {
    /// Opens a fresh daemon over an empty workload.
    ///
    /// # Errors
    ///
    /// Unknown policy slug, invalid engine config, or an unwritable
    /// stream path.
    pub fn new(config: DaemonConfig) -> Result<DaemonCore, String> {
        Self::build(config, Vec::new(), false, 0, None)
    }

    /// Restores a daemon from the snapshot file at `path`. The engine
    /// identity (policy, cpus, seed, backfill, horizon) comes from the
    /// snapshot; runtime knobs (admission bound, pacing, stream and
    /// snapshot paths) come from `runtime`.
    ///
    /// The journal is replayed against a fresh session with stream
    /// writing suppressed below the snapshot's published-event count, then
    /// the integrity block is verified: any counter mismatch fails the
    /// restore rather than serving a diverged run.
    ///
    /// # Errors
    ///
    /// Unreadable/malformed snapshot, unknown policy, or an integrity
    /// check failure.
    pub fn restore(path: &str, runtime: DaemonConfig) -> Result<DaemonCore, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let snap = Snapshot::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let config = DaemonConfig {
            policy: snap.config.policy.clone(),
            cpus: snap.config.cpus,
            seed: snap.config.seed,
            backfill: snap.config.backfill,
            max_sim_secs: Some(snap.config.max_sim_secs),
            ..runtime
        };
        let core = Self::build(
            config,
            snap.ops.clone(),
            snap.draining,
            snap.check.events_published,
            Some(snap.barrier_secs),
        )?;
        core.verify_check(path, &snap.check)?;
        Ok(core)
    }

    fn build(
        config: DaemonConfig,
        ops: Vec<Op>,
        draining: bool,
        first_kept_seq: u64,
        barrier_secs: Option<f64>,
    ) -> Result<DaemonCore, String> {
        let policy = policy_from_slug(&config.policy).ok_or_else(|| {
            format!(
                "unknown policy '{}' (known: {})",
                config.policy,
                known_policies().join(", ")
            )
        })?;
        let mut engine_config = EngineConfig::default()
            .with_seed(config.seed ^ 0xA5A5)
            .with_cpus(config.cpus);
        if config.backfill {
            engine_config = engine_config.with_backfill();
        }
        if let Some(horizon) = config.max_sim_secs {
            engine_config.max_sim_secs = horizon;
        }
        let tap = LiveTap::new(RunMeta {
            policy: policy.name().to_string(),
            trace: "live".to_string(),
            shards: 1,
            jobs_total: 0,
        });
        let registry = RunRegistry::new();
        let seq = Arc::new(AtomicU64::new(0));
        let stream = match &config.stream_path {
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create stream file {path}: {e}"))?;
                Some(Arc::new(Mutex::new(std::io::BufWriter::new(file))))
            }
            None => None,
        };
        let observer = DaemonObserver::new(
            Arc::clone(&tap),
            Arc::clone(&registry),
            Arc::clone(&seq),
            first_kept_seq,
            stream.clone(),
        );
        let session = EngineSession::new(engine_config, policy, Box::new(observer))?;
        let mut core = DaemonCore {
            session,
            config,
            tap,
            registry,
            seq,
            stream,
            journal: Vec::new(),
            draining,
        };
        for op in ops {
            core.replay_op(op)?;
        }
        if let Some(barrier) = barrier_secs {
            core.session.run_until(SimTime::from_secs(barrier));
        }
        core.tap.set_jobs_total(core.session.total_jobs() as u64);
        core.publish_progress();
        Ok(core)
    }

    fn replay_op(&mut self, op: Op) -> Result<(), String> {
        match &op {
            Op::Submit {
                at_secs,
                class,
                request,
                work_secs,
            } => {
                let app = materialize(class, *request, *work_secs)
                    .map_err(|e| format!("journal replay: {e}"))?;
                let request = app.request;
                let (eff, job) = self.session.submit(SimTime::from_secs(*at_secs), app);
                if eff.as_secs() != *at_secs {
                    return Err(format!(
                        "journal replay: submit journaled at {at_secs}s landed at {}s — \
                         the journal is not a fixed point",
                        eff.as_secs()
                    ));
                }
                self.registry
                    .admit(u64::from(job.0), class, request, eff.as_secs());
            }
            Op::Cancel { at_secs, job } => {
                let (eff, outcome) = self
                    .session
                    .cancel(SimTime::from_secs(*at_secs), JobId(*job as u32));
                if outcome == CancelOutcome::NotFound {
                    return Err(format!("journal replay: cancel of unknown job {job}"));
                }
                self.registry.mark_cancelled(*job, eff.as_secs());
            }
        }
        self.journal.push(op);
        Ok(())
    }

    fn verify_check(&self, path: &str, expect: &SnapshotCheck) -> Result<(), String> {
        let got = self.check();
        if got != *expect {
            return Err(format!(
                "{path}: snapshot integrity check failed — the replayed session does not \
                 match the snapshotted one.\n  expected: {expect:?}\n  rebuilt:  {got:?}"
            ));
        }
        Ok(())
    }

    fn check(&self) -> SnapshotCheck {
        let stats = self.session.queue_stats();
        SnapshotCheck {
            events_published: self.seq.load(Ordering::Relaxed),
            pushed: stats.pushed,
            popped: stats.popped,
            stale_drops: stats.stale_drops,
            jobs_submitted: self.session.total_jobs() as u64,
            jobs_finished: self.session.completed_count() as u64,
            jobs_failed: self.session.failed_count() as u64,
            clock_secs: self.session.clock().as_secs(),
        }
    }

    /// The live tap to serve queries from.
    pub fn tap(&self) -> Arc<LiveTap> {
        Arc::clone(&self.tap)
    }

    /// The journal accumulated so far (tests and diagnostics).
    pub fn journal(&self) -> &[Op] {
        &self.journal
    }

    /// The underlying session (read-only views).
    pub fn session(&self) -> &EngineSession {
        &self.session
    }

    /// True once `drain` stopped admission.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Applies one control request at wall-clock offset `wall_secs` and
    /// returns the response body. Query kinds never reach here (the
    /// status server answers them from the tap); they are rejected as
    /// `bad_request` defensively.
    pub fn handle(&mut self, kind: &RequestKind, wall_secs: f64) -> ResponseBody {
        match kind {
            RequestKind::Hello => ResponseBody::Hello(HelloBody {
                proto: PROTO_VERSION,
                server: "pdpad".to_string(),
                policy: self.session.policy_name().to_string(),
                state: self.tap.state(),
            }),
            RequestKind::Submit {
                class,
                request,
                work_secs,
            } => self.handle_submit(class, *request, *work_secs, wall_secs),
            RequestKind::Cancel { job } => self.handle_cancel(*job, wall_secs),
            RequestKind::Drain => self.handle_drain(),
            RequestKind::Snapshot { path } => self.handle_snapshot(path.as_deref()),
            RequestKind::Shutdown { snapshot } => self.handle_shutdown(snapshot.as_deref()),
            RequestKind::Jobs { n } => ResponseBody::Jobs(self.registry.rows(*n)),
            RequestKind::Job { job } => match self.registry.row(*job) {
                Some(row) => ResponseBody::Job(row),
                None => reject("unknown_job", None),
            },
            _ => reject("bad_request", None),
        }
    }

    fn now_sim(&self, wall_secs: f64) -> SimTime {
        // The session clamps up to its cursor, so with pacing off (scale
        // 0) ops simply land "now" in sim time.
        SimTime::from_secs((wall_secs * self.config.time_scale).max(0.0))
    }

    fn handle_submit(
        &mut self,
        class: &str,
        request: Option<u64>,
        work_secs: Option<f64>,
        wall_secs: f64,
    ) -> ResponseBody {
        if self.draining {
            return reject("draining", None);
        }
        if self.session.waiting_count() >= self.config.max_queue {
            return reject("queue_full", Some(self.config.retry_after_secs));
        }
        let app = match materialize(class, request, work_secs) {
            Ok(app) => app,
            Err(_) => return reject("bad_request", None),
        };
        let effective_request = app.request;
        let (eff, job) = self.session.submit(self.now_sim(wall_secs), app);
        // Process the arrival immediately so waiting/running counts (and
        // the next admission decision) reflect this job. Barriers need no
        // journaling — only the op's effective instant does.
        self.session.run_until(eff);
        self.journal.push(Op::Submit {
            at_secs: eff.as_secs(),
            class: class.to_string(),
            request,
            work_secs,
        });
        self.registry
            .admit(u64::from(job.0), class, effective_request, eff.as_secs());
        self.tap.set_jobs_total(self.session.total_jobs() as u64);
        self.publish_progress();
        ack(Some(u64::from(job.0)), Some(eff.as_secs()), None)
    }

    fn handle_cancel(&mut self, job: u64, wall_secs: f64) -> ResponseBody {
        if job > u64::from(u32::MAX) {
            return reject("unknown_job", None);
        }
        let (eff, outcome) = self
            .session
            .cancel(self.now_sim(wall_secs), JobId(job as u32));
        let info = match outcome {
            CancelOutcome::Queued => "cancelled while queued",
            CancelOutcome::Running => "cancelled while running",
            CancelOutcome::NotFound => return reject("unknown_job", None),
        };
        self.journal.push(Op::Cancel {
            at_secs: eff.as_secs(),
            job,
        });
        self.registry.mark_cancelled(job, eff.as_secs());
        self.publish_progress();
        ack(Some(job), Some(eff.as_secs()), Some(info.to_string()))
    }

    fn handle_drain(&mut self) -> ResponseBody {
        self.draining = true;
        let events = self.session.drain();
        self.flush_stream();
        self.publish_progress();
        let info = format!(
            "drained: {events} events, {} done, {} failed, clock {:.1}s",
            self.session.completed_count(),
            self.session.failed_count(),
            self.session.clock().as_secs()
        );
        ack(None, Some(self.session.clock().as_secs()), Some(info))
    }

    fn handle_snapshot(&mut self, path: Option<&str>) -> ResponseBody {
        let path = match path.or(self.config.snapshot_path.as_deref()) {
            Some(path) => path.to_string(),
            None => return reject("bad_request", None),
        };
        match self.snapshot_to(&path) {
            Ok(()) => ack(None, Some(self.session.clock().as_secs()), Some(path)),
            Err(_) => reject("io_error", None),
        }
    }

    fn handle_shutdown(&mut self, snapshot: Option<&str>) -> ResponseBody {
        if let Some(path) = snapshot {
            let path = path.to_string();
            if self.snapshot_to(&path).is_err() {
                // Refuse to die if the operator asked for a parting
                // snapshot and it cannot be written.
                return reject("io_error", None);
            }
        }
        self.flush_stream();
        ack(
            None,
            Some(self.session.clock().as_secs()),
            Some("shutting down".to_string()),
        )
    }

    /// Writes a `pdpa-snapshot/v1` document to `path`, flushing the
    /// decision stream first so file and snapshot agree on the cut point.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn snapshot_to(&mut self, path: &str) -> Result<(), String> {
        self.flush_stream();
        let snap = Snapshot {
            proto: PROTO_VERSION,
            config: SnapshotConfig {
                policy: self.config.policy.clone(),
                cpus: self.config.cpus,
                seed: self.config.seed,
                backfill: self.config.backfill,
                max_sim_secs: self.session.config().max_sim_secs,
            },
            draining: self.draining,
            barrier_secs: self.session.cursor().as_secs(),
            ops: self.journal.clone(),
            check: self.check(),
        };
        std::fs::write(path, snap.to_json())
            .map_err(|e| format!("cannot write {SNAPSHOT_FORMAT} file {path}: {e}"))
    }

    /// Advances simulated time against the wall clock (`time_scale` sim
    /// seconds per wall second) and refreshes the tap's progress mirror.
    pub fn pace(&mut self, wall_secs: f64) {
        if self.config.time_scale > 0.0 {
            let target = self.now_sim(wall_secs);
            if target > self.session.clock() {
                self.session.run_until(target);
            }
        }
        self.publish_progress();
    }

    /// Drives simulated time to `sim_secs` directly (deterministic
    /// drivers and tests; the serve loop uses [`pace`](DaemonCore::pace)
    /// instead). Barriers never need journaling.
    pub fn advance_to(&mut self, sim_secs: f64) {
        self.session.run_until(SimTime::from_secs(sim_secs));
        self.publish_progress();
    }

    /// Flushes the decision-stream file, if one is attached.
    pub fn flush_stream(&mut self) {
        if let Some(stream) = &self.stream {
            use std::io::Write as _;
            let _ = stream.lock().unwrap().flush();
        }
    }

    fn publish_progress(&self) {
        self.tap.progress(&self.session.health_snapshot());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> DaemonConfig {
        DaemonConfig {
            time_scale: 0.0,
            ..DaemonConfig::default()
        }
    }

    fn submit(class: &str, request: Option<u64>) -> RequestKind {
        RequestKind::Submit {
            class: class.to_string(),
            request,
            work_secs: None,
        }
    }

    #[test]
    fn materialize_honors_overrides() {
        let base = materialize("swim", None, None).expect("paper app");
        let tuned = materialize("swim", Some(4), None).expect("request override");
        assert_eq!(tuned.request, 4);
        let short =
            materialize("swim", None, Some(base.seq_iter_time.as_secs())).expect("work override");
        assert_eq!(short.iterations, 1);
        assert!(materialize("no-such-app", None, None).is_err());
        assert!(materialize("swim", Some(0), None).is_err());
        assert!(materialize("swim", None, Some(-1.0)).is_err());
    }

    #[test]
    fn submit_runs_jobs_to_completion() {
        let mut core = DaemonCore::new(quiet()).expect("core");
        let body = core.handle(&submit("swim", None), 0.0);
        let ResponseBody::Ack(ack) = body else {
            panic!("expected ack, got {body:?}");
        };
        assert_eq!(ack.job, Some(0));
        let body = core.handle(&RequestKind::Drain, 0.0);
        assert!(matches!(body, ResponseBody::Ack(_)));
        assert!(core.session().all_done());
        assert_eq!(core.registry.row(0).unwrap().state, "done");
        assert_eq!(core.tap().status_body().jobs_finished, 1);
    }

    #[test]
    fn hello_identifies_the_daemon() {
        let mut core = DaemonCore::new(quiet()).expect("core");
        let ResponseBody::Hello(hello) = core.handle(&RequestKind::Hello, 0.0) else {
            panic!("expected hello");
        };
        assert_eq!(hello.server, "pdpad");
        assert_eq!(hello.proto, PROTO_VERSION);
    }

    #[test]
    fn draining_daemon_rejects_new_work() {
        let mut core = DaemonCore::new(quiet()).expect("core");
        core.handle(&submit("apsi", None), 0.0);
        core.handle(&RequestKind::Drain, 0.0);
        let body = core.handle(&submit("apsi", None), 0.0);
        let ResponseBody::Reject(reject) = body else {
            panic!("expected reject, got {body:?}");
        };
        assert_eq!(reject.reason, "draining");
    }

    #[test]
    fn cancel_of_unknown_job_is_rejected() {
        let mut core = DaemonCore::new(quiet()).expect("core");
        let body = core.handle(&RequestKind::Cancel { job: 7 }, 0.0);
        let ResponseBody::Reject(reject) = body else {
            panic!("expected reject, got {body:?}");
        };
        assert_eq!(reject.reason, "unknown_job");
    }

    #[test]
    fn unknown_policy_fails_construction() {
        let err = DaemonCore::new(DaemonConfig {
            policy: "mystery".to_string(),
            ..quiet()
        })
        .expect_err("unknown policy");
        assert!(err.contains("mystery"), "got: {err}");
    }
}
