//! The op journal and the `pdpa-snapshot/v1` file format.
//!
//! The daemon's whole persistence story rests on the `EngineSession`
//! determinism contract: every mutation carries a monotone *effective*
//! instant, and simulation state is a pure function of the op sequence
//! plus the furthest barrier. A snapshot therefore needs no serialized
//! heap — it is:
//!
//! - the engine **config** (machine size, seed, backfill, horizon, policy
//!   slug) that seeds an identical fresh session;
//! - the ordered **op journal** of accepted `submit`/`cancel` mutations,
//!   each with the effective instant the session assigned (replay is a
//!   fixed point: re-applying effective instants yields the same
//!   effective instants);
//! - the **barrier**: the furthest instant the session was driven to;
//! - a **check** block of counters (events published, queue traffic,
//!   job outcomes, sim clock) the restored session must reproduce
//!   exactly, or the restore refuses to serve.
//!
//! Rejected submissions are never journaled — backpressure leaves no
//! trace in the simulation, so it must leave none in the journal.
//!
//! The format is a single JSON document (one per file), written with the
//! workspace's hand-rolled escaping and parsed with
//! [`pdpa_watch::json::Json`]. Like the wire protocol it evolves
//! additively: readers ignore unknown fields, and `format`/`proto`
//! mismatches fail loudly instead of guessing.

use std::fmt::Write as _;

use pdpa_watch::json::{fmt_f64, push_str_escaped, Json};
use pdpa_watch::PROTO_VERSION;

/// Magic format tag; the first field of every snapshot file.
pub const SNAPSHOT_FORMAT: &str = "pdpa-snapshot/v1";

/// One journaled mutation, with the *effective* (cursor-clamped) instant
/// the session applied it at.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// An admitted job submission.
    Submit {
        /// Effective submission instant, sim seconds.
        at_secs: f64,
        /// Application class name (`swim`, `bt.A`, `hydro2d`, `apsi`).
        class: String,
        /// Processor request override, if the submitter set one.
        request: Option<u64>,
        /// Sequential-work override in sim seconds, if set.
        work_secs: Option<f64>,
    },
    /// An accepted cancellation.
    Cancel {
        /// Effective cancellation instant, sim seconds.
        at_secs: f64,
        /// The cancelled job.
        job: u64,
    },
}

impl Op {
    fn push_json(&self, out: &mut String) {
        match self {
            Op::Submit {
                at_secs,
                class,
                request,
                work_secs,
            } => {
                let _ = write!(
                    out,
                    "{{\"op\":\"submit\",\"at_secs\":{},",
                    fmt_f64(*at_secs)
                );
                out.push_str("\"class\":");
                push_str_escaped(out, class);
                if let Some(request) = request {
                    let _ = write!(out, ",\"request\":{request}");
                }
                if let Some(work) = work_secs {
                    let _ = write!(out, ",\"work_secs\":{}", fmt_f64(*work));
                }
                out.push('}');
            }
            Op::Cancel { at_secs, job } => {
                let _ = write!(
                    out,
                    "{{\"op\":\"cancel\",\"at_secs\":{},\"job\":{job}}}",
                    fmt_f64(*at_secs)
                );
            }
        }
    }

    fn parse(doc: &Json) -> Result<Op, String> {
        let kind = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or("op entry missing 'op'")?;
        let at_secs = doc
            .get("at_secs")
            .and_then(Json::as_f64)
            .ok_or("op entry missing 'at_secs'")?;
        match kind {
            "submit" => Ok(Op::Submit {
                at_secs,
                class: doc
                    .get("class")
                    .and_then(Json::as_str)
                    .ok_or("submit op missing 'class'")?
                    .to_string(),
                request: doc.get("request").and_then(Json::as_u64),
                work_secs: doc.get("work_secs").and_then(Json::as_f64),
            }),
            "cancel" => Ok(Op::Cancel {
                at_secs,
                job: doc
                    .get("job")
                    .and_then(Json::as_u64)
                    .ok_or("cancel op missing 'job'")?,
            }),
            other => Err(format!("unknown op kind '{other}'")),
        }
    }
}

/// The engine identity a snapshot carries: everything needed to open an
/// equivalent fresh session.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotConfig {
    /// Policy slug ([`crate::policy_from_slug`] vocabulary).
    pub policy: String,
    /// Machine size.
    pub cpus: usize,
    /// Daemon-level seed (the engine derives its own from it, the same
    /// way the CLI does).
    pub seed: u64,
    /// Queue backfilling.
    pub backfill: bool,
    /// Simulation horizon, sim seconds.
    pub max_sim_secs: f64,
}

/// The integrity block: counters a restored session must reproduce.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SnapshotCheck {
    /// Observer events published since session start.
    pub events_published: u64,
    /// Event-queue pushes.
    pub pushed: u64,
    /// Event-queue pops (stale discards included).
    pub popped: u64,
    /// Stale keyed entries discarded.
    pub stale_drops: u64,
    /// Jobs ever submitted.
    pub jobs_submitted: u64,
    /// Jobs completed.
    pub jobs_finished: u64,
    /// Jobs failed terminally (cancellations included).
    pub jobs_failed: u64,
    /// Sim clock at the snapshot, seconds.
    pub clock_secs: f64,
}

/// A complete `pdpa-snapshot/v1` document.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Protocol version of the writer (frames and vocabulary).
    pub proto: u64,
    /// Engine identity.
    pub config: SnapshotConfig,
    /// True when the daemon had stopped admitting (post-`drain`).
    pub draining: bool,
    /// Furthest instant the session was driven to, sim seconds.
    pub barrier_secs: f64,
    /// Ordered journal of accepted mutations.
    pub ops: Vec<Op>,
    /// Counters the restore must reproduce.
    pub check: SnapshotCheck,
}

impl Snapshot {
    /// Serializes the snapshot as one JSON document (plus trailing
    /// newline, so the file is a well-formed text file).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.ops.len() * 64);
        let _ = write!(
            out,
            "{{\"format\":\"{SNAPSHOT_FORMAT}\",\"proto\":{},",
            self.proto
        );
        out.push_str("\"config\":{\"policy\":");
        push_str_escaped(&mut out, &self.config.policy);
        let _ = write!(
            out,
            ",\"cpus\":{},\"seed\":{},\"backfill\":{},\"max_sim_secs\":{}}}",
            self.config.cpus,
            self.config.seed,
            self.config.backfill,
            fmt_f64(self.config.max_sim_secs)
        );
        let _ = write!(
            out,
            ",\"draining\":{},\"barrier_secs\":{},\"ops\":[",
            self.draining,
            fmt_f64(self.barrier_secs)
        );
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            op.push_json(&mut out);
        }
        let c = &self.check;
        let _ = write!(
            out,
            "],\"check\":{{\"events_published\":{},\"pushed\":{},\"popped\":{},\
             \"stale_drops\":{},\"jobs_submitted\":{},\"jobs_finished\":{},\
             \"jobs_failed\":{},\"clock_secs\":{}}}}}",
            c.events_published,
            c.pushed,
            c.popped,
            c.stale_drops,
            c.jobs_submitted,
            c.jobs_finished,
            c.jobs_failed,
            fmt_f64(c.clock_secs)
        );
        out.push('\n');
        out
    }

    /// Parses a snapshot document, refusing unknown formats and frames
    /// from a newer protocol than this build speaks.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let doc = Json::parse(text.trim_end())?;
        let format = doc
            .get("format")
            .and_then(Json::as_str)
            .ok_or("snapshot missing 'format'")?;
        if format != SNAPSHOT_FORMAT {
            return Err(format!(
                "unsupported snapshot format '{format}' (this build reads {SNAPSHOT_FORMAT})"
            ));
        }
        let proto = doc
            .get("proto")
            .and_then(Json::as_u64)
            .ok_or("snapshot missing 'proto'")?;
        if proto > PROTO_VERSION {
            return Err(format!(
                "snapshot written by proto v{proto}, this build speaks v{PROTO_VERSION}"
            ));
        }
        let cfg = doc.get("config").ok_or("snapshot missing 'config'")?;
        let config = SnapshotConfig {
            policy: cfg
                .get("policy")
                .and_then(Json::as_str)
                .ok_or("config missing 'policy'")?
                .to_string(),
            cpus: cfg
                .get("cpus")
                .and_then(Json::as_u64)
                .ok_or("config missing 'cpus'")? as usize,
            seed: cfg
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("config missing 'seed'")?,
            backfill: matches!(cfg.get("backfill"), Some(Json::Bool(true))),
            max_sim_secs: cfg
                .get("max_sim_secs")
                .and_then(Json::as_f64)
                .ok_or("config missing 'max_sim_secs'")?,
        };
        let barrier_secs = doc
            .get("barrier_secs")
            .and_then(Json::as_f64)
            .ok_or("snapshot missing 'barrier_secs'")?;
        let ops = doc
            .get("ops")
            .and_then(Json::as_arr)
            .ok_or("snapshot missing 'ops'")?
            .iter()
            .map(Op::parse)
            .collect::<Result<Vec<_>, _>>()?;
        let chk = doc.get("check").ok_or("snapshot missing 'check'")?;
        let count = |key: &str| -> Result<u64, String> {
            chk.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("check missing '{key}'"))
        };
        let check = SnapshotCheck {
            events_published: count("events_published")?,
            pushed: count("pushed")?,
            popped: count("popped")?,
            stale_drops: count("stale_drops")?,
            jobs_submitted: count("jobs_submitted")?,
            jobs_finished: count("jobs_finished")?,
            jobs_failed: count("jobs_failed")?,
            clock_secs: chk
                .get("clock_secs")
                .and_then(Json::as_f64)
                .ok_or("check missing 'clock_secs'")?,
        };
        Ok(Snapshot {
            proto,
            config,
            draining: matches!(doc.get("draining"), Some(Json::Bool(true))),
            barrier_secs,
            ops,
            check,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            proto: PROTO_VERSION,
            config: SnapshotConfig {
                policy: "pdpa".to_string(),
                cpus: 32,
                seed: 42,
                backfill: true,
                max_sim_secs: 600_000.0,
            },
            draining: false,
            barrier_secs: 1234.5,
            ops: vec![
                Op::Submit {
                    at_secs: 0.0,
                    class: "swim".to_string(),
                    request: Some(16),
                    work_secs: None,
                },
                Op::Submit {
                    at_secs: 10.25,
                    class: "bt.A".to_string(),
                    request: None,
                    work_secs: Some(120.5),
                },
                Op::Cancel {
                    at_secs: 50.0,
                    job: 1,
                },
            ],
            check: SnapshotCheck {
                events_published: 999,
                pushed: 400,
                popped: 380,
                stale_drops: 3,
                jobs_submitted: 2,
                jobs_finished: 1,
                jobs_failed: 1,
                clock_secs: 1200.0,
            },
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample();
        let text = snap.to_json();
        assert!(text.ends_with('\n'));
        let back = Snapshot::parse(&text).expect("round trip");
        assert_eq!(back, snap);
    }

    #[test]
    fn rejects_foreign_formats_and_future_protos() {
        assert!(Snapshot::parse("{\"format\":\"something-else\"}").is_err());
        let future = sample().to_json().replace(
            &format!("\"proto\":{PROTO_VERSION},"),
            &format!("\"proto\":{},", PROTO_VERSION + 1),
        );
        let err = Snapshot::parse(&future).expect_err("future proto refused");
        assert!(err.contains("proto"), "got: {err}");
    }

    #[test]
    fn unknown_fields_are_ignored() {
        // Additive evolution: a v1 reader skips fields it does not know.
        let text = sample().to_json().replace(
            "\"draining\":false",
            "\"draining\":false,\"future_field\":[1,2]",
        );
        assert_eq!(Snapshot::parse(&text).expect("parses"), sample());
    }

    #[test]
    fn malformed_ops_fail_loudly() {
        for (needle, replacement) in [
            ("\"op\":\"submit\",\"at_secs\":0,", "\"op\":\"submit\","),
            ("\"op\":\"cancel\"", "\"op\":\"explode\""),
        ] {
            let text = sample().to_json().replace(needle, replacement);
            assert!(Snapshot::parse(&text).is_err(), "accepted: {replacement}");
        }
    }
}
