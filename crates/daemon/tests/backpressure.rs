//! Admission backpressure: the `queue_full` reject cycle.
//!
//! The recipe is deterministic by construction: a rigid first-fit policy
//! on a small machine, every job requesting the whole machine, pacing
//! off. The first submission occupies all CPUs; each subsequent one
//! queues; once the waiting count reaches the admission bound, submits
//! are rejected with `queue_full` and a retry hint — and rejected
//! submissions leave no trace in the journal. After time advances and
//! the queue empties, the same submit is accepted again.

use pdpa_daemon::{DaemonConfig, DaemonCore};
use pdpa_watch::{RequestKind, ResponseBody};

fn rigid_submit() -> RequestKind {
    RequestKind::Submit {
        class: "swim".to_string(),
        // The whole machine, so nothing backfills beside it.
        request: Some(8),
        // Short jobs, so the queue drains quickly once time moves.
        work_secs: Some(100.0),
    }
}

#[test]
fn queue_fills_rejects_then_drains_and_accepts_again() {
    let mut core = DaemonCore::new(DaemonConfig {
        policy: "rigid".to_string(),
        cpus: 8,
        max_queue: 2,
        time_scale: 0.0,
        retry_after_secs: 0.25,
        ..DaemonConfig::default()
    })
    .expect("core");

    // One running + two waiting fills the admission queue.
    for i in 0..3 {
        let body = core.handle(&rigid_submit(), 0.0);
        assert!(
            matches!(body, ResponseBody::Ack(_)),
            "submit {i} should be admitted, got {body:?}"
        );
    }
    assert_eq!(core.session().running_count(), 1);
    assert_eq!(core.session().waiting_count(), 2);
    let journal_before = core.journal().len();

    // The bound is reached: explicit backpressure with a retry hint.
    let body = core.handle(&rigid_submit(), 0.0);
    let ResponseBody::Reject(reject) = body else {
        panic!("expected queue_full reject, got {body:?}");
    };
    assert_eq!(reject.reason, "queue_full");
    assert_eq!(reject.retry_after_secs, Some(0.25));
    assert_eq!(
        core.journal().len(),
        journal_before,
        "rejected submissions must not be journaled"
    );

    // Let the queue drain, then the same submit is welcome again.
    core.advance_to(10_000.0);
    assert_eq!(core.session().waiting_count(), 0);
    assert_eq!(core.session().completed_count(), 3);
    let body = core.handle(&rigid_submit(), 0.0);
    let ResponseBody::Ack(ack) = body else {
        panic!("expected post-drain ack, got {body:?}");
    };
    assert_eq!(ack.job, Some(3), "job ids keep counting past rejections");
}

#[test]
fn jobs_total_tracks_admissions_not_rejections() {
    let mut core = DaemonCore::new(DaemonConfig {
        policy: "rigid".to_string(),
        cpus: 8,
        max_queue: 1,
        time_scale: 0.0,
        ..DaemonConfig::default()
    })
    .expect("core");
    let tap = core.tap();
    core.handle(&rigid_submit(), 0.0);
    core.handle(&rigid_submit(), 0.0);
    assert_eq!(tap.status_body().jobs_total, 2);
    let rejected = core.handle(&rigid_submit(), 0.0);
    assert!(matches!(rejected, ResponseBody::Reject(_)));
    assert_eq!(
        tap.status_body().jobs_total,
        2,
        "a rejected submit must not grow the advertised workload"
    );
}
