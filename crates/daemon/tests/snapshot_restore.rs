//! The tentpole invariant of `pdpad`: a daemon killed mid-workload and
//! restored from its snapshot emits a decision-event stream *byte
//! identical* to a daemon that was never interrupted.
//!
//! The recipe: drive one daemon through a scripted op sequence to
//! completion (the reference stream), drive a second daemon through the
//! same prefix, snapshot-and-drop it, restore a third from the snapshot
//! file, drive it through the remaining ops, and require
//! `cat pre.stream continuation.stream == reference.stream` exactly.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use pdpa_daemon::{DaemonConfig, DaemonCore, Op};
use pdpa_watch::{RequestKind, ResponseBody};

static NEXT_DIR: AtomicU32 = AtomicU32::new(0);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pdpa-daemon-{name}-{}-{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn config(stream: &std::path::Path) -> DaemonConfig {
    DaemonConfig {
        policy: "pdpa".to_string(),
        cpus: 16,
        seed: 7,
        time_scale: 0.0,
        stream_path: Some(stream.to_string_lossy().into_owned()),
        ..DaemonConfig::default()
    }
}

fn submit(core: &mut DaemonCore, class: &str, request: Option<u64>, work: Option<f64>) -> u64 {
    let body = core.handle(
        &RequestKind::Submit {
            class: class.to_string(),
            request,
            work_secs: work,
        },
        0.0,
    );
    match body {
        ResponseBody::Ack(ack) => ack.job.expect("submit ack carries the job id"),
        other => panic!("submit rejected: {other:?}"),
    }
}

/// The scripted workload, split at the snapshot point. Phase one mixes
/// classes, request overrides, work rescaling, time movement, and a
/// cancellation; phase two admits more work on top of the restored state
/// and drains.
fn phase_one(core: &mut DaemonCore) {
    submit(core, "swim", None, None);
    submit(core, "bt.A", Some(8), None);
    core.advance_to(500.0);
    submit(core, "apsi", None, Some(4_000.0));
    // Long enough to still be alive at the cancellation instant.
    let hydro = submit(core, "hydro2d", Some(4), Some(50_000.0));
    core.advance_to(2_000.0);
    let body = core.handle(&RequestKind::Cancel { job: hydro }, 0.0);
    assert!(matches!(body, ResponseBody::Ack(_)), "cancel: {body:?}");
    core.advance_to(3_000.0);
}

fn phase_two(core: &mut DaemonCore) {
    submit(core, "swim", Some(2), Some(1_500.0));
    submit(core, "bt.A", None, None);
    core.advance_to(10_000.0);
    let body = core.handle(&RequestKind::Drain, 0.0);
    assert!(matches!(body, ResponseBody::Ack(_)), "drain: {body:?}");
}

#[test]
fn restored_daemon_reproduces_the_uninterrupted_stream_byte_for_byte() {
    let dir = scratch_dir("restore");
    let reference = dir.join("reference.stream");
    let pre = dir.join("pre.stream");
    let cont = dir.join("continuation.stream");
    let snap = dir.join("mid.snapshot");

    // Uninterrupted reference run.
    let mut full = DaemonCore::new(config(&reference)).expect("reference core");
    phase_one(&mut full);
    phase_two(&mut full);
    assert!(full.session().all_done(), "reference drained");
    full.flush_stream();

    // Interrupted run: phase one, snapshot, and "kill" (drop).
    let mut first = DaemonCore::new(config(&pre)).expect("first core");
    phase_one(&mut first);
    let body = first.handle(
        &RequestKind::Shutdown {
            snapshot: Some(snap.to_string_lossy().into_owned()),
        },
        0.0,
    );
    assert!(matches!(body, ResponseBody::Ack(_)), "shutdown: {body:?}");
    let ops_at_snapshot = first.journal().len();
    drop(first);

    // Restore and run the remainder.
    let mut second = DaemonCore::restore(&snap.to_string_lossy(), config(&cont))
        .expect("restore succeeds, integrity check included");
    assert_eq!(
        second.journal().len(),
        ops_at_snapshot,
        "the journal survives the restore"
    );
    phase_two(&mut second);
    assert!(second.session().all_done(), "restored run drained");
    second.flush_stream();

    let reference_bytes = std::fs::read(&reference).expect("reference stream");
    let pre_bytes = std::fs::read(&pre).expect("pre stream");
    let cont_bytes = std::fs::read(&cont).expect("continuation stream");
    assert!(!reference_bytes.is_empty(), "reference stream has events");
    assert!(
        !pre_bytes.is_empty() && !cont_bytes.is_empty(),
        "the snapshot point falls strictly inside the stream"
    );
    let stitched = [pre_bytes.as_slice(), cont_bytes.as_slice()].concat();
    assert_eq!(
        stitched, reference_bytes,
        "pre + continuation must equal the uninterrupted stream byte for byte"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_refuses_a_tampered_snapshot() {
    let dir = scratch_dir("tamper");
    let snap = dir.join("run.snapshot");

    let mut core = DaemonCore::new(DaemonConfig {
        policy: "equip".to_string(),
        cpus: 8,
        time_scale: 0.0,
        ..DaemonConfig::default()
    })
    .expect("core");
    submit(&mut core, "swim", None, Some(1_000.0));
    core.advance_to(400.0);
    core.snapshot_to(&snap.to_string_lossy()).expect("snapshot");

    // Flip a check counter: the rebuilt session can no longer match.
    let text = std::fs::read_to_string(&snap).expect("snapshot text");
    let needle = "\"jobs_submitted\":1";
    assert!(text.contains(needle), "snapshot shape changed: {text}");
    std::fs::write(&snap, text.replace(needle, "\"jobs_submitted\":2")).expect("tamper");

    let err = DaemonCore::restore(&snap.to_string_lossy(), DaemonConfig::default())
        .expect_err("tampered snapshot must fail the integrity check");
    assert!(err.contains("integrity"), "got: {err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_restores_draining_state_and_registry() {
    let dir = scratch_dir("drain-state");
    let snap = dir.join("drained.snapshot");

    let mut core = DaemonCore::new(DaemonConfig {
        time_scale: 0.0,
        ..DaemonConfig::default()
    })
    .expect("core");
    let job = submit(&mut core, "apsi", Some(6), Some(2_000.0));
    core.handle(&RequestKind::Drain, 0.0);
    core.snapshot_to(&snap.to_string_lossy()).expect("snapshot");
    drop(core);

    let mut restored =
        DaemonCore::restore(&snap.to_string_lossy(), DaemonConfig::default()).expect("restore");
    assert!(restored.draining(), "drain survives the snapshot");
    let body = restored.handle(&RequestKind::Job { job }, 0.0);
    let ResponseBody::Job(row) = body else {
        panic!("expected job row, got {body:?}");
    };
    assert_eq!(row.state, "done");
    assert_eq!(row.class, "apsi");
    assert_eq!(row.request, 6);
    // Matches the Op journal the snapshot carried.
    assert_eq!(
        restored.journal(),
        &[Op::Submit {
            at_secs: 0.0,
            class: "apsi".to_string(),
            request: Some(6),
            work_secs: Some(2_000.0),
        }]
    );

    let _ = std::fs::remove_dir_all(&dir);
}
