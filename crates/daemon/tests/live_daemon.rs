//! End-to-end: a real `pdpad` on a real socket.
//!
//! Covers the acceptance criterion that the *unmodified* v1 query
//! vocabulary (`status`, `progress`, `health`, `tail`) works against a
//! daemon — a pre-daemon `pdpa watch` client needs no changes — plus the
//! v2 control cycle over TCP: hello, submit, jobs/job, cancel, drain,
//! shutdown.
//!
//! The daemon's session is not `Send` (policies and observers are plain
//! single-threaded trait objects), so like the CLI these tests run the
//! serve loop on the current thread and drive the client from a spawned
//! one.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::panic::AssertUnwindSafe;
use std::time::Duration;

use pdpa_daemon::{bind_daemon, DaemonConfig};
use pdpa_watch::{Request, RequestKind, Response, ResponseBody, RunState, PROTO_VERSION};

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to pdpad");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
            next_id: 0,
        }
    }

    fn ask(&mut self, kind: RequestKind) -> ResponseBody {
        self.next_id += 1;
        let request = Request {
            id: self.next_id,
            kind,
        };
        self.writer
            .write_all(format!("{}\n", request.to_line()).as_bytes())
            .expect("send request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        let response = Response::parse_line(line.trim_end()).expect("parse response");
        assert_eq!(response.id, request.id, "correlation id echoes");
        response.body
    }
}

/// Best-effort shutdown so a failed client assertion cannot leave the
/// serve loop (and the test) hanging.
fn try_shutdown(addr: &str) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let line = Request {
            id: u64::MAX,
            kind: RequestKind::Shutdown { snapshot: None },
        }
        .to_line();
        let _ = stream.write_all(format!("{line}\n").as_bytes());
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut buf = String::new();
        let _ = BufReader::new(stream).read_line(&mut buf);
    }
}

/// Binds a daemon, runs its serve loop here, and drives `script` against
/// it from a client thread. Returns the daemon's closing summary.
fn with_daemon(
    config: DaemonConfig,
    restore: Option<&str>,
    script: impl FnOnce(&mut Client) + Send + 'static,
) -> String {
    let daemon = bind_daemon(config, restore, "127.0.0.1:0").expect("bind pdpad");
    let addr = daemon.local_addr();
    let client_addr = addr.clone();
    let client = std::thread::spawn(move || {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut client = Client::connect(&client_addr);
            script(&mut client);
        }));
        if outcome.is_err() {
            try_shutdown(&client_addr);
        }
        outcome
    });
    let summary = daemon.run().expect("daemon serve loop");
    match client.join().expect("client thread") {
        Ok(()) => summary,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

fn quiet() -> DaemonConfig {
    DaemonConfig {
        time_scale: 0.0,
        ..DaemonConfig::default()
    }
}

fn submit(class: &str) -> RequestKind {
    RequestKind::Submit {
        class: class.to_string(),
        request: None,
        work_secs: Some(500.0),
    }
}

#[test]
fn daemon_serves_v1_queries_and_v2_control_over_tcp() {
    let summary = with_daemon(quiet(), None, |client| {
        // hello: the daemon identifies itself and its protocol.
        let ResponseBody::Hello(hello) = client.ask(RequestKind::Hello) else {
            panic!("expected hello body");
        };
        assert_eq!(hello.server, "pdpad");
        assert_eq!(hello.proto, PROTO_VERSION);
        assert_eq!(hello.state, RunState::Running);

        // Admit work, then interrogate it.
        let ResponseBody::Ack(ack) = client.ask(submit("swim")) else {
            panic!("expected submit ack");
        };
        assert_eq!(ack.job, Some(0));
        let ResponseBody::Ack(_) = client.ask(submit("apsi")) else {
            panic!("expected second ack");
        };

        // The unmodified v1 query subset, served on the same socket.
        let ResponseBody::Status(status) = client.ask(RequestKind::Status) else {
            panic!("expected status body");
        };
        assert_eq!(status.proto, PROTO_VERSION);
        assert_eq!(status.jobs_total, 2, "admissions grow the live total");
        assert_eq!(status.state, RunState::Running);
        let ResponseBody::Progress(_) = client.ask(RequestKind::Progress) else {
            panic!("expected progress body");
        };
        let ResponseBody::Health(_) = client.ask(RequestKind::Health) else {
            panic!("expected health body");
        };
        let ResponseBody::Tail(tail) = client.ask(RequestKind::Tail { n: 16 }) else {
            panic!("expected tail body");
        };
        assert!(
            !tail.events.is_empty(),
            "submissions published observer events into the ring"
        );

        // Registry queries.
        let ResponseBody::Jobs(rows) = client.ask(RequestKind::Jobs { n: 10 }) else {
            panic!("expected jobs body");
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].class, "swim");
        let ResponseBody::Job(row) = client.ask(RequestKind::Job { job: 1 }) else {
            panic!("expected job body");
        };
        assert_eq!(row.job, 1);
        let ResponseBody::Reject(reject) = client.ask(RequestKind::Job { job: 99 }) else {
            panic!("expected unknown_job reject");
        };
        assert_eq!(reject.reason, "unknown_job");

        // Cancel one, drain the rest.
        let ResponseBody::Ack(ack) = client.ask(RequestKind::Cancel { job: 1 }) else {
            panic!("expected cancel ack");
        };
        assert_eq!(ack.job, Some(1));
        let ResponseBody::Ack(_) = client.ask(RequestKind::Drain) else {
            panic!("expected drain ack");
        };
        let ResponseBody::Job(row) = client.ask(RequestKind::Job { job: 0 }) else {
            panic!("expected job row after drain");
        };
        assert_eq!(row.state, "done");
        let ResponseBody::Job(row) = client.ask(RequestKind::Job { job: 1 }) else {
            panic!("expected cancelled row");
        };
        assert_eq!(row.state, "cancelled");

        // A draining daemon refuses new work with the stable code.
        let ResponseBody::Reject(reject) = client.ask(submit("swim")) else {
            panic!("expected draining reject");
        };
        assert_eq!(reject.reason, "draining");

        // Shutdown: acknowledged, then the serve loop returns.
        let ResponseBody::Ack(_) = client.ask(RequestKind::Shutdown { snapshot: None }) else {
            panic!("expected shutdown ack");
        };
    });
    assert!(summary.contains("pdpad: shut down"), "got: {summary}");
    assert!(summary.contains("2 jobs"), "got: {summary}");
}

#[test]
fn snapshot_over_the_wire_restores_into_a_new_daemon() {
    let dir = std::env::temp_dir().join(format!("pdpa-daemon-wire-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let snap = dir.join("wire.snapshot");
    let snap_str = snap.to_string_lossy().into_owned();

    let script_snap = snap_str.clone();
    with_daemon(quiet(), None, move |client| {
        client.ask(submit("swim"));
        client.ask(submit("bt.A"));
        let ResponseBody::Ack(ack) = client.ask(RequestKind::Snapshot {
            path: Some(script_snap.clone()),
        }) else {
            panic!("expected snapshot ack");
        };
        assert_eq!(ack.info.as_deref(), Some(script_snap.as_str()));
        client.ask(RequestKind::Shutdown { snapshot: None });
    });

    // The snapshot file restores into a fresh daemon that still knows
    // both jobs and finishes them.
    with_daemon(quiet(), Some(&snap_str), |client| {
        let ResponseBody::Status(status) = client.ask(RequestKind::Status) else {
            panic!("expected status");
        };
        assert_eq!(status.jobs_total, 2, "restored daemon knows both jobs");
        let ResponseBody::Ack(_) = client.ask(RequestKind::Drain) else {
            panic!("expected drain ack");
        };
        let ResponseBody::Job(row) = client.ask(RequestKind::Job { job: 1 }) else {
            panic!("expected job row");
        };
        assert_eq!(row.state, "done");
        client.ask(RequestKind::Shutdown { snapshot: None });
    });

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hello_answers_even_without_a_serve_loop() {
    // `hello` is answered on the connection thread, not by the core, so
    // liveness probes work even while the core is busy (here: not
    // running at all).
    let daemon = bind_daemon(quiet(), None, "127.0.0.1:0").expect("bind");
    let addr = daemon.local_addr();
    let mut client = Client::connect(&addr);
    let ResponseBody::Hello(hello) = client.ask(RequestKind::Hello) else {
        panic!("expected hello without a serve loop");
    };
    assert_eq!(hello.server, "pdpad");
    drop(client);
    drop(daemon);
}
