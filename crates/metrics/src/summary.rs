//! Aggregation of job outcomes into the paper's reported quantities.

use pdpa_apps::AppClass;

use crate::outcome::JobOutcome;

/// Mean response and execution time of one application class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassAverages {
    /// Jobs of the class that completed.
    pub count: usize,
    /// Mean response time, seconds.
    pub avg_response_secs: f64,
    /// Mean execution time, seconds.
    pub avg_execution_secs: f64,
    /// Mean wait time, seconds.
    pub avg_wait_secs: f64,
}

/// Aggregated results of one workload execution under one policy.
#[derive(Clone, Debug)]
pub struct Summary {
    outcomes: Vec<JobOutcome>,
}

impl Summary {
    /// Builds a summary over completed jobs.
    pub fn new(outcomes: Vec<JobOutcome>) -> Self {
        Summary { outcomes }
    }

    /// All outcomes.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Number of completed jobs.
    pub fn jobs(&self) -> usize {
        self.outcomes.len()
    }

    /// Averages for one application class, if any jobs of it completed.
    pub fn class_averages(&self, class: AppClass) -> Option<ClassAverages> {
        let of_class: Vec<&JobOutcome> =
            self.outcomes.iter().filter(|o| o.class == class).collect();
        if of_class.is_empty() {
            return None;
        }
        let n = of_class.len() as f64;
        Some(ClassAverages {
            count: of_class.len(),
            avg_response_secs: of_class
                .iter()
                .map(|o| o.response_time().as_secs())
                .sum::<f64>()
                / n,
            avg_execution_secs: of_class
                .iter()
                .map(|o| o.execution_time().as_secs())
                .sum::<f64>()
                / n,
            avg_wait_secs: of_class
                .iter()
                .map(|o| o.wait_time().as_secs())
                .sum::<f64>()
                / n,
        })
    }

    /// The workload execution time (makespan): completion of the last job.
    /// Zero when nothing completed.
    pub fn makespan_secs(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.end.as_secs())
            .fold(0.0, f64::max)
    }

    /// Mean response time over every job, regardless of class.
    pub fn overall_avg_response_secs(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.response_time().as_secs())
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Mean slowdown of a class: response time over execution time (≥ 1;
    /// 1 means no queueing or interference delay). A standard metric in the
    /// parallel job-scheduling literature.
    pub fn avg_slowdown(&self, class: AppClass) -> Option<f64> {
        let ratios: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.class == class && o.execution_time().as_secs() > 0.0)
            .map(|o| o.response_time().as_secs() / o.execution_time().as_secs())
            .collect();
        if ratios.is_empty() {
            None
        } else {
            Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of response times across every job,
    /// by nearest-rank. `None` when nothing completed.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn response_quantile_secs(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.outcomes.is_empty() {
            return None;
        }
        let mut times: Vec<f64> = self
            .outcomes
            .iter()
            .map(|o| o.response_time().as_secs())
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let rank = ((q * times.len() as f64).ceil() as usize).clamp(1, times.len());
        Some(times[rank - 1])
    }

    /// Classes present in the summary, in paper order.
    pub fn classes(&self) -> Vec<AppClass> {
        AppClass::ALL
            .into_iter()
            .filter(|&c| self.outcomes.iter().any(|o| o.class == c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_sim::{JobId, SimTime};

    fn outcome(id: u32, class: AppClass, submit: f64, start: f64, end: f64) -> JobOutcome {
        JobOutcome {
            job: JobId(id),
            class,
            submit: SimTime::from_secs(submit),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
        }
    }

    fn summary() -> Summary {
        Summary::new(vec![
            outcome(0, AppClass::BtA, 0.0, 0.0, 100.0),
            outcome(1, AppClass::BtA, 10.0, 30.0, 150.0),
            outcome(2, AppClass::Apsi, 5.0, 5.0, 110.0),
        ])
    }

    #[test]
    fn class_averages() {
        let s = summary();
        let bt = s.class_averages(AppClass::BtA).unwrap();
        assert_eq!(bt.count, 2);
        assert!((bt.avg_response_secs - 120.0).abs() < 1e-12); // (100 + 140)/2
        assert!((bt.avg_execution_secs - 110.0).abs() < 1e-12); // (100 + 120)/2
        assert!((bt.avg_wait_secs - 10.0).abs() < 1e-12); // (0 + 20)/2
        assert!(s.class_averages(AppClass::Swim).is_none());
    }

    #[test]
    fn makespan_is_last_completion() {
        assert_eq!(summary().makespan_secs(), 150.0);
        assert_eq!(Summary::new(Vec::new()).makespan_secs(), 0.0);
    }

    #[test]
    fn overall_average() {
        let s = summary();
        // Responses: 100, 140, 105.
        assert!((s.overall_avg_response_secs() - 115.0).abs() < 1e-12);
        assert_eq!(Summary::new(Vec::new()).overall_avg_response_secs(), 0.0);
    }

    #[test]
    fn classes_in_paper_order() {
        assert_eq!(summary().classes(), vec![AppClass::BtA, AppClass::Apsi]);
    }

    #[test]
    fn slowdown_is_response_over_execution() {
        let s = summary();
        // bt jobs: 100/100 = 1 and 140/120 ≈ 1.1667 → mean ≈ 1.0833.
        let sd = s.avg_slowdown(AppClass::BtA).unwrap();
        assert!((sd - (1.0 + 140.0 / 120.0) / 2.0).abs() < 1e-12);
        assert!(s.avg_slowdown(AppClass::Swim).is_none());
    }

    #[test]
    fn response_quantiles_by_nearest_rank() {
        let s = summary(); // responses 100, 140, 105 → sorted 100, 105, 140
        assert_eq!(s.response_quantile_secs(0.0), Some(100.0));
        assert_eq!(s.response_quantile_secs(0.5), Some(105.0));
        assert_eq!(s.response_quantile_secs(1.0), Some(140.0));
        assert_eq!(Summary::new(Vec::new()).response_quantile_secs(0.5), None);
    }
}
