//! Per-job outcomes.

use pdpa_apps::AppClass;
use pdpa_sim::{JobId, SimDuration, SimTime};

/// The lifecycle timestamps of one completed job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobOutcome {
    /// The job.
    pub job: JobId,
    /// Its application class.
    pub class: AppClass,
    /// Submission instant (enters the queuing system).
    pub submit: SimTime,
    /// Start instant (first processors assigned).
    pub start: SimTime,
    /// Completion instant.
    pub end: SimTime,
}

impl JobOutcome {
    /// Response time: submission to completion (§1 — "the period of time
    /// that starts when the application is submitted and finishes when the
    /// application completes").
    pub fn response_time(&self) -> SimDuration {
        self.end.since(self.submit)
    }

    /// Execution time: start to completion.
    pub fn execution_time(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Wait time: submission to start.
    pub fn wait_time(&self) -> SimDuration {
        self.start.since(self.submit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition() {
        let o = JobOutcome {
            job: JobId(1),
            class: AppClass::BtA,
            submit: SimTime::from_secs(10.0),
            start: SimTime::from_secs(25.0),
            end: SimTime::from_secs(125.0),
        };
        assert_eq!(o.response_time().as_secs(), 115.0);
        assert_eq!(o.execution_time().as_secs(), 100.0);
        assert_eq!(o.wait_time().as_secs(), 15.0);
        // Response = wait + execution.
        assert_eq!(
            o.response_time().as_secs(),
            o.wait_time().as_secs() + o.execution_time().as_secs()
        );
    }
}
