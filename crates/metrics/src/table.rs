//! Fixed-width report tables for the experiment binaries.

/// The improvement of `ours` over `base` as the paper reports it: how many
/// percent *more time* the baseline takes. `improvement_pct(100, 700) = 600`
/// reads "PDPA outperforms the baseline by 600 %". Negative values mean
/// `ours` is slower.
pub fn improvement_pct(ours_secs: f64, base_secs: f64) -> f64 {
    if ours_secs <= 0.0 {
        return 0.0;
    }
    (base_secs / ours_secs - 1.0) * 100.0
}

/// Formats one table row: a label followed by right-aligned cells.
pub fn format_row(label: &str, cells: &[String], cell_width: usize) -> String {
    let mut row = format!("{label:<16}");
    for cell in cells {
        row.push_str(&format!("{cell:>width$}", width = cell_width.max(4)));
    }
    row
}

/// Builds aligned text tables with a header row.
#[derive(Clone, Debug)]
pub struct TableBuilder {
    header: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
    cell_width: usize,
}

impl TableBuilder {
    /// Creates a table with the given column headers.
    pub fn new(columns: &[&str]) -> Self {
        TableBuilder {
            header: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            cell_width: 12,
        }
    }

    /// Overrides the cell width.
    pub fn cell_width(mut self, width: usize) -> Self {
        self.cell_width = width;
        self
    }

    /// Adds a row of preformatted cells.
    pub fn row(&mut self, label: &str, cells: Vec<String>) -> &mut Self {
        self.rows.push((label.to_string(), cells));
        self
    }

    /// Adds a row of seconds values, formatted to one decimal.
    pub fn row_secs(&mut self, label: &str, values: &[f64]) -> &mut Self {
        self.row(label, values.iter().map(|v| format!("{v:.1}")).collect())
    }

    /// Renders the table.
    pub fn build(&self) -> String {
        let mut out = format_row(
            "",
            &self.header.iter().map(String::clone).collect::<Vec<_>>(),
            self.cell_width,
        );
        out.push('\n');
        let width = out.len().saturating_sub(1);
        out.push_str(&"-".repeat(width));
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format_row(label, cells, self.cell_width));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_matches_paper_arithmetic() {
        // Table 3: Equip 949 s vs PDPA 95 s ≈ 900 % (the paper prints 998 %
        // from unrounded values).
        let pct = improvement_pct(95.0, 949.0);
        assert!((pct - 898.9).abs() < 0.1, "{pct}");
        // Slower case reports negative.
        assert!(improvement_pct(10.0, 8.0) < 0.0);
        // Degenerate numerator.
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn rows_align() {
        let r = format_row("PDPA", &["1.0".into(), "2.0".into()], 8);
        assert!(r.starts_with("PDPA"));
        assert!(r.ends_with("     2.0"));
    }

    #[test]
    fn table_builds() {
        let mut t = TableBuilder::new(&["load60", "load80", "load100"]).cell_width(10);
        t.row_secs("PDPA", &[1.0, 2.0, 3.0]);
        t.row_secs("Equip", &[1.5, 2.5, 3.5]);
        let s = t.build();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("load100"));
        assert!(lines[2].starts_with("PDPA"));
        assert!(lines[3].contains("3.5"));
    }
}
