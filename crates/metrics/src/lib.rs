//! Workload metrics: response times, execution times, and report tables.
//!
//! The paper's evaluation reports, per scheduling policy and application
//! class, the **average response time** ("the period of time that starts
//! when the application is submitted and finishes when the application
//! completes") and the **average execution time** (start to completion),
//! plus workload-level quantities: makespan, utilization, and the
//! multiprogramming-level history of Fig. 8.

pub mod outcome;
pub mod summary;
pub mod table;

pub use outcome::JobOutcome;
pub use summary::{ClassAverages, Summary};
pub use table::{format_row, improvement_pct, TableBuilder};
