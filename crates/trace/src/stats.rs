//! Burst and migration statistics (Table 2).

use crate::record::Trace;

/// The Table-2 statistics of one traced run: migrations, average burst
/// duration per CPU, and average number of bursts per CPU.
///
/// # Examples
///
/// ```
/// use pdpa_sim::{CpuId, JobId, SimTime};
/// use pdpa_trace::{BurstStats, TraceCollector};
///
/// let mut collector = TraceCollector::new(2);
/// collector.assign(CpuId(0), Some(JobId(1)), SimTime::ZERO);
/// let trace = collector.finish(SimTime::from_secs(10.0));
/// let stats = BurstStats::from_trace(&trace, 0);
/// assert_eq!(stats.total_bursts, 1);
/// assert_eq!(stats.avg_burst_secs, 10.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstStats {
    /// Total thread migrations during the run (supplied by the execution
    /// model — the machine's migration counter under space sharing, the
    /// per-quantum placement model under time sharing).
    pub migrations: u64,
    /// Mean burst duration in seconds, over all bursts.
    pub avg_burst_secs: f64,
    /// Mean number of bursts per CPU.
    pub avg_bursts_per_cpu: f64,
    /// Total bursts in the trace.
    pub total_bursts: usize,
}

impl BurstStats {
    /// Computes burst statistics from a finished trace, attaching the
    /// externally counted `migrations`.
    pub fn from_trace(trace: &Trace, migrations: u64) -> Self {
        let total_bursts = trace.records.len();
        let total_secs: f64 = trace.records.iter().map(|r| r.duration_secs()).sum();
        let avg_burst_secs = if total_bursts == 0 {
            0.0
        } else {
            total_secs / total_bursts as f64
        };
        let avg_bursts_per_cpu = if trace.n_cpus == 0 {
            0.0
        } else {
            total_bursts as f64 / trace.n_cpus as f64
        };
        BurstStats {
            migrations,
            avg_burst_secs,
            avg_bursts_per_cpu,
            total_bursts,
        }
    }

    /// Formats the stats as a Table-2 row: `migrations | avg burst (ms) |
    /// avg bursts/cpu`.
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "{:<8} {:>12} {:>18.0} {:>16.0}",
            label,
            self.migrations,
            self.avg_burst_secs * 1_000.0,
            self.avg_bursts_per_cpu
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceCollector;
    use pdpa_sim::{CpuId, JobId, SimTime};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn stats_from_simple_trace() {
        let mut c = TraceCollector::new(2);
        c.assign(CpuId(0), Some(JobId(1)), t(0.0));
        c.assign(CpuId(0), Some(JobId(2)), t(4.0));
        c.assign(CpuId(1), Some(JobId(1)), t(0.0));
        let trace = c.finish(t(10.0));
        let s = BurstStats::from_trace(&trace, 7);
        assert_eq!(s.total_bursts, 3);
        assert_eq!(s.migrations, 7);
        // Bursts: 4 s, 6 s, 10 s → mean 20/3.
        assert!((s.avg_burst_secs - 20.0 / 3.0).abs() < 1e-12);
        assert!((s.avg_bursts_per_cpu - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zeroes() {
        let trace = TraceCollector::new(4).finish(t(1.0));
        let s = BurstStats::from_trace(&trace, 0);
        assert_eq!(s.total_bursts, 0);
        assert_eq!(s.avg_burst_secs, 0.0);
        assert_eq!(s.avg_bursts_per_cpu, 0.0);
    }

    #[test]
    fn table_row_contains_fields() {
        let s = BurstStats {
            migrations: 66,
            avg_burst_secs: 10.782,
            avg_bursts_per_cpu: 41.0,
            total_bursts: 2460,
        };
        let row = s.table_row("PDPA");
        assert!(row.contains("PDPA"));
        assert!(row.contains("66"));
        assert!(row.contains("10782"));
        assert!(row.contains("41"));
    }
}
