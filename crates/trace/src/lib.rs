//! Paraver-like execution tracing.
//!
//! The paper monitors workload executions with the `scpus` tracing tool and
//! visualizes them with Paraver: "each line represents the activity of a CPU
//! and each color represents a different application" (§5.1.1, Fig. 5), and
//! derives "the total number of process migrations, the duration of the
//! bursts executed by each cpu, and the number of bursts executed per cpu"
//! (Table 2).
//!
//! This crate is the equivalent instrumentation for the simulator:
//!
//! - [`TraceCollector`] records which job occupies each CPU over time;
//! - [`BurstStats`] computes the Table-2 statistics from a finished trace;
//! - [`render_ascii`] draws the Fig.-5 execution view as text;
//! - [`to_csv`] exports records for external plotting;
//! - [`to_paraver`] writes a Paraver `.prv` document for the real tool;
//! - [`from_paraver`] reads one back, diagnosing malformed input by line.

pub mod bridge;
pub mod paraver;
pub mod record;
pub mod render;
pub mod stats;

pub use bridge::TraceObserver;
pub use paraver::{from_paraver, to_paraver, ParaverError};
pub use record::{ActivityRecord, Trace, TraceCollector};
pub use render::{render_ascii, to_csv, RenderOptions};
pub use stats::BurstStats;
