//! Per-CPU activity records.

use pdpa_sim::{CpuId, JobId, SimTime};

/// One burst: a maximal interval during which a CPU continuously executed
/// the same job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivityRecord {
    /// The CPU.
    pub cpu: CpuId,
    /// The job it executed.
    pub job: JobId,
    /// Burst start.
    pub start: SimTime,
    /// Burst end.
    pub end: SimTime,
}

impl ActivityRecord {
    /// Burst length in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.end.since(self.start).as_secs()
    }
}

/// A finished trace: every burst of every CPU, plus machine metadata.
#[derive(Clone, Debug)]
pub struct Trace {
    /// All bursts, in completion order.
    pub records: Vec<ActivityRecord>,
    /// Number of CPUs in the machine.
    pub n_cpus: usize,
    /// The instant tracing stopped.
    pub end: SimTime,
}

impl Trace {
    /// Bursts of one CPU, in time order.
    pub fn bursts_of(&self, cpu: CpuId) -> impl Iterator<Item = &ActivityRecord> {
        self.records.iter().filter(move |r| r.cpu == cpu)
    }

    /// Total busy CPU-seconds in the trace.
    pub fn busy_cpu_seconds(&self) -> f64 {
        self.records.iter().map(ActivityRecord::duration_secs).sum()
    }

    /// Machine utilization over `[0, end]`: busy CPU-time over capacity.
    pub fn utilization(&self) -> f64 {
        let capacity = self.end.as_secs() * self.n_cpus as f64;
        if capacity == 0.0 {
            0.0
        } else {
            self.busy_cpu_seconds() / capacity
        }
    }
}

/// Collects per-CPU activity during a run.
///
/// The engine calls [`assign`] whenever a CPU's occupant changes; the
/// collector merges time into maximal same-job bursts automatically (an
/// `assign` to the job already running is a no-op).
///
/// [`assign`]: TraceCollector::assign
#[derive(Clone, Debug)]
pub struct TraceCollector {
    /// Open burst per CPU: `(job, start)`.
    open: Vec<Option<(JobId, SimTime)>>,
    records: Vec<ActivityRecord>,
    enabled: bool,
}

impl TraceCollector {
    /// Creates a collector for an `n_cpus` machine.
    pub fn new(n_cpus: usize) -> Self {
        TraceCollector {
            open: vec![None; n_cpus],
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled collector that records nothing (for runs where
    /// trace memory is not wanted).
    pub fn disabled(n_cpus: usize) -> Self {
        let mut c = Self::new(n_cpus);
        c.enabled = false;
        c
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the occupant of `cpu` at instant `now` (`None` = idle). Closes
    /// the previous burst if the occupant changed.
    pub fn assign(&mut self, cpu: CpuId, job: Option<JobId>, now: SimTime) {
        if !self.enabled {
            return;
        }
        let slot = &mut self.open[cpu.index()];
        match (*slot, job) {
            (Some((cur, _)), Some(new)) if cur == new => {} // unchanged
            (Some((cur, start)), _) => {
                if now > start {
                    self.records.push(ActivityRecord {
                        cpu,
                        job: cur,
                        start,
                        end: now,
                    });
                }
                *slot = job.map(|j| (j, now));
            }
            (None, Some(new)) => *slot = Some((new, now)),
            (None, None) => {}
        }
    }

    /// Closes every open burst and returns the finished trace.
    pub fn finish(mut self, now: SimTime) -> Trace {
        let n_cpus = self.open.len();
        for (i, slot) in self.open.iter_mut().enumerate() {
            if let Some((job, start)) = slot.take() {
                if now > start {
                    self.records.push(ActivityRecord {
                        cpu: CpuId(i as u16),
                        job,
                        start,
                        end: now,
                    });
                }
            }
        }
        Trace {
            records: self.records,
            n_cpus,
            end: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn merges_same_job_assignments() {
        let mut c = TraceCollector::new(2);
        c.assign(CpuId(0), Some(JobId(1)), t(0.0));
        c.assign(CpuId(0), Some(JobId(1)), t(5.0)); // no-op
        let trace = c.finish(t(10.0));
        assert_eq!(trace.records.len(), 1);
        assert_eq!(trace.records[0].duration_secs(), 10.0);
    }

    #[test]
    fn job_change_closes_burst() {
        let mut c = TraceCollector::new(1);
        c.assign(CpuId(0), Some(JobId(1)), t(0.0));
        c.assign(CpuId(0), Some(JobId(2)), t(4.0));
        let trace = c.finish(t(10.0));
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.records[0].job, JobId(1));
        assert_eq!(trace.records[0].duration_secs(), 4.0);
        assert_eq!(trace.records[1].job, JobId(2));
        assert_eq!(trace.records[1].duration_secs(), 6.0);
    }

    #[test]
    fn idle_gaps_are_not_recorded() {
        let mut c = TraceCollector::new(1);
        c.assign(CpuId(0), Some(JobId(1)), t(0.0));
        c.assign(CpuId(0), None, t(3.0));
        c.assign(CpuId(0), Some(JobId(1)), t(7.0));
        let trace = c.finish(t(10.0));
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.busy_cpu_seconds(), 6.0);
    }

    #[test]
    fn zero_length_bursts_are_dropped() {
        let mut c = TraceCollector::new(1);
        c.assign(CpuId(0), Some(JobId(1)), t(5.0));
        c.assign(CpuId(0), Some(JobId(2)), t(5.0));
        let trace = c.finish(t(5.0));
        assert!(trace.records.is_empty());
    }

    #[test]
    fn utilization() {
        let mut c = TraceCollector::new(2);
        c.assign(CpuId(0), Some(JobId(1)), t(0.0));
        // CPU 1 stays idle.
        let trace = c.finish(t(10.0));
        assert!((trace.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = TraceCollector::disabled(2);
        assert!(!c.is_enabled());
        c.assign(CpuId(0), Some(JobId(1)), t(0.0));
        let trace = c.finish(t(10.0));
        assert!(trace.records.is_empty());
    }

    #[test]
    fn bursts_of_filters_by_cpu() {
        let mut c = TraceCollector::new(2);
        c.assign(CpuId(0), Some(JobId(1)), t(0.0));
        c.assign(CpuId(1), Some(JobId(2)), t(0.0));
        let trace = c.finish(t(4.0));
        assert_eq!(trace.bursts_of(CpuId(0)).count(), 1);
        assert_eq!(trace.bursts_of(CpuId(1)).next().unwrap().job, JobId(2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under any assignment sequence with non-decreasing timestamps,
        /// the finished trace has (a) no overlapping bursts on any CPU,
        /// (b) only positive-length bursts, and (c) busy time equal to the
        /// sum of occupied intervals.
        #[test]
        fn collector_invariants(
            steps in proptest::collection::vec(
                (0u16..4, proptest::option::of(0u32..5), 0.0f64..3.0),
                0..60,
            )
        ) {
            let mut collector = TraceCollector::new(4);
            let mut now = 0.0f64;
            for (cpu, job, dt) in steps {
                now += dt;
                collector.assign(
                    CpuId(cpu),
                    job.map(JobId),
                    SimTime::from_secs(now),
                );
            }
            let trace = collector.finish(SimTime::from_secs(now + 1.0));
            for cpu in 0..4u16 {
                let mut bursts: Vec<&ActivityRecord> =
                    trace.bursts_of(CpuId(cpu)).collect();
                bursts.sort_by_key(|a| a.start);
                for r in &bursts {
                    prop_assert!(r.end > r.start, "zero/negative burst");
                }
                for pair in bursts.windows(2) {
                    prop_assert!(
                        pair[0].end <= pair[1].start,
                        "overlapping bursts on cpu{cpu}"
                    );
                }
            }
            let busy = trace.busy_cpu_seconds();
            prop_assert!(busy >= 0.0);
            prop_assert!(busy <= trace.end.as_secs() * 4.0 + 1e-9);
        }
    }
}
