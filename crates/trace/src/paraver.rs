//! Paraver trace export.
//!
//! The paper's traces were visualized with the Paraver tool (Labarta et
//! al.), whose `.prv` format is a text header plus one *state record* per
//! burst:
//!
//! ```text
//! #Paraver (dd/mm/yy at hh:mm):ftime:nNodes(cpu1,..):nAppl:appl1(...):...
//! 1:cpu:appl:task:thread:begin:end:state
//! ```
//!
//! [`to_paraver`] emits that shape for a finished [`Trace`]: each job maps
//! to one Paraver *application* with a single task/thread, each burst to a
//! state record with state 1 (running). Times are microseconds. The output
//! loads in Paraver/wxparaver for the same visual inspection the paper's
//! Fig. 5 performs.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::record::Trace;

/// Microseconds in a trace second.
const US: f64 = 1e6;

/// Serializes a trace as a Paraver `.prv` document.
pub fn to_paraver(trace: &Trace) -> String {
    let ftime = (trace.end.as_secs() * US).round() as u64;
    // Applications present, in first-appearance order of their ids.
    let jobs: BTreeSet<u32> = trace.records.iter().map(|r| r.job.0).collect();
    let n_appl = jobs.len();

    let mut out = String::new();
    // Header: one node containing all CPUs; every application has one task
    // with one thread on node 1.
    let _ = write!(
        out,
        "#Paraver (01/01/00 at 00:00):{ftime}:1({}):{n_appl}",
        trace.n_cpus
    );
    for _ in 0..n_appl {
        out.push_str(":1(1:1)");
    }
    out.push('\n');

    // Dense application numbering: Paraver applications are 1-based and
    // contiguous.
    let appl_of = |job: u32| -> usize { jobs.iter().position(|&j| j == job).expect("present") + 1 };

    // State records, ordered by begin time (stable for equal times).
    let mut records: Vec<_> = trace.records.iter().collect();
    records.sort_by(|a, b| a.start.cmp(&b.start).then_with(|| a.cpu.cmp(&b.cpu)));
    for r in records {
        let begin = (r.start.as_secs() * US).round() as u64;
        let end = (r.end.as_secs() * US).round() as u64;
        let _ = writeln!(
            out,
            "1:{}:{}:1:1:{}:{}:1",
            r.cpu.index() + 1,
            appl_of(r.job.0),
            begin,
            end
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceCollector;
    use pdpa_sim::{CpuId, JobId, SimTime};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample_trace() -> Trace {
        let mut c = TraceCollector::new(4);
        c.assign(CpuId(0), Some(JobId(7)), t(0.0));
        c.assign(CpuId(1), Some(JobId(3)), t(1.0));
        c.assign(CpuId(0), Some(JobId(3)), t(2.0));
        c.finish(t(4.0))
    }

    #[test]
    fn header_declares_machine_and_applications() {
        let prv = to_paraver(&sample_trace());
        let header = prv.lines().next().unwrap();
        assert!(header.starts_with("#Paraver "));
        assert!(header.contains(":4000000:"), "ftime 4 s in µs: {header}");
        assert!(
            header.contains(":1(4):2"),
            "one node of 4 cpus, 2 applications"
        );
    }

    #[test]
    fn one_state_record_per_burst() {
        let trace = sample_trace();
        let prv = to_paraver(&trace);
        let records: Vec<&str> = prv.lines().skip(1).collect();
        assert_eq!(records.len(), trace.records.len());
        for r in &records {
            let fields: Vec<&str> = r.split(':').collect();
            assert_eq!(fields.len(), 8, "record shape: {r}");
            assert_eq!(fields[0], "1", "state record type");
            assert_eq!(fields[7], "1", "running state");
        }
    }

    #[test]
    fn records_are_time_ordered_with_dense_applications() {
        let prv = to_paraver(&sample_trace());
        let mut last_begin = 0u64;
        for line in prv.lines().skip(1) {
            let fields: Vec<&str> = line.split(':').collect();
            let appl: usize = fields[2].parse().unwrap();
            assert!((1..=2).contains(&appl), "dense 1-based application ids");
            let begin: u64 = fields[5].parse().unwrap();
            assert!(begin >= last_begin, "sorted by begin time");
            last_begin = begin;
            let end: u64 = fields[6].parse().unwrap();
            assert!(end >= begin);
        }
    }

    #[test]
    fn empty_trace_is_just_a_header() {
        let trace = TraceCollector::new(2).finish(t(1.0));
        let prv = to_paraver(&trace);
        assert_eq!(prv.lines().count(), 1);
        assert!(prv.contains(":1(2):0"));
    }
}
