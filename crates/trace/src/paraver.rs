//! Paraver trace export.
//!
//! The paper's traces were visualized with the Paraver tool (Labarta et
//! al.), whose `.prv` format is a text header plus one *state record* per
//! burst:
//!
//! ```text
//! #Paraver (dd/mm/yy at hh:mm):ftime:nNodes(cpu1,..):nAppl:appl1(...):...
//! 1:cpu:appl:task:thread:begin:end:state
//! ```
//!
//! [`to_paraver`] emits that shape for a finished [`Trace`]: each job maps
//! to one Paraver *application* with a single task/thread, each burst to a
//! state record with state 1 (running). Times are microseconds. The output
//! loads in Paraver/wxparaver for the same visual inspection the paper's
//! Fig. 5 performs.
//!
//! [`from_paraver`] reads the same shape back into a [`Trace`]. Malformed
//! input is a first-class case — every failure names the line and field
//! that broke instead of panicking, so truncated or hand-edited `.prv`
//! files produce a diagnosis, not a crash.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use pdpa_sim::{CpuId, JobId, SimTime};

use crate::record::{ActivityRecord, Trace};

/// Microseconds in a trace second.
const US: f64 = 1e6;

/// Serializes a trace as a Paraver `.prv` document.
pub fn to_paraver(trace: &Trace) -> String {
    let ftime = (trace.end.as_secs() * US).round() as u64;
    // Applications present, in first-appearance order of their ids.
    let jobs: BTreeSet<u32> = trace.records.iter().map(|r| r.job.0).collect();
    let n_appl = jobs.len();

    let mut out = String::new();
    // Header: one node containing all CPUs; every application has one task
    // with one thread on node 1.
    let _ = write!(
        out,
        "#Paraver (01/01/00 at 00:00):{ftime}:1({}):{n_appl}",
        trace.n_cpus
    );
    for _ in 0..n_appl {
        out.push_str(":1(1:1)");
    }
    out.push('\n');

    // Dense application numbering: Paraver applications are 1-based and
    // contiguous.
    let appl_of = |job: u32| -> usize { jobs.iter().position(|&j| j == job).expect("present") + 1 };

    // State records, ordered by begin time (stable for equal times).
    let mut records: Vec<_> = trace.records.iter().collect();
    records.sort_by(|a, b| a.start.cmp(&b.start).then_with(|| a.cpu.cmp(&b.cpu)));
    for r in records {
        let begin = (r.start.as_secs() * US).round() as u64;
        let end = (r.end.as_secs() * US).round() as u64;
        let _ = writeln!(
            out,
            "1:{}:{}:1:1:{}:{}:1",
            r.cpu.index() + 1,
            appl_of(r.job.0),
            begin,
            end
        );
    }
    out
}

/// A parse failure, located at a 1-based line of the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParaverError {
    /// The offending line (1-based; 0 for whole-document problems).
    pub line: usize,
    /// What went wrong, naming the field where possible.
    pub message: String,
}

impl std::fmt::Display for ParaverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParaverError {}

/// Builds a located error.
fn err(line: usize, message: impl Into<String>) -> ParaverError {
    ParaverError {
        line,
        message: message.into(),
    }
}

/// Parses an unsigned field, naming it in the failure.
fn parse_u64(raw: &str, line: usize, field: &str) -> Result<u64, ParaverError> {
    raw.trim()
        .parse()
        .map_err(|_| err(line, format!("{field} is not a number: {raw:?}")))
}

/// Parses a Paraver `.prv` document back into a [`Trace`].
///
/// Inverse of [`to_paraver`] up to the exporter's dense application
/// renumbering: record `appl` N becomes [`JobId`]`(N - 1)`, so a
/// round-trip preserves everything except the original job ids.
///
/// # Errors
///
/// Returns a [`ParaverError`] naming the 1-based line and the field that
/// is malformed: a missing or mangled header, a record with the wrong
/// field count, non-numeric fields, out-of-range CPU or application ids,
/// or a burst that ends before it begins.
pub fn from_paraver(input: &str) -> Result<Trace, ParaverError> {
    let mut lines = input.lines();
    let header = lines.next().ok_or_else(|| err(0, "empty document"))?;
    if !header.starts_with("#Paraver ") {
        return Err(err(1, "header must start with \"#Paraver \""));
    }
    // The date parenthetical contains a ':' ("(dd/mm/yy at hh:mm)"), so the
    // header is split on ':' only after the closing paren.
    let close = header
        .find(')')
        .ok_or_else(|| err(1, "header date parenthetical never closes"))?;
    let rest = header[close + 1..]
        .strip_prefix(':')
        .ok_or_else(|| err(1, "expected ':' after the header date"))?;
    let mut fields = rest.split(':');
    let ftime_us = parse_u64(fields.next().unwrap_or(""), 1, "header ftime")?;
    let nodes = fields
        .next()
        .ok_or_else(|| err(1, "header is missing the node list"))?;
    // Node list "n(c1,c2,..)": the machine size is the sum of per-node CPUs.
    let open = nodes
        .find('(')
        .ok_or_else(|| err(1, format!("node list has no '(': {nodes:?}")))?;
    let inner = nodes[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| err(1, format!("node list has no ')': {nodes:?}")))?;
    let mut n_cpus = 0usize;
    for part in inner.split(',') {
        n_cpus += parse_u64(part, 1, "node CPU count")? as usize;
    }
    let n_appl = parse_u64(
        fields
            .next()
            .ok_or_else(|| err(1, "header is missing the application count"))?,
        1,
        "header application count",
    )? as usize;

    let mut records = Vec::new();
    for (i, line) in lines.enumerate() {
        let lineno = i + 2; // 1-based, after the header
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(':').collect();
        if f.len() != 8 {
            return Err(err(
                lineno,
                format!("state record needs 8 ':'-fields, found {}", f.len()),
            ));
        }
        if f[0] != "1" {
            return Err(err(
                lineno,
                format!("unsupported record type {:?} (only state records)", f[0]),
            ));
        }
        let cpu = parse_u64(f[1], lineno, "cpu")? as usize;
        if cpu == 0 || cpu > n_cpus {
            return Err(err(lineno, format!("cpu {cpu} out of range 1..={n_cpus}")));
        }
        let appl = parse_u64(f[2], lineno, "application")? as usize;
        if appl == 0 || appl > n_appl {
            return Err(err(
                lineno,
                format!("application {appl} out of range 1..={n_appl}"),
            ));
        }
        let begin = parse_u64(f[5], lineno, "begin time")?;
        let end = parse_u64(f[6], lineno, "end time")?;
        if end < begin {
            return Err(err(
                lineno,
                format!("burst ends at {end} before it begins at {begin}"),
            ));
        }
        parse_u64(f[7], lineno, "state")?;
        records.push(ActivityRecord {
            cpu: CpuId((cpu - 1) as u16),
            job: JobId((appl - 1) as u32),
            start: SimTime::from_secs(begin as f64 / US),
            end: SimTime::from_secs(end as f64 / US),
        });
    }
    Ok(Trace {
        records,
        n_cpus,
        end: SimTime::from_secs(ftime_us as f64 / US),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceCollector;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample_trace() -> Trace {
        let mut c = TraceCollector::new(4);
        c.assign(CpuId(0), Some(JobId(7)), t(0.0));
        c.assign(CpuId(1), Some(JobId(3)), t(1.0));
        c.assign(CpuId(0), Some(JobId(3)), t(2.0));
        c.finish(t(4.0))
    }

    #[test]
    fn header_declares_machine_and_applications() {
        let prv = to_paraver(&sample_trace());
        let header = prv.lines().next().unwrap();
        assert!(header.starts_with("#Paraver "));
        assert!(header.contains(":4000000:"), "ftime 4 s in µs: {header}");
        assert!(
            header.contains(":1(4):2"),
            "one node of 4 cpus, 2 applications"
        );
    }

    #[test]
    fn one_state_record_per_burst() {
        let trace = sample_trace();
        let prv = to_paraver(&trace);
        let records: Vec<&str> = prv.lines().skip(1).collect();
        assert_eq!(records.len(), trace.records.len());
        for r in &records {
            let fields: Vec<&str> = r.split(':').collect();
            assert_eq!(fields.len(), 8, "record shape: {r}");
            assert_eq!(fields[0], "1", "state record type");
            assert_eq!(fields[7], "1", "running state");
        }
    }

    #[test]
    fn records_are_time_ordered_with_dense_applications() {
        let prv = to_paraver(&sample_trace());
        let mut last_begin = 0u64;
        for line in prv.lines().skip(1) {
            let fields: Vec<&str> = line.split(':').collect();
            let appl: usize = fields[2].parse().unwrap();
            assert!((1..=2).contains(&appl), "dense 1-based application ids");
            let begin: u64 = fields[5].parse().unwrap();
            assert!(begin >= last_begin, "sorted by begin time");
            last_begin = begin;
            let end: u64 = fields[6].parse().unwrap();
            assert!(end >= begin);
        }
    }

    #[test]
    fn empty_trace_is_just_a_header() {
        let trace = TraceCollector::new(2).finish(t(1.0));
        let prv = to_paraver(&trace);
        assert_eq!(prv.lines().count(), 1);
        assert!(prv.contains(":1(2):0"));
    }

    #[test]
    fn round_trip_preserves_the_trace_shape() {
        let original = sample_trace();
        let parsed = from_paraver(&to_paraver(&original)).unwrap();
        assert_eq!(parsed.n_cpus, original.n_cpus);
        assert_eq!(parsed.end, original.end);
        assert_eq!(parsed.records.len(), original.records.len());
        // The exporter renumbers jobs densely, but burst geometry survives:
        // re-exporting the parsed trace is byte-identical.
        assert_eq!(to_paraver(&parsed), to_paraver(&original));
    }

    #[test]
    fn parsed_records_land_on_the_right_cpus() {
        let parsed = from_paraver(&to_paraver(&sample_trace())).unwrap();
        let cpus: BTreeSet<u16> = parsed.records.iter().map(|r| r.cpu.0).collect();
        assert_eq!(cpus, BTreeSet::from([0, 1]));
        for r in &parsed.records {
            assert!(r.end >= r.start);
        }
    }

    #[test]
    fn empty_document_is_an_error_not_a_panic() {
        let e = from_paraver("").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("empty"));
    }

    #[test]
    fn malformed_input_names_the_line_and_field() {
        let good = to_paraver(&sample_trace());
        // Table of mutations: (description, mangled document, expected
        // message fragment, expected line).
        let header = good.lines().next().unwrap();
        let cases: Vec<(&str, String, &str, usize)> = vec![
            (
                "missing #Paraver prefix",
                good.replacen("#Paraver ", "#Whatever ", 1),
                "#Paraver",
                1,
            ),
            (
                "date parenthetical never closes",
                good.replace(')', " "),
                "never closes",
                1,
            ),
            (
                "truncated record",
                format!("{header}\n1:1:1:1:1:0"),
                "8 ':'-fields",
                2,
            ),
            (
                "non-numeric begin",
                format!("{header}\n1:1:1:1:1:abc:100:1"),
                "begin time",
                2,
            ),
            (
                "cpu out of range",
                format!("{header}\n1:9:1:1:1:0:100:1"),
                "out of range",
                2,
            ),
            (
                "application out of range",
                format!("{header}\n1:1:7:1:1:0:100:1"),
                "out of range",
                2,
            ),
            (
                "burst ends before it begins",
                format!("{header}\n1:1:1:1:1:200:100:1"),
                "before it begins",
                2,
            ),
            (
                "event record type",
                format!("{header}\n2:1:1:1:1:0:100:1"),
                "record type",
                2,
            ),
        ];
        for (what, doc, fragment, line) in cases {
            let e = from_paraver(&doc).expect_err(what);
            assert_eq!(e.line, line, "{what}: {e}");
            assert!(
                e.message.contains(fragment),
                "{what}: message {:?} should mention {fragment:?}",
                e.message
            );
        }
    }

    #[test]
    fn error_on_a_deep_line_reports_that_line() {
        let good = to_paraver(&sample_trace());
        // Append a broken record after the three good ones.
        let doc = format!("{good}1:1:1:1:1:0:nope:1\n");
        let e = from_paraver(&doc).unwrap_err();
        assert_eq!(e.line, 5, "header + 3 records + the broken one");
        assert!(e.to_string().starts_with("line 5:"));
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let good = to_paraver(&sample_trace());
        let doc = good.replace('\n', "\n\n");
        let parsed = from_paraver(&doc).unwrap();
        assert_eq!(parsed.records.len(), 3);
    }
}
