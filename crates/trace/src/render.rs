//! Execution-view rendering (Fig. 5) and CSV export.
//!
//! [`render_ascii`] draws the Paraver view as text: one row per CPU (or per
//! group of CPUs), one column per time bucket, one character per job. Idle
//! time renders as `.`. Jobs are lettered `a`–`z`, `A`–`Z`, then `#` — the
//! goal is exactly the paper's visual argument: under PDPA the picture shows
//! long solid blocks, under IRIX it is "chaotic".

use std::fmt::Write as _;

use pdpa_sim::CpuId;

use crate::record::Trace;

/// Options for [`render_ascii`].
#[derive(Clone, Copy, Debug)]
pub struct RenderOptions {
    /// Characters per row (time buckets).
    pub width: usize,
    /// Render every `cpu_stride`-th CPU (1 = all).
    pub cpu_stride: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 100,
            cpu_stride: 1,
        }
    }
}

/// The display character of a job.
fn job_char(job_index: usize) -> char {
    const LOWER: usize = 26;
    const UPPER: usize = 26;
    if job_index < LOWER {
        (b'a' + job_index as u8) as char
    } else if job_index < LOWER + UPPER {
        (b'A' + (job_index - LOWER) as u8) as char
    } else {
        '#'
    }
}

/// Renders the execution view as text. Each row is `cpuNN |` followed by
/// one character per time bucket: the job with the largest occupancy inside
/// the bucket, or `.` when the bucket is fully idle.
pub fn render_ascii(trace: &Trace, options: &RenderOptions) -> String {
    let width = options.width.max(1);
    let stride = options.cpu_stride.max(1);
    let horizon = trace.end.as_secs().max(f64::MIN_POSITIVE);
    let bucket = horizon / width as f64;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "time: 0 .. {:.1}s  ({:.2}s per column, '.' = idle)",
        horizon, bucket
    );
    for cpu in (0..trace.n_cpus).step_by(stride) {
        // Occupancy per bucket: seconds of each job inside the bucket.
        let mut row = vec![('.', 0.0f64); width];
        for r in trace.bursts_of(CpuId(cpu as u16)) {
            let first = ((r.start.as_secs() / bucket) as usize).min(width - 1);
            let last = ((r.end.as_secs() / bucket) as usize).min(width - 1);
            for (b, cell) in row.iter_mut().enumerate().take(last + 1).skip(first) {
                let b_start = b as f64 * bucket;
                let b_end = b_start + bucket;
                let overlap =
                    (r.end.as_secs().min(b_end) - r.start.as_secs().max(b_start)).max(0.0);
                if overlap > cell.1 {
                    *cell = (job_char(r.job.index()), overlap);
                }
            }
        }
        let _ = write!(out, "cpu{cpu:<3}|");
        for (ch, _) in row {
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Exports the trace as CSV: `cpu,job,start_secs,end_secs`.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from("cpu,job,start_secs,end_secs\n");
    for r in &trace.records {
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.6}",
            r.cpu.index(),
            r.job.index(),
            r.start.as_secs(),
            r.end.as_secs()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceCollector;
    use pdpa_sim::{JobId, SimTime};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample_trace() -> Trace {
        let mut c = TraceCollector::new(2);
        c.assign(CpuId(0), Some(JobId(0)), t(0.0));
        c.assign(CpuId(0), Some(JobId(1)), t(50.0));
        c.assign(CpuId(1), Some(JobId(0)), t(25.0));
        c.assign(CpuId(1), None, t(75.0));
        c.finish(t(100.0))
    }

    #[test]
    fn ascii_shape() {
        let trace = sample_trace();
        let s = render_ascii(
            &trace,
            &RenderOptions {
                width: 10,
                cpu_stride: 1,
            },
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 cpus");
        // CPU 0: first half job a, second half job b.
        assert!(lines[1].contains("aaaaabbbbb"), "got {:?}", lines[1]);
        // CPU 1: idle, then job a (25–75 s touches buckets 2..=7), idle.
        assert!(lines[2].contains("..aaaaaa.."), "got {:?}", lines[2]);
    }

    #[test]
    fn stride_skips_cpus() {
        let trace = sample_trace();
        let s = render_ascii(
            &trace,
            &RenderOptions {
                width: 10,
                cpu_stride: 2,
            },
        );
        assert_eq!(s.lines().count(), 2, "header + cpu0 only");
    }

    #[test]
    fn job_letters_wrap() {
        assert_eq!(job_char(0), 'a');
        assert_eq!(job_char(25), 'z');
        assert_eq!(job_char(26), 'A');
        assert_eq!(job_char(51), 'Z');
        assert_eq!(job_char(52), '#');
    }

    #[test]
    fn csv_round_shape() {
        let trace = sample_trace();
        let csv = to_csv(&trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cpu,job,start_secs,end_secs");
        assert_eq!(lines.len(), 1 + trace.records.len());
        assert!(lines[1].starts_with("0,0,0.000000,50.000000"));
    }
}
