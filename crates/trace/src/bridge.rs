//! Bridge from the observability bus to the trace collector.
//!
//! Historically the engine called [`TraceCollector::assign`] directly from
//! every placement-mutation site; with the decision-event bus those sites
//! publish [`ObsEvent::CpuAssigned`] instead, and this observer is the one
//! subscription point that turns the CPU-occupancy stream back into
//! per-CPU activity bursts. The resulting [`Trace`] is identical to what
//! the direct calls produced (pinned by a golden test), because `assign`
//! is driven with the same arguments in the same order.

use crate::record::{Trace, TraceCollector};
use pdpa_obs::{ObsEvent, Observer};
use pdpa_sim::SimTime;

/// An [`Observer`] that feeds [`ObsEvent::CpuAssigned`] events into a
/// [`TraceCollector`] and ignores everything else.
#[derive(Clone, Debug)]
pub struct TraceObserver {
    collector: TraceCollector,
}

impl TraceObserver {
    /// A recording observer for an `n_cpus` machine.
    pub fn new(n_cpus: usize) -> Self {
        TraceObserver {
            collector: TraceCollector::new(n_cpus),
        }
    }

    /// A disabled observer: events are ignored, no memory is spent.
    pub fn disabled(n_cpus: usize) -> Self {
        TraceObserver {
            collector: TraceCollector::disabled(n_cpus),
        }
    }

    /// Whether the underlying collector records.
    pub fn is_enabled(&self) -> bool {
        self.collector.is_enabled()
    }

    /// Closes open bursts and returns the finished trace.
    pub fn into_trace(self, now: SimTime) -> Trace {
        self.collector.finish(now)
    }
}

impl Observer for TraceObserver {
    fn is_enabled(&self) -> bool {
        self.collector.is_enabled()
    }

    fn on_event(&mut self, at: SimTime, event: &ObsEvent) {
        if let ObsEvent::CpuAssigned { cpu, job } = *event {
            self.collector.assign(cpu, job, at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_sim::{CpuId, JobId};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn bus_events_reproduce_direct_assign_calls() {
        // The same occupancy story told twice: directly to a collector and
        // as CpuAssigned events through the observer.
        let story: &[(f64, u16, Option<u32>)] = &[
            (0.0, 0, Some(1)),
            (0.0, 1, Some(1)),
            (4.0, 1, Some(2)),
            (6.0, 0, None),
            (7.0, 0, Some(2)),
        ];
        let mut direct = TraceCollector::new(2);
        let mut obs = TraceObserver::new(2);
        for &(at, cpu, job) in story {
            direct.assign(CpuId(cpu), job.map(JobId), t(at));
            obs.on_event(
                t(at),
                &ObsEvent::CpuAssigned {
                    cpu: CpuId(cpu),
                    job: job.map(JobId),
                },
            );
        }
        let a = direct.finish(t(10.0));
        let b = obs.into_trace(t(10.0));
        assert_eq!(a.records, b.records);
        assert_eq!(a.n_cpus, b.n_cpus);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn non_cpu_events_are_ignored() {
        let mut obs = TraceObserver::new(1);
        obs.on_event(t(1.0), &ObsEvent::JobSubmitted { job: JobId(0) });
        obs.on_event(
            t(2.0),
            &ObsEvent::MplChanged {
                running: 1,
                total_alloc: 4,
            },
        );
        assert!(obs.into_trace(t(3.0)).records.is_empty());
    }

    #[test]
    fn disabled_observer_reports_disabled() {
        let obs = TraceObserver::disabled(4);
        assert!(!obs.is_enabled());
    }
}
