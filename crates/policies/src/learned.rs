//! LearnedAlloc — online learning of per-job allocations from measured
//! iteration speedups (after Chasparis, Janjic, Rossbory & Hammond,
//! "Learning-based Dynamic Pinning of Parallelized Applications in
//! Many-Core Systems", arXiv:1803.00355; see PAPERS.md).
//!
//! Each running job carries a continuous allocation *target* updated by a
//! gradient step on every performance report: the measured marginal speedup
//! between the job's two most recent samples (finite difference over their
//! allocation gap) pushes the target up when an extra processor still buys
//! meaningful speedup and down when it does not. A deterministic ±1
//! exploration perturbation — derived by the same pure seed-mixing the
//! engine uses for its per-(seed, job, attempt) noise streams — keeps the
//! finite-difference window open by occasionally forcing the allocation off
//! its fixed point, exactly the reinforcement-style exploration of the
//! pinning paper and a generalization of PDPA's own ±`step` search loop.
//!
//! Between reports the policy behaves like Equipartition: arrivals and
//! completions deal equal shares (the learned targets restart from fair
//! shares), so the learning refines a fair baseline instead of trusting
//! cold-start guesses.

use std::collections::HashMap;

use pdpa_perf::PerfSample;
use pdpa_sim::{JobId, SimRng};

use crate::alloc_math::equal_shares;
use crate::policy::{Decisions, PolicyCtx, SchedulingPolicy};

/// Marginal speedup per processor above which the target grows.
const GROW_SLOPE: f64 = 0.5;
/// Marginal speedup per processor below which the target shrinks.
const SHRINK_SLOPE: f64 = 0.2;
/// Efficiency bounds used before two distinct-allocation samples exist.
const GROW_EFFICIENCY: f64 = 0.7;
/// See [`GROW_EFFICIENCY`].
const SHRINK_EFFICIENCY: f64 = 0.4;
/// Gradient step, processors per report.
const STEP: f64 = 2.0;

/// Per-job learning state.
#[derive(Clone, Debug)]
struct LearnState {
    /// Continuous allocation target the gradient walks.
    target: f64,
    /// The previous report, for the finite-difference gradient.
    prev: Option<PerfSample>,
    /// Reports seen — the exploration stream's sequence number.
    reports: u64,
}

/// The LearnedAlloc online-gradient space-sharing policy.
///
/// # Examples
///
/// ```
/// use pdpa_policies::{LearnedAlloc, SchedulingPolicy};
///
/// let policy = LearnedAlloc::default();
/// assert_eq!(policy.name(), "LearnedAlloc");
/// ```
#[derive(Clone, Debug)]
pub struct LearnedAlloc {
    /// Fixed multiprogramming level (matched to the paper baselines' 4).
    multiprogramming_level: usize,
    /// Seed of the exploration streams (mixable per job and report).
    seed: u64,
    /// Per-job learning state.
    states: HashMap<JobId, LearnState>,
}

impl LearnedAlloc {
    /// Creates the policy with the given multiprogramming level and
    /// exploration seed.
    ///
    /// # Panics
    ///
    /// Panics if `multiprogramming_level` is zero.
    pub fn new(multiprogramming_level: usize, seed: u64) -> Self {
        assert!(multiprogramming_level > 0, "ML must be at least 1");
        LearnedAlloc {
            multiprogramming_level,
            seed,
            states: HashMap::new(),
        }
    }

    /// The configured multiprogramming level.
    pub fn multiprogramming_level(&self) -> usize {
        self.multiprogramming_level
    }

    /// The deterministic exploration perturbation for one report: −1, 0 or
    /// +1 processors. Pure in `(seed, job, reports)` — the same mixing
    /// discipline as the engine's per-(seed, job, attempt) noise streams,
    /// so decision streams are bit-identical at any shard count.
    fn exploration(&self, job: JobId, reports: u64) -> f64 {
        let mix = 0x9E37_79B9_7F4A_7C15u64
            .wrapping_mul(u64::from(job.0) + 1)
            .wrapping_add(reports.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut rng = SimRng::new(self.seed ^ mix);
        rng.below(3) as f64 - 1.0
    }

    /// Deals equal shares and restarts every job's target from its share.
    fn repartition(&mut self, ctx: &PolicyCtx) -> Decisions {
        let requests: Vec<usize> = ctx.jobs.iter().map(|j| j.request).collect();
        let shares = equal_shares(ctx.total_cpus, &requests, 1);
        for (j, &s) in ctx.jobs.iter().zip(&shares) {
            if let Some(state) = self.states.get_mut(&j.id) {
                state.target = s as f64;
            }
        }
        ctx.jobs
            .iter()
            .zip(shares)
            .map(|(j, s)| (j.id, s))
            .collect()
    }
}

impl Default for LearnedAlloc {
    /// Multiprogramming level 4 (the paper baselines' setting), seed 0.
    fn default() -> Self {
        LearnedAlloc::new(4, 0)
    }
}

impl SchedulingPolicy for LearnedAlloc {
    fn name(&self) -> &'static str {
        "LearnedAlloc"
    }

    fn on_job_arrival(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        self.states.insert(
            job,
            LearnState {
                target: 0.0, // overwritten by the repartition below
                prev: None,
                reports: 0,
            },
        );
        self.repartition(ctx)
    }

    fn on_job_completion(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        self.states.remove(&job);
        self.repartition(ctx)
    }

    fn on_performance_report(
        &mut self,
        ctx: &PolicyCtx,
        job: JobId,
        sample: PerfSample,
    ) -> Decisions {
        let Some(view) = ctx.job(job) else {
            return Decisions::none();
        };
        let request = view.request;
        let total = ctx.total_cpus;
        let (target, reports) = {
            let state = self.states.entry(job).or_insert(LearnState {
                target: view.allocated as f64,
                prev: None,
                reports: 0,
            });
            state.reports += 1;
            // Gradient: finite-difference marginal speedup when the last
            // two samples sit at different allocations, efficiency bounds
            // otherwise (two samples at the same width say nothing about
            // the slope).
            let slope = match state.prev {
                Some(p) if p.procs != sample.procs => {
                    Some((sample.speedup - p.speedup) / (sample.procs as f64 - p.procs as f64))
                }
                _ => None,
            };
            let eff = if sample.procs > 0 {
                sample.speedup / sample.procs as f64
            } else {
                0.0
            };
            let grow = match slope {
                Some(s) => s >= GROW_SLOPE,
                None => eff >= GROW_EFFICIENCY,
            };
            let shrink = match slope {
                Some(s) => s < SHRINK_SLOPE,
                None => eff < SHRINK_EFFICIENCY,
            };
            if grow {
                state.target += STEP;
            } else if shrink {
                state.target -= STEP;
            }
            state.target = state.target.clamp(1.0, request.min(total) as f64);
            state.prev = Some(sample);
            (state.target, state.reports)
        };
        let perturbed = target + self.exploration(job, reports);
        let next = perturbed.round().clamp(1.0, request.min(total) as f64) as usize;
        Decisions::one(job, next)
    }

    fn on_capacity_change(&mut self, ctx: &PolicyCtx, _changed: &[JobId]) -> Decisions {
        // Capacity moved under the learned targets: restart from fair
        // shares of what is alive and learn again from there.
        self.repartition(ctx)
    }

    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool {
        ctx.running() < self.multiprogramming_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::JobView;
    use pdpa_sim::{SimDuration, SimTime};

    fn view(id: u32, request: usize, allocated: usize) -> JobView {
        JobView {
            id: JobId(id),
            request,
            allocated,
            last_sample: None,
            remaining_secs: 100.0,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView], total: usize, free: usize) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::ZERO,
            total_cpus: total,
            free_cpus: free,
            jobs,
            queued_jobs: 0,
            next_request: None,
        }
    }

    fn sample(procs: usize, speedup: f64) -> PerfSample {
        PerfSample {
            procs,
            speedup,
            efficiency: speedup / procs as f64,
            iter_time: SimDuration::from_secs(1.0),
            iteration: 3,
        }
    }

    #[test]
    fn arrivals_deal_equal_shares() {
        let jobs = vec![view(0, 30, 0), view(1, 30, 0)];
        let mut p = LearnedAlloc::default();
        p.on_job_arrival(&ctx(&jobs[..1], 60, 60), JobId(0));
        let d = p.on_job_arrival(&ctx(&jobs, 60, 30), JobId(1));
        assert_eq!(d.allocations, vec![(JobId(0), 30), (JobId(1), 30)]);
    }

    #[test]
    fn efficient_jobs_grow_and_inefficient_jobs_shrink() {
        // Both runs share the seed, so the exploration jitter on the first
        // report is identical; only the gradient direction differs. The
        // arrival sets the target to the equal share (40 here).
        let jobs = vec![view(0, 40, 10)];
        let mut p = LearnedAlloc::default();
        p.on_job_arrival(&ctx(&jobs, 60, 60), JobId(0));
        let d = p.on_performance_report(&ctx(&jobs, 60, 20), JobId(0), sample(10, 9.5));
        let efficient = d.allocations[0].1;
        let mut q = LearnedAlloc::default();
        q.on_job_arrival(&ctx(&jobs, 60, 60), JobId(0));
        let d = q.on_performance_report(&ctx(&jobs, 60, 20), JobId(0), sample(10, 2.0));
        let inefficient = d.allocations[0].1;
        assert!(
            efficient > inefficient,
            "gradient separates: efficient {efficient} vs inefficient {inefficient}"
        );
        assert!(
            (p.states[&JobId(0)].target - 40.0).abs() < 1e-9,
            "grow clamps at request"
        );
        assert!(
            (q.states[&JobId(0)].target - 38.0).abs() < 1e-9,
            "shrink steps down"
        );
    }

    #[test]
    fn finite_difference_gradient_overrides_efficiency() {
        // Two samples, 10 → 14 processors buying speedup 8 → 8.4: the
        // measured slope (0.1) is far below SHRINK_SLOPE, so the job
        // shrinks even though raw efficiency at 10 procs looked decent.
        let jobs = vec![view(0, 40, 14)];
        let mut p = LearnedAlloc::default();
        p.on_job_arrival(&ctx(&jobs, 60, 60), JobId(0));
        p.on_performance_report(&ctx(&jobs, 60, 20), JobId(0), sample(10, 8.0));
        let d = p.on_performance_report(&ctx(&jobs, 60, 20), JobId(0), sample(14, 8.4));
        let target = p.states[&JobId(0)].target;
        assert!(
            target < 40.0 - STEP + 1e-9,
            "slope shrinks the target: {target}"
        );
        assert!(!d.allocations.is_empty());
    }

    #[test]
    fn exploration_is_deterministic_and_bounded() {
        let p = LearnedAlloc::new(4, 42);
        let q = LearnedAlloc::new(4, 42);
        for job in 0..5u32 {
            for reports in 0..50u64 {
                let e = p.exploration(JobId(job), reports);
                assert_eq!(e, q.exploration(JobId(job), reports), "pure function");
                assert!((-1.0..=1.0).contains(&e));
            }
        }
        // A different seed explores differently somewhere.
        let r = LearnedAlloc::new(4, 43);
        let diverges = (0..50u64).any(|n| p.exploration(JobId(0), n) != r.exploration(JobId(0), n));
        assert!(diverges, "seed changes the exploration stream");
    }

    #[test]
    fn decisions_stay_within_request_and_machine() {
        let jobs = vec![view(0, 8, 8)];
        let mut p = LearnedAlloc::default();
        p.on_job_arrival(&ctx(&jobs, 60, 60), JobId(0));
        for i in 0..20 {
            let d = p.on_performance_report(
                &ctx(&jobs, 60, 52),
                JobId(0),
                sample(8, 7.9 - 0.01 * i as f64),
            );
            let (_, a) = d.allocations[0];
            assert!((1..=8).contains(&a), "allocation {a} within [1, request]");
        }
    }

    #[test]
    fn unknown_job_report_is_ignored() {
        let mut p = LearnedAlloc::default();
        let d = p.on_performance_report(&ctx(&[], 60, 60), JobId(9), sample(4, 3.0));
        assert!(d.is_empty());
    }

    #[test]
    fn multiprogramming_level_is_fixed() {
        let p = LearnedAlloc::default();
        let jobs: Vec<JobView> = (0..4).map(|i| view(i, 30, 15)).collect();
        assert!(!p.may_start_new_job(&ctx(&jobs, 60, 0)));
        assert!(p.may_start_new_job(&ctx(&jobs[..3], 60, 15)));
    }
}
