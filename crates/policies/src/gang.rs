//! Gang scheduling (Ousterhout's matrix).
//!
//! The classic alternative to both space sharing and uncoordinated time
//! sharing: every running application gets the *entire machine* (up to its
//! request) for one time slot, with all of its threads coscheduled, and the
//! slots rotate round-robin. Synchronizing applications love it (no thread
//! ever waits for a descheduled peer); the price is the `1/n` duty cycle
//! and the whole-machine context switch.
//!
//! The scheduling surveys the paper builds on (Leutenegger & Vernon,
//! Chiang et al.) use gang scheduling as the reference time-sharing
//! discipline, which is why it is provided alongside the paper's own
//! baselines.

use pdpa_perf::PerfSample;
use pdpa_sim::JobId;

use crate::policy::{Decisions, GangParams, PolicyCtx, SchedulingPolicy, SharingModel};

/// The gang-scheduling baseline.
#[derive(Clone, Debug)]
pub struct GangScheduler {
    /// Maximum rows in the Ousterhout matrix (concurrent gangs).
    multiprogramming_level: usize,
    params: GangParams,
}

impl GangScheduler {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `multiprogramming_level` is zero.
    pub fn new(multiprogramming_level: usize, params: GangParams) -> Self {
        assert!(multiprogramming_level > 0, "ML must be at least 1");
        GangScheduler {
            multiprogramming_level,
            params,
        }
    }

    /// The comparison configuration: 4 matrix rows (matching the paper's
    /// fixed multiprogramming level), default gang parameters.
    pub fn paper_comparable() -> Self {
        Self::new(4, GangParams::default())
    }
}

impl Default for GangScheduler {
    fn default() -> Self {
        Self::paper_comparable()
    }
}

impl SchedulingPolicy for GangScheduler {
    fn name(&self) -> &'static str {
        "Gang"
    }

    fn sharing(&self) -> SharingModel {
        SharingModel::Gang(self.params)
    }

    fn on_job_arrival(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        // A gang's width is its request, capped by the machine.
        match ctx.job(job) {
            Some(view) => Decisions::one(job, view.request.min(ctx.total_cpus)),
            None => Decisions::none(),
        }
    }

    fn on_job_completion(&mut self, _ctx: &PolicyCtx, _job: JobId) -> Decisions {
        Decisions::none()
    }

    fn on_performance_report(
        &mut self,
        _ctx: &PolicyCtx,
        _job: JobId,
        _sample: PerfSample,
    ) -> Decisions {
        // Gang widths are fixed at arrival.
        Decisions::none()
    }

    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool {
        ctx.running() < self.multiprogramming_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::JobView;
    use pdpa_sim::SimTime;

    fn view(id: u32, request: usize) -> JobView {
        JobView {
            id: JobId(id),
            request,
            allocated: 0,
            last_sample: None,
            remaining_secs: 100.0,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView]) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::ZERO,
            total_cpus: 60,
            free_cpus: 60,
            jobs,
            queued_jobs: 0,
            next_request: Some(30),
        }
    }

    #[test]
    fn declares_gang_sharing() {
        let p = GangScheduler::paper_comparable();
        assert!(matches!(p.sharing(), SharingModel::Gang(_)));
    }

    #[test]
    fn gang_width_is_request_capped_by_machine() {
        let mut p = GangScheduler::paper_comparable();
        let jobs = vec![view(0, 30)];
        let d = p.on_job_arrival(&ctx(&jobs), JobId(0));
        assert_eq!(d.allocations, vec![(JobId(0), 30)]);
        let wide = vec![view(1, 100)];
        let d = p.on_job_arrival(&ctx(&wide), JobId(1));
        assert_eq!(d.allocations, vec![(JobId(1), 60)]);
    }

    #[test]
    fn matrix_rows_bound_admission() {
        let p = GangScheduler::new(2, GangParams::default());
        let jobs = vec![view(0, 30), view(1, 30)];
        assert!(!p.may_start_new_job(&ctx(&jobs)));
    }

    #[test]
    fn never_reacts_to_performance() {
        let mut p = GangScheduler::paper_comparable();
        let jobs = vec![view(0, 30)];
        let s = PerfSample {
            procs: 30,
            speedup: 10.0,
            efficiency: 1.0 / 3.0,
            iter_time: pdpa_sim::SimDuration::from_secs(1.0),
            iteration: 2,
        };
        assert!(p.on_performance_report(&ctx(&jobs), JobId(0), s).is_empty());
    }
}
