//! The scheduling-policy interface.
//!
//! The NANOS Resource Manager "implements the processor scheduling policy,
//! which 1) decides how many processors to allocate to each application and
//! 2) enforces the processor scheduling policy decisions" (§3.3). In this
//! reproduction the engine plays the enforcement role and policies implement
//! [`SchedulingPolicy`]: they are activated "each time a new application
//! arrives to the system, when an application finishes, or when an
//! application informs about its performance" (§4.1) and answer with target
//! allocations.
//!
//! Coordination with the queuing system happens through
//! [`SchedulingPolicy::may_start_new_job`]: the queuing system selects
//! *which* job starts, the processor scheduling policy decides *when*
//! (§4.3).

use pdpa_perf::PerfSample;
use pdpa_sim::{JobId, SimDuration, SimTime};

/// How a policy's allocations map onto physical processors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SharingModel {
    /// Space sharing: each allocation is a dedicated cpuset, the machine is
    /// divided in partitions "and applications run in these partitions as in
    /// a dedicated machine" (§4.1).
    SpaceShared,
    /// Time sharing: allocations are kernel-thread counts that the operating
    /// system multiplexes over the processors each quantum (the IRIX model).
    TimeShared(TimeSharingParams),
    /// Gang scheduling (Ousterhout's matrix): each running job gets the
    /// whole machine — up to its allocation — for a full time slot, in
    /// round-robin rotation. All threads of a job run simultaneously
    /// (perfect coscheduling), but each job only runs `1/n` of the time.
    Gang(GangParams),
}

/// Parameters of the gang-scheduled execution model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GangParams {
    /// Length of one gang slot.
    pub quantum: SimDuration,
    /// Fractional throughput loss per rotation (synchronized context switch
    /// of the whole machine, cold caches at slot start).
    pub switch_overhead: f64,
}

impl Default for GangParams {
    fn default() -> Self {
        GangParams {
            // Gang quanta are long (whole-machine switches are expensive);
            // 2 s is in the range classically used on large machines.
            quantum: SimDuration::from_secs(2.0),
            switch_overhead: 0.05,
        }
    }
}

/// Parameters of the time-shared execution model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeSharingParams {
    /// Scheduling quantum.
    pub quantum: SimDuration,
    /// Probability that a thread stays on its processor across a quantum
    /// boundary (the IRIX placement policy "is based on maintaining the
    /// processor affinity as much as possible", §5.1.1 — but it fails often
    /// enough to generate the migration counts of Table 2).
    pub affinity: f64,
    /// Fractional throughput loss paid *always* under time sharing: the
    /// paper's §5.1.1 observes that the IRIX placement "sometimes causes
    /// that two kernel threads belonging to the same or different
    /// applications can be allocated to the same processor, degrading the
    /// application performance and generating many process migrations" —
    /// locality is lost continuously, not only when overcommitted.
    pub base_overhead: f64,
    /// Additional fractional throughput loss while the machine is
    /// overcommitted (time-slicing, cache pollution, inopportune preemption
    /// of threads holding locks).
    pub overcommit_overhead: f64,
}

impl Default for TimeSharingParams {
    fn default() -> Self {
        TimeSharingParams {
            quantum: SimDuration::from_millis(250.0),
            affinity: 0.2,
            base_overhead: 0.15,
            overcommit_overhead: 0.30,
        }
    }
}

/// A running job as seen by a policy.
#[derive(Clone, Debug)]
pub struct JobView {
    /// The job's identity.
    pub id: JobId,
    /// Processors the job requested at submission.
    pub request: usize,
    /// Processors (or threads, under time sharing) currently assigned.
    pub allocated: usize,
    /// The job's most recent performance estimate, if it has reported.
    pub last_sample: Option<PerfSample>,
    /// Estimated *sequential* work remaining, seconds: outstanding
    /// iterations times the current per-iteration sequential time. This is
    /// the remaining-size signal size-based policies (heSRPT, OptSplit)
    /// rank on; it is allocation-independent, so reallocating a job does
    /// not change its rank.
    pub remaining_secs: f64,
}

/// The system snapshot a policy decides from.
#[derive(Clone, Debug)]
pub struct PolicyCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Processors in the machine.
    pub total_cpus: usize,
    /// Processors not assigned to any job (space sharing).
    pub free_cpus: usize,
    /// Every running job, in arrival order.
    pub jobs: &'a [JobView],
    /// Jobs waiting in the queuing system.
    pub queued_jobs: usize,
    /// Processor request of the FCFS queue head, if any — what
    /// [`SchedulingPolicy::may_start_new_job`] is being asked about. Rigid
    /// policies need it to implement "wait until the full request is free".
    pub next_request: Option<usize>,
}

impl PolicyCtx<'_> {
    /// Looks up a running job by id.
    pub fn job(&self, id: JobId) -> Option<&JobView> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Number of running jobs.
    pub fn running(&self) -> usize {
        self.jobs.len()
    }
}

/// A state-machine move a stateful policy made while deciding, reported
/// for observability (the PDPA transitions of §4.2). State names are
/// `&'static str` so carrying them costs nothing and keeps this crate
/// free of an observability dependency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransitionNote {
    /// The job whose per-application state machine moved.
    pub job: JobId,
    /// State left.
    pub from: &'static str,
    /// State entered.
    pub to: &'static str,
}

/// A policy's answer: target allocations to apply.
///
/// Only the mentioned jobs change; the engine skips no-op resizes, so
/// returning a job's current allocation is harmless.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Decisions {
    /// `(job, target processors)` pairs.
    pub allocations: Vec<(JobId, usize)>,
    /// State-machine moves behind the allocations (possibly more moves
    /// than allocations: a transition can keep the allocation).
    pub transitions: Vec<TransitionNote>,
}

impl Decisions {
    /// No changes.
    pub fn none() -> Self {
        Decisions::default()
    }

    /// A single-job change.
    pub fn one(job: JobId, procs: usize) -> Self {
        Decisions {
            allocations: vec![(job, procs)],
            transitions: Vec::new(),
        }
    }

    /// Adds a change.
    pub fn set(&mut self, job: JobId, procs: usize) {
        self.allocations.push((job, procs));
    }

    /// Records a state-machine move.
    pub fn note_transition(&mut self, job: JobId, from: &'static str, to: &'static str) {
        self.transitions.push(TransitionNote { job, from, to });
    }

    /// True when nothing changes — no allocations *and* no transitions.
    pub fn is_empty(&self) -> bool {
        self.allocations.is_empty() && self.transitions.is_empty()
    }
}

impl FromIterator<(JobId, usize)> for Decisions {
    fn from_iter<T: IntoIterator<Item = (JobId, usize)>>(iter: T) -> Self {
        Decisions {
            allocations: iter.into_iter().collect(),
            transitions: Vec::new(),
        }
    }
}

/// A processor scheduling policy.
///
/// Implementations decide processor allocations and, through
/// [`may_start_new_job`], the multiprogramming level. The engine activates a
/// policy at job arrival, job completion, and each performance report.
///
/// [`may_start_new_job`]: SchedulingPolicy::may_start_new_job
pub trait SchedulingPolicy {
    /// The policy's display name (used in reports and experiment tables).
    fn name(&self) -> &'static str;

    /// How this policy's allocations map onto processors.
    fn sharing(&self) -> SharingModel {
        SharingModel::SpaceShared
    }

    /// A new job has been started by the queuing system. The job is already
    /// present in `ctx.jobs` with `allocated = 0`; the returned decisions
    /// give it (and possibly others) their allocations.
    fn on_job_arrival(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions;

    /// A job has completed; its processors are already free in `ctx`.
    fn on_job_completion(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions;

    /// A job's SelfAnalyzer has produced a new performance estimate.
    fn on_performance_report(
        &mut self,
        ctx: &PolicyCtx,
        job: JobId,
        sample: PerfSample,
    ) -> Decisions;

    /// The machine's capacity changed under the policy: CPUs failed (their
    /// allocations already revoked, reflected in `ctx`) or recovered.
    /// `changed` lists the running jobs whose allocations were cut by the
    /// failure, in arrival order.
    ///
    /// The default re-grants stalled jobs — jobs revoked down to zero
    /// processors produce no further performance reports, so a policy that
    /// only reacts to reports would strand them forever. Each stalled job
    /// gets as much of its request as the remaining free supply covers.
    /// Rebalancing policies should override this with their own
    /// redistribution.
    fn on_capacity_change(&mut self, ctx: &PolicyCtx, changed: &[JobId]) -> Decisions {
        let _ = changed;
        let mut free = ctx.free_cpus;
        let mut decisions = Decisions::none();
        for view in ctx.jobs.iter().filter(|v| v.allocated == 0) {
            if free == 0 {
                break;
            }
            let grant = view.request.min(free);
            decisions.set(view.id, grant);
            free -= grant;
        }
        decisions
    }

    /// Multiprogramming-level decision: may the queuing system start another
    /// job right now?
    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_builders() {
        let mut d = Decisions::none();
        assert!(d.is_empty());
        d.set(JobId(1), 8);
        assert_eq!(d.allocations, vec![(JobId(1), 8)]);
        let one = Decisions::one(JobId(2), 4);
        assert_eq!(one.allocations, vec![(JobId(2), 4)]);
        let collected: Decisions = [(JobId(3), 2)].into_iter().collect();
        assert_eq!(collected.allocations, vec![(JobId(3), 2)]);
    }

    #[test]
    fn transitions_count_as_nonempty() {
        let mut d = Decisions::none();
        d.note_transition(JobId(0), "NO_REF", "STABLE");
        assert!(!d.is_empty());
        assert!(d.allocations.is_empty());
        assert_eq!(
            d.transitions,
            vec![TransitionNote {
                job: JobId(0),
                from: "NO_REF",
                to: "STABLE",
            }]
        );
    }

    #[test]
    fn ctx_lookup() {
        let jobs = vec![
            JobView {
                id: JobId(0),
                request: 30,
                allocated: 15,
                last_sample: None,
                remaining_secs: 600.0,
            },
            JobView {
                id: JobId(1),
                request: 2,
                allocated: 2,
                last_sample: None,
                remaining_secs: 40.0,
            },
        ];
        let ctx = PolicyCtx {
            now: SimTime::ZERO,
            total_cpus: 60,
            free_cpus: 43,
            jobs: &jobs,
            queued_jobs: 3,
            next_request: Some(30),
        };
        assert_eq!(ctx.running(), 2);
        assert_eq!(ctx.job(JobId(1)).unwrap().request, 2);
        assert!(ctx.job(JobId(9)).is_none());
    }

    #[test]
    fn default_time_sharing_params_are_sane() {
        let p = TimeSharingParams::default();
        assert!(p.quantum.as_millis() > 0.0);
        assert!((0.0..=1.0).contains(&p.affinity));
        assert!((0.0..1.0).contains(&p.base_overhead));
        assert!((0.0..1.0).contains(&p.overcommit_overhead));
        // Combined worst case must leave positive throughput.
        assert!((1.0 - p.base_overhead) * (1.0 - p.overcommit_overhead) > 0.0);
    }
}
