//! Rigid first-fit space sharing — the fragmentation strawman of §4.3.
//!
//! "Traditional approaches execute parallel workloads 1) limiting the
//! multiprogramming level, resulting in fragmentation … The first option
//! suffers from fragmentation in 1) systems where applications are rigid
//! and can only be executed with the number of processors requested".
//!
//! [`RigidFirstFit`] is that system: an application starts only when its
//! *full request* is free, runs with exactly that allocation to completion,
//! and never resizes. The processors stranded between a running set and the
//! next queued request are the fragmentation the dynamic space-sharing
//! policies exist to avoid — measurable by comparing this policy's makespan
//! against Equipartition's on any of the paper's workloads.

use pdpa_perf::PerfSample;
use pdpa_sim::JobId;

use crate::policy::{Decisions, PolicyCtx, SchedulingPolicy};

/// Rigid space sharing: full request or wait.
#[derive(Clone, Debug)]
pub struct RigidFirstFit {
    /// Upper bound on concurrently running jobs (matching the paper's
    /// fixed multiprogramming level of 4 keeps comparisons fair).
    multiprogramming_level: usize,
}

impl RigidFirstFit {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `multiprogramming_level` is zero.
    pub fn new(multiprogramming_level: usize) -> Self {
        assert!(multiprogramming_level > 0, "ML must be at least 1");
        RigidFirstFit {
            multiprogramming_level,
        }
    }

    /// The paper-comparable configuration: multiprogramming level 4.
    pub fn paper_default() -> Self {
        Self::new(4)
    }
}

impl Default for RigidFirstFit {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl SchedulingPolicy for RigidFirstFit {
    fn name(&self) -> &'static str {
        "RigidFirstFit"
    }

    fn on_job_arrival(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        // Admission guaranteed the full request fits; grant exactly it.
        match ctx.job(job) {
            Some(view) => Decisions::one(job, view.request),
            None => Decisions::none(),
        }
    }

    fn on_job_completion(&mut self, _ctx: &PolicyCtx, _job: JobId) -> Decisions {
        // Rigid jobs never resize; freed processors wait for the queue head.
        Decisions::none()
    }

    fn on_performance_report(
        &mut self,
        _ctx: &PolicyCtx,
        _job: JobId,
        _sample: PerfSample,
    ) -> Decisions {
        Decisions::none()
    }

    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool {
        if ctx.running() >= self.multiprogramming_level {
            return false;
        }
        // First-fit: the head job starts only when its whole request is
        // free — "having to wait until as many processors as the
        // application requests are free" (§4.3). An empty machine always
        // admits (a request larger than the machine would otherwise wedge
        // the queue forever; the grant is capped by the machine).
        if ctx.jobs.is_empty() {
            return true;
        }
        match ctx.next_request {
            Some(request) => ctx.free_cpus >= request,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::JobView;
    use pdpa_sim::{SimDuration, SimTime};

    fn view(id: u32, request: usize, allocated: usize) -> JobView {
        JobView {
            id: JobId(id),
            request,
            allocated,
            last_sample: None,
            remaining_secs: 100.0,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView], free: usize) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::ZERO,
            total_cpus: 60,
            free_cpus: free,
            jobs,
            queued_jobs: 1,
            next_request: Some(30),
        }
    }

    #[test]
    fn grants_exactly_the_request() {
        let mut p = RigidFirstFit::paper_default();
        let jobs = vec![view(0, 30, 0)];
        let d = p.on_job_arrival(&ctx(&jobs, 60), JobId(0));
        assert_eq!(d.allocations, vec![(JobId(0), 30)]);
    }

    #[test]
    fn never_resizes() {
        let mut p = RigidFirstFit::paper_default();
        let jobs = vec![view(0, 30, 30)];
        let s = PerfSample {
            procs: 30,
            speedup: 2.0,
            efficiency: 2.0 / 30.0,
            iter_time: SimDuration::from_secs(1.0),
            iteration: 4,
        };
        assert!(p
            .on_performance_report(&ctx(&jobs, 30), JobId(0), s)
            .is_empty());
        assert!(p.on_job_completion(&ctx(&jobs, 30), JobId(9)).is_empty());
    }

    #[test]
    fn admission_waits_for_a_full_request() {
        let p = RigidFirstFit::paper_default();
        let jobs = vec![view(0, 30, 30)];
        assert!(
            !p.may_start_new_job(&ctx(&jobs, 29)),
            "29 free < request 30"
        );
        assert!(p.may_start_new_job(&ctx(&jobs, 30)));
    }

    #[test]
    fn empty_machine_always_admits() {
        // Even when the head requests more than is nominally free, an empty
        // machine starts it (capped by the machine) instead of wedging.
        let p = RigidFirstFit::paper_default();
        assert!(p.may_start_new_job(&ctx(&[], 2)), "first job always starts");
    }

    #[test]
    fn multiprogramming_level_caps() {
        let p = RigidFirstFit::new(2);
        let jobs = vec![view(0, 2, 2), view(1, 2, 2)];
        assert!(!p.may_start_new_job(&ctx(&jobs, 56)));
    }
}
