//! Equipartition (McCann, Vaswani & Zahorjan, TOCS 1993).
//!
//! "Equipartition is a dynamic processor allocation policy that decides an
//! equal allocation among running jobs. Reallocations are done at job
//! arrival and job completion" (§3.3). It ignores application performance
//! entirely and enforces a fixed multiprogramming level.

use pdpa_perf::PerfSample;
use pdpa_sim::JobId;

use crate::alloc_math::equal_shares;
use crate::policy::{Decisions, PolicyCtx, SchedulingPolicy};

/// The Equipartition space-sharing policy.
///
/// # Examples
///
/// ```
/// use pdpa_policies::{Equipartition, SchedulingPolicy};
///
/// let policy = Equipartition::default();
/// assert_eq!(policy.name(), "Equipartition");
/// assert_eq!(policy.multiprogramming_level(), 4); // the paper's setting
/// ```
#[derive(Clone, Debug)]
pub struct Equipartition {
    /// Fixed multiprogramming level (the paper uses 4).
    multiprogramming_level: usize,
}

impl Equipartition {
    /// Creates the policy with the given fixed multiprogramming level.
    ///
    /// # Panics
    ///
    /// Panics if `multiprogramming_level` is zero.
    pub fn new(multiprogramming_level: usize) -> Self {
        assert!(multiprogramming_level > 0, "ML must be at least 1");
        Equipartition {
            multiprogramming_level,
        }
    }

    /// The configured multiprogramming level.
    pub fn multiprogramming_level(&self) -> usize {
        self.multiprogramming_level
    }

    /// Recomputes equal shares for every running job.
    fn repartition(&self, ctx: &PolicyCtx) -> Decisions {
        let requests: Vec<usize> = ctx.jobs.iter().map(|j| j.request).collect();
        let shares = equal_shares(ctx.total_cpus, &requests, 1);
        ctx.jobs
            .iter()
            .zip(shares)
            .map(|(j, s)| (j.id, s))
            .collect()
    }
}

impl Default for Equipartition {
    /// The paper's configuration: multiprogramming level 4.
    fn default() -> Self {
        Equipartition::new(4)
    }
}

impl SchedulingPolicy for Equipartition {
    fn name(&self) -> &'static str {
        "Equipartition"
    }

    fn on_job_arrival(&mut self, ctx: &PolicyCtx, _job: JobId) -> Decisions {
        self.repartition(ctx)
    }

    fn on_job_completion(&mut self, ctx: &PolicyCtx, _job: JobId) -> Decisions {
        self.repartition(ctx)
    }

    fn on_performance_report(
        &mut self,
        _ctx: &PolicyCtx,
        _job: JobId,
        _sample: PerfSample,
    ) -> Decisions {
        // Equipartition does not use runtime performance.
        Decisions::none()
    }

    fn on_capacity_change(&mut self, ctx: &PolicyCtx, _changed: &[JobId]) -> Decisions {
        // Capacity moved: deal equal shares of whatever is alive now.
        self.repartition(ctx)
    }

    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool {
        ctx.running() < self.multiprogramming_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::JobView;
    use pdpa_sim::SimTime;

    fn view(id: u32, request: usize, allocated: usize) -> JobView {
        JobView {
            id: JobId(id),
            request,
            allocated,
            last_sample: None,
            remaining_secs: 100.0,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView], total: usize, free: usize) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::ZERO,
            total_cpus: total,
            free_cpus: free,
            jobs,
            queued_jobs: 0,
            next_request: None,
        }
    }

    #[test]
    fn four_equal_jobs_get_fifteen_each() {
        // The paper's workload-1 observation: with ML = 4 and 60 processors,
        // Equipartition runs every application on 15 processors.
        let jobs = vec![
            view(0, 30, 0),
            view(1, 30, 0),
            view(2, 30, 0),
            view(3, 30, 0),
        ];
        let mut p = Equipartition::default();
        let d = p.on_job_arrival(&ctx(&jobs, 60, 60), JobId(3));
        assert_eq!(
            d.allocations,
            vec![
                (JobId(0), 15),
                (JobId(1), 15),
                (JobId(2), 15),
                (JobId(3), 15)
            ]
        );
    }

    #[test]
    fn light_load_gives_full_requests() {
        let jobs = vec![view(0, 30, 0), view(1, 30, 0)];
        let mut p = Equipartition::default();
        let d = p.on_job_arrival(&ctx(&jobs, 60, 60), JobId(1));
        assert_eq!(d.allocations, vec![(JobId(0), 30), (JobId(1), 30)]);
    }

    #[test]
    fn small_request_leftover_is_redistributed() {
        let jobs = vec![
            view(0, 30, 0),
            view(1, 2, 0),
            view(2, 30, 0),
            view(3, 30, 0),
        ];
        let mut p = Equipartition::default();
        let d = p.on_job_arrival(&ctx(&jobs, 60, 60), JobId(3));
        let total: usize = d.allocations.iter().map(|&(_, a)| a).sum();
        assert_eq!(total, 60, "all processors in use");
        assert_eq!(d.allocations[1], (JobId(1), 2), "apsi keeps its request");
    }

    #[test]
    fn completion_triggers_repartition() {
        let jobs = vec![view(0, 30, 20), view(1, 30, 20)];
        let mut p = Equipartition::default();
        let d = p.on_job_completion(&ctx(&jobs, 60, 20), JobId(5));
        assert_eq!(d.allocations, vec![(JobId(0), 30), (JobId(1), 30)]);
    }

    #[test]
    fn performance_reports_are_ignored() {
        let jobs = vec![view(0, 30, 15)];
        let mut p = Equipartition::default();
        let sample = PerfSample {
            procs: 15,
            speedup: 3.0,
            efficiency: 0.2,
            iter_time: pdpa_sim::SimDuration::from_secs(1.0),
            iteration: 5,
        };
        assert!(p
            .on_performance_report(&ctx(&jobs, 60, 45), JobId(0), sample)
            .is_empty());
    }

    #[test]
    fn capacity_loss_repartitions_over_alive_cpus() {
        // 8 CPUs died: the engine reports total_cpus = 52 and the shares
        // shrink accordingly instead of overcommitting dead processors.
        let jobs = vec![
            view(0, 30, 15),
            view(1, 30, 15),
            view(2, 30, 15),
            view(3, 30, 7),
        ];
        let mut p = Equipartition::default();
        let d = p.on_capacity_change(&ctx(&jobs, 52, 0), &[JobId(3)]);
        let total: usize = d.allocations.iter().map(|&(_, a)| a).sum();
        assert_eq!(total, 52, "alive capacity fully dealt, never exceeded");
    }

    #[test]
    fn ragged_alive_sets_are_dealt_exactly() {
        // Satellite invariant: for every awkward alive-CPU count (none of
        // these divide evenly among the jobs), the repartition after a
        // capacity change sums to exactly the alive supply — no share lost
        // to rounding, no dead processor dealt — and every share stays
        // within the job's request.
        for alive in 41..=60 {
            for njobs in [3usize, 4] {
                let jobs: Vec<JobView> = (0..njobs).map(|i| view(i as u32, 30, 15)).collect();
                let mut p = Equipartition::default();
                let d = p.on_capacity_change(&ctx(&jobs, alive, 0), &[JobId(0)]);
                let total: usize = d.allocations.iter().map(|&(_, a)| a).sum();
                assert_eq!(
                    total, alive,
                    "{njobs} jobs over {alive} alive CPUs: dealt {total}"
                );
                for &(job, share) in &d.allocations {
                    assert!(share <= 30, "{job:?} got {share} > request");
                }
            }
        }
    }

    #[test]
    fn multiprogramming_level_is_fixed() {
        let p = Equipartition::new(4);
        let jobs3 = vec![view(0, 30, 15), view(1, 30, 15), view(2, 30, 15)];
        assert!(p.may_start_new_job(&ctx(&jobs3, 60, 15)));
        let jobs4 = vec![
            view(0, 30, 15),
            view(1, 30, 15),
            view(2, 30, 15),
            view(3, 30, 15),
        ];
        assert!(!p.may_start_new_job(&ctx(&jobs4, 60, 0)));
    }
}
