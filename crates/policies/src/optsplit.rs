//! OptSplit — size-aware water-filling over concave speedup curves, in the
//! spirit of Berg et al.'s optimality results for allocating processors
//! across jobs with sublinear speedup (Berg, Vesilo & Harchol-Balter,
//! "heSRPT", arXiv:2011.09676, §2; see PAPERS.md).
//!
//! Where [`HeSrpt`](crate::HeSrpt) evaluates the closed form (exact under a
//! power-law speedup), OptSplit reaches the same favor-the-small-jobs
//! optimum *numerically*: processors are handed out one at a time to the
//! job with the highest marginal value, where value is the job's
//! extrapolated marginal speedup (the concave-curve water level, fitted
//! from measured samples exactly as Equal_efficiency fits them) divided by
//! its remaining size. Scaling by remaining work is what turns plain
//! efficiency water-filling into a slowdown optimizer: a marginal processor
//! buys more *completion* per second on a nearly-finished job than on one
//! that has hours left, so the greedy fill drains small jobs first while
//! still refusing processors that a saturated speedup curve would waste.

use std::collections::HashMap;

use pdpa_perf::{EfficiencyEstimator, PerfSample};
use pdpa_sim::JobId;

use crate::alloc_math::marginal_fill;
use crate::policy::{Decisions, PolicyCtx, SchedulingPolicy};

/// The OptSplit space-sharing policy.
///
/// # Examples
///
/// ```
/// use pdpa_policies::{OptSplit, SchedulingPolicy};
///
/// let policy = OptSplit::default();
/// assert_eq!(policy.name(), "OptSplit");
/// ```
#[derive(Clone, Debug)]
pub struct OptSplit {
    /// Fixed multiprogramming level (matched to the paper baselines' 4).
    multiprogramming_level: usize,
    /// Per-job Amdahl-fit extrapolators (the Equal_efficiency machinery).
    estimators: HashMap<JobId, EfficiencyEstimator>,
}

impl OptSplit {
    /// Creates the policy with the given fixed multiprogramming level.
    ///
    /// # Panics
    ///
    /// Panics if `multiprogramming_level` is zero.
    pub fn new(multiprogramming_level: usize) -> Self {
        assert!(multiprogramming_level > 0, "ML must be at least 1");
        OptSplit {
            multiprogramming_level,
            estimators: HashMap::new(),
        }
    }

    /// The configured multiprogramming level.
    pub fn multiprogramming_level(&self) -> usize {
        self.multiprogramming_level
    }

    /// Recomputes the whole allocation: greedy water-filling on marginal
    /// speedup per remaining-work second.
    fn reallocate(&self, ctx: &PolicyCtx) -> Decisions {
        let requests: Vec<usize> = ctx.jobs.iter().map(|j| j.request).collect();
        // The +1 keeps the weight finite for jobs on their last iteration
        // (remaining → 0) while preserving the small-jobs-first ordering.
        let urgency: Vec<f64> = ctx
            .jobs
            .iter()
            .map(|j| 1.0 / (j.remaining_secs + 1.0))
            .collect();
        let ids: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        let shares = marginal_fill(ctx.total_cpus, &requests, 1, |i, alloc| {
            let marginal = match self.estimators.get(&ids[i]) {
                Some(est) if est.has_estimate() => est
                    .marginal_gain(alloc)
                    .expect("estimator with estimate answers"),
                // No knowledge yet: assume linear scaling, as
                // Equal_efficiency does — the job must be given processors
                // to measure anything at all.
                _ => 1.0,
            };
            marginal * urgency[i]
        });
        ids.into_iter().zip(shares).collect()
    }
}

impl Default for OptSplit {
    /// Multiprogramming level 4 (the paper baselines' setting).
    fn default() -> Self {
        OptSplit::new(4)
    }
}

impl SchedulingPolicy for OptSplit {
    fn name(&self) -> &'static str {
        "OptSplit"
    }

    fn on_job_arrival(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        self.estimators.insert(job, EfficiencyEstimator::new());
        self.reallocate(ctx)
    }

    fn on_job_completion(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        self.estimators.remove(&job);
        self.reallocate(ctx)
    }

    fn on_performance_report(
        &mut self,
        ctx: &PolicyCtx,
        job: JobId,
        sample: PerfSample,
    ) -> Decisions {
        self.estimators
            .entry(job)
            .or_default()
            .observe(sample.procs, sample.speedup);
        self.reallocate(ctx)
    }

    fn on_capacity_change(&mut self, ctx: &PolicyCtx, _changed: &[JobId]) -> Decisions {
        self.reallocate(ctx)
    }

    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool {
        ctx.running() < self.multiprogramming_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::JobView;
    use pdpa_sim::{SimDuration, SimTime};

    fn view(id: u32, request: usize, remaining_secs: f64) -> JobView {
        JobView {
            id: JobId(id),
            request,
            allocated: 0,
            last_sample: None,
            remaining_secs,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView], total: usize) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::ZERO,
            total_cpus: total,
            free_cpus: total,
            jobs,
            queued_jobs: 0,
            next_request: None,
        }
    }

    fn alloc_of(d: &Decisions, id: u32) -> usize {
        d.allocations
            .iter()
            .find(|&&(j, _)| j == JobId(id))
            .map(|&(_, a)| a)
            .expect("job decided")
    }

    fn sample(procs: usize, speedup: f64) -> PerfSample {
        PerfSample {
            procs,
            speedup,
            efficiency: speedup / procs as f64,
            iter_time: SimDuration::from_secs(1.0),
            iteration: 3,
        }
    }

    #[test]
    fn small_remaining_work_wins_with_identical_curves() {
        let jobs = vec![view(0, 60, 1000.0), view(1, 60, 50.0)];
        let mut p = OptSplit::default();
        p.on_performance_report(&ctx(&jobs, 60), JobId(0), sample(10, 8.0));
        let d = p.on_performance_report(&ctx(&jobs, 60), JobId(1), sample(10, 8.0));
        assert!(
            alloc_of(&d, 1) > alloc_of(&d, 0),
            "nearly-done job outbids: {:?}",
            d.allocations
        );
        assert_eq!(alloc_of(&d, 0) + alloc_of(&d, 1), 60);
    }

    #[test]
    fn saturated_curves_leave_processors_idle() {
        // A job measured at no speedup gain: past its floor it never wins
        // another processor, even with supply left over.
        let jobs = vec![view(0, 60, 100.0)];
        let mut p = OptSplit::default();
        let d = p.on_performance_report(&ctx(&jobs, 60), JobId(0), sample(10, 1.0));
        assert!(
            alloc_of(&d, 0) <= 2,
            "serial job stays small: {:?}",
            d.allocations
        );
    }

    #[test]
    fn unmeasured_jobs_start_optimistically() {
        let jobs = vec![view(0, 20, 100.0), view(1, 20, 100.0)];
        let mut p = OptSplit::default();
        let d = p.on_job_arrival(&ctx(&jobs, 60), JobId(1));
        assert_eq!(alloc_of(&d, 0), 20);
        assert_eq!(alloc_of(&d, 1), 20);
    }

    #[test]
    fn completion_forgets_the_estimator() {
        let jobs = vec![view(0, 30, 100.0)];
        let mut p = OptSplit::default();
        p.on_performance_report(&ctx(&jobs, 60), JobId(0), sample(10, 2.0));
        assert!(p.estimators.contains_key(&JobId(0)));
        p.on_job_completion(&ctx(&[], 60), JobId(0));
        assert!(p.estimators.is_empty());
    }

    #[test]
    fn multiprogramming_level_is_fixed() {
        let p = OptSplit::default();
        let jobs: Vec<JobView> = (0..4).map(|i| view(i, 30, 100.0)).collect();
        assert!(!p.may_start_new_job(&ctx(&jobs, 60)));
        assert!(p.may_start_new_job(&ctx(&jobs[..2], 60)));
    }
}
