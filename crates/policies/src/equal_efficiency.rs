//! Equal_efficiency (Nguyen, Zahorjan & Vaswani, JSSPP 1996).
//!
//! "Equal_efficiency allocates more processors to those applications that
//! have the best efficiency using extrapolated values" (§3.3). Each job's
//! measured speedups feed an Amdahl-fit extrapolator; processors are then
//! handed out one at a time to the job with the best extrapolated marginal
//! gain, which equalizes marginal efficiency across jobs.
//!
//! The paper identifies two weaknesses we reproduce deliberately:
//!
//! 1. the fit chases the latest (noisy) measurement, so allocations swing —
//!    "small variations in the efficiency generate high variances in the
//!    processor allocation, resulting in a high number of processor
//!    reallocations" (§5.1);
//! 2. the extrapolation formula can give very different allocations to
//!    instances of the *same* application (the 2-to-28-processor swim spread
//!    the paper measured), because each instance's fit depends on its own
//!    noise realization.

use std::collections::HashMap;

use pdpa_perf::{EfficiencyEstimator, PerfSample};
use pdpa_sim::JobId;

use crate::alloc_math::marginal_fill;
use crate::policy::{Decisions, PolicyCtx, SchedulingPolicy};

/// The Equal_efficiency space-sharing policy.
#[derive(Clone, Debug, Default)]
pub struct EqualEfficiency {
    /// Fixed multiprogramming level (the paper uses 4).
    multiprogramming_level: usize,
    /// Per-job Amdahl-fit extrapolators.
    estimators: HashMap<JobId, EfficiencyEstimator>,
}

impl EqualEfficiency {
    /// Creates the policy with the given fixed multiprogramming level.
    ///
    /// # Panics
    ///
    /// Panics if `multiprogramming_level` is zero.
    pub fn new(multiprogramming_level: usize) -> Self {
        assert!(multiprogramming_level > 0, "ML must be at least 1");
        EqualEfficiency {
            multiprogramming_level,
            estimators: HashMap::new(),
        }
    }

    /// The paper's configuration: multiprogramming level 4.
    pub fn paper_default() -> Self {
        Self::new(4)
    }

    /// Recomputes the whole allocation by marginal-gain water-filling.
    ///
    /// Jobs without an estimate yet are treated as perfectly scalable
    /// (optimistic start — they must be given processors to measure
    /// anything at all).
    fn reallocate(&self, ctx: &PolicyCtx) -> Decisions {
        let requests: Vec<usize> = ctx.jobs.iter().map(|j| j.request).collect();
        let ids: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        let shares = marginal_fill(ctx.total_cpus, &requests, 1, |i, alloc| {
            match self.estimators.get(&ids[i]) {
                Some(est) if est.has_estimate() => est
                    .marginal_gain(alloc)
                    .expect("estimator with estimate answers"),
                // No knowledge: assume linear scaling.
                _ => 1.0,
            }
        });
        ids.into_iter().zip(shares).collect()
    }
}

impl SchedulingPolicy for EqualEfficiency {
    fn name(&self) -> &'static str {
        "Equal_efficiency"
    }

    fn on_job_arrival(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        self.estimators.insert(job, EfficiencyEstimator::new());
        self.reallocate(ctx)
    }

    fn on_job_completion(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        self.estimators.remove(&job);
        self.reallocate(ctx)
    }

    fn on_performance_report(
        &mut self,
        ctx: &PolicyCtx,
        job: JobId,
        sample: PerfSample,
    ) -> Decisions {
        self.estimators
            .entry(job)
            .or_default()
            .observe(sample.procs, sample.speedup);
        // Every report re-triggers a global reallocation — the source of the
        // policy's instability under measurement noise.
        self.reallocate(ctx)
    }

    fn on_capacity_change(&mut self, ctx: &PolicyCtx, _changed: &[JobId]) -> Decisions {
        // Refill marginal gains over the surviving capacity.
        self.reallocate(ctx)
    }

    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool {
        ctx.running() < self.multiprogramming_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::JobView;
    use pdpa_sim::{SimDuration, SimTime};

    fn view(id: u32, request: usize, allocated: usize) -> JobView {
        JobView {
            id: JobId(id),
            request,
            allocated,
            last_sample: None,
            remaining_secs: 100.0,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView], total: usize, free: usize) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::ZERO,
            total_cpus: total,
            free_cpus: free,
            jobs,
            queued_jobs: 0,
            next_request: None,
        }
    }

    fn sample(procs: usize, speedup: f64) -> PerfSample {
        PerfSample {
            procs,
            speedup,
            efficiency: speedup / procs as f64,
            iter_time: SimDuration::from_secs(1.0),
            iteration: 3,
        }
    }

    #[test]
    fn unknown_jobs_split_optimistically() {
        let jobs = vec![view(0, 30, 0), view(1, 30, 0)];
        let mut p = EqualEfficiency::paper_default();
        let d = p.on_job_arrival(&ctx(&jobs, 60, 60), JobId(1));
        // Both unknown → both assumed linear → both reach their request.
        assert_eq!(d.allocations, vec![(JobId(0), 30), (JobId(1), 30)]);
    }

    #[test]
    fn scalable_job_beats_unscalable_job() {
        // Demand (2 × 15) exceeds supply (20), so the fill must choose.
        let jobs = vec![view(0, 15, 10), view(1, 15, 10)];
        let mut p = EqualEfficiency::new(4);
        p.on_job_arrival(&ctx(&jobs, 20, 0), JobId(0));
        p.on_job_arrival(&ctx(&jobs, 20, 0), JobId(1));
        // Job 0 scales perfectly, job 1 barely at all.
        p.on_performance_report(&ctx(&jobs, 20, 0), JobId(0), sample(10, 9.8));
        let d = p.on_performance_report(&ctx(&jobs, 20, 0), JobId(1), sample(10, 1.5));
        let a0 = d
            .allocations
            .iter()
            .find(|&&(j, _)| j == JobId(0))
            .unwrap()
            .1;
        let a1 = d
            .allocations
            .iter()
            .find(|&&(j, _)| j == JobId(1))
            .unwrap()
            .1;
        assert!(a0 >= a1 * 2, "scalable job dominates: {a0} vs {a1}");
    }

    #[test]
    fn noisy_measurements_move_allocations() {
        // The instability the paper criticizes: two reports differing only
        // by noise produce different global allocations. Contention is
        // required (demand 2 × 15 over 20 processors).
        let jobs = vec![view(0, 15, 10), view(1, 15, 10)];
        let mut p = EqualEfficiency::new(4);
        p.on_job_arrival(&ctx(&jobs, 20, 0), JobId(0));
        p.on_job_arrival(&ctx(&jobs, 20, 0), JobId(1));
        p.on_performance_report(&ctx(&jobs, 20, 0), JobId(1), sample(10, 6.0));
        let d1 = p.on_performance_report(&ctx(&jobs, 20, 0), JobId(0), sample(10, 6.0 * 0.90));
        let d2 = p.on_performance_report(&ctx(&jobs, 20, 0), JobId(0), sample(10, 6.0 * 1.10));
        assert_ne!(d1, d2, "noise swings the allocation");
    }

    #[test]
    fn completion_forgets_the_job() {
        let jobs_before = vec![view(0, 30, 30), view(1, 30, 30)];
        let mut p = EqualEfficiency::paper_default();
        p.on_job_arrival(&ctx(&jobs_before, 60, 0), JobId(0));
        p.on_job_arrival(&ctx(&jobs_before, 60, 0), JobId(1));
        let jobs_after = vec![view(1, 30, 30)];
        let d = p.on_job_completion(&ctx(&jobs_after, 60, 30), JobId(0));
        assert_eq!(d.allocations, vec![(JobId(1), 30)]);
        assert!(!p.estimators.contains_key(&JobId(0)));
    }

    #[test]
    fn fixed_multiprogramming_level() {
        let p = EqualEfficiency::new(2);
        let jobs = vec![view(0, 30, 30), view(1, 30, 30)];
        assert!(!p.may_start_new_job(&ctx(&jobs, 60, 0)));
        let one = vec![view(0, 30, 30)];
        assert!(p.may_start_new_job(&ctx(&one, 60, 30)));
    }

    #[test]
    fn ragged_alive_sets_are_dealt_exactly() {
        // Satellite invariant: after a capacity change the marginal-gain
        // refill over any awkward alive-CPU count sums to exactly the alive
        // supply while the fitted curves still show positive gain — no
        // share lost to rounding, no dead processor dealt — and every
        // share respects its request.
        for alive in 41..=60 {
            for njobs in [3usize, 4] {
                let jobs: Vec<JobView> = (0..njobs).map(|i| view(i as u32, 30, 15)).collect();
                let mut p = EqualEfficiency::paper_default();
                for j in 0..njobs {
                    let id = JobId(j as u32);
                    p.on_job_arrival(&ctx(&jobs, 60, 0), id);
                    // A healthy sublinear curve: marginal gain stays
                    // positive everywhere, so the fill is work-conserving.
                    p.on_performance_report(&ctx(&jobs, 60, 0), id, sample(10, 8.0));
                }
                let d = p.on_capacity_change(&ctx(&jobs, alive, 0), &[JobId(0)]);
                let total: usize = d.allocations.iter().map(|&(_, a)| a).sum();
                assert_eq!(
                    total, alive,
                    "{njobs} jobs over {alive} alive CPUs: dealt {total}"
                );
                for &(job, share) in &d.allocations {
                    assert!(share <= 30, "{job:?} got {share} > request");
                }
            }
        }
    }

    #[test]
    fn every_report_reallocates() {
        let jobs = vec![view(0, 30, 30)];
        let mut p = EqualEfficiency::paper_default();
        p.on_job_arrival(&ctx(&jobs, 60, 30), JobId(0));
        let d = p.on_performance_report(&ctx(&jobs, 60, 30), JobId(0), sample(30, 20.0));
        assert!(!d.is_empty(), "reports always trigger reallocation");
    }
}
