//! A model of the native IRIX scheduler with the SGI-MP runtime.
//!
//! Under the paper's IRIX configuration each application creates
//! `OMP_NUM_THREADS` kernel threads (set to its processor request) and the
//! operating system time-shares the machine among all threads with an
//! affinity-preserving placement policy. There is no coordination with the
//! queuing system and no reaction to measured performance; the paper's §5.1.1
//! attributes IRIX's poor results to exactly this: "the unresponsiveness of
//! the native runtime system to changes in the system load, and the lack of
//! coordination with the queuing system", plus a placement policy that
//! causes "many process migrations".
//!
//! The policy therefore answers every event with "each job keeps `request`
//! threads" and declares [`SharingModel::TimeShared`]; the engine's
//! time-shared execution model supplies the per-quantum interleaving,
//! migrations, and overcommit overhead.

use pdpa_perf::PerfSample;
use pdpa_sim::JobId;

use crate::policy::{Decisions, PolicyCtx, SchedulingPolicy, SharingModel, TimeSharingParams};

/// The IRIX-like time-sharing baseline.
#[derive(Clone, Debug)]
pub struct IrixLike {
    /// Fixed multiprogramming level enforced by the queuing system
    /// (the paper uses 4 — IRIX itself would admit everything).
    multiprogramming_level: usize,
    params: TimeSharingParams,
}

impl IrixLike {
    /// Creates the policy with the given multiprogramming level and
    /// time-sharing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `multiprogramming_level` is zero.
    pub fn new(multiprogramming_level: usize, params: TimeSharingParams) -> Self {
        assert!(multiprogramming_level > 0, "ML must be at least 1");
        IrixLike {
            multiprogramming_level,
            params,
        }
    }

    /// The paper's configuration: ML 4, default time-sharing parameters.
    pub fn paper_default() -> Self {
        Self::new(4, TimeSharingParams::default())
    }

    /// Every running job keeps as many threads as it requested
    /// (`OMP_NUM_THREADS = request`).
    fn thread_counts(&self, ctx: &PolicyCtx) -> Decisions {
        ctx.jobs.iter().map(|j| (j.id, j.request)).collect()
    }
}

impl Default for IrixLike {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl SchedulingPolicy for IrixLike {
    fn name(&self) -> &'static str {
        "IRIX"
    }

    fn sharing(&self) -> SharingModel {
        SharingModel::TimeShared(self.params)
    }

    fn on_job_arrival(&mut self, ctx: &PolicyCtx, _job: JobId) -> Decisions {
        self.thread_counts(ctx)
    }

    fn on_job_completion(&mut self, ctx: &PolicyCtx, _job: JobId) -> Decisions {
        self.thread_counts(ctx)
    }

    fn on_performance_report(
        &mut self,
        _ctx: &PolicyCtx,
        _job: JobId,
        _sample: PerfSample,
    ) -> Decisions {
        // The native runtime does not react to measured performance.
        Decisions::none()
    }

    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool {
        ctx.running() < self.multiprogramming_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::JobView;
    use pdpa_sim::{SimDuration, SimTime};

    fn view(id: u32, request: usize) -> JobView {
        JobView {
            id: JobId(id),
            request,
            allocated: 0,
            last_sample: None,
            remaining_secs: 100.0,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView]) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::ZERO,
            total_cpus: 60,
            free_cpus: 60,
            jobs,
            queued_jobs: 0,
            next_request: None,
        }
    }

    #[test]
    fn declares_time_sharing() {
        let p = IrixLike::paper_default();
        assert!(matches!(p.sharing(), SharingModel::TimeShared(_)));
    }

    #[test]
    fn jobs_get_their_requested_thread_counts() {
        let jobs = vec![view(0, 30), view(1, 30), view(2, 2)];
        let mut p = IrixLike::paper_default();
        let d = p.on_job_arrival(&ctx(&jobs), JobId(2));
        assert_eq!(
            d.allocations,
            vec![(JobId(0), 30), (JobId(1), 30), (JobId(2), 2)]
        );
    }

    #[test]
    fn oversubscription_is_allowed() {
        // Three 30-thread jobs on 60 CPUs: 90 threads — IRIX does not care.
        let jobs = vec![view(0, 30), view(1, 30), view(2, 30)];
        let mut p = IrixLike::paper_default();
        let d = p.on_job_arrival(&ctx(&jobs), JobId(2));
        let total: usize = d.allocations.iter().map(|&(_, t)| t).sum();
        assert_eq!(total, 90);
    }

    #[test]
    fn ignores_performance() {
        let jobs = vec![view(0, 30)];
        let mut p = IrixLike::paper_default();
        let s = PerfSample {
            procs: 30,
            speedup: 2.0,
            efficiency: 2.0 / 30.0,
            iter_time: SimDuration::from_secs(1.0),
            iteration: 9,
        };
        assert!(p.on_performance_report(&ctx(&jobs), JobId(0), s).is_empty());
    }

    #[test]
    fn multiprogramming_level_is_fixed() {
        let p = IrixLike::new(2, TimeSharingParams::default());
        let two = vec![view(0, 30), view(1, 30)];
        assert!(!p.may_start_new_job(&ctx(&two)));
        let one = vec![view(0, 30)];
        assert!(p.may_start_new_job(&ctx(&one)));
    }
}
