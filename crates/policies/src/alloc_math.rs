//! Allocation arithmetic shared by the policies.

/// Divides `total` processors equally among jobs with the given `requests`,
/// never exceeding a job's request (a job "can only benefit from" what it
/// asked for) and never allocating less than `min_each` to any job (space
/// sharers run-to-completion with at least one processor).
///
/// Leftover processors from capped jobs are redistributed among the
/// uncapped ones (classic water-filling), and any final remainder from
/// integer division goes to the earliest jobs, one each.
///
/// Returns one allocation per request, in order. The sum never exceeds
/// `total` (if even `min_each` per job does not fit, later jobs get what is
/// left, possibly zero).
pub fn equal_shares(total: usize, requests: &[usize], min_each: usize) -> Vec<usize> {
    let n = requests.len();
    if n == 0 {
        return Vec::new();
    }
    let mut alloc = vec![0usize; n];
    let mut remaining = total;

    // Guarantee the minimum first, in arrival order, while supply lasts.
    for (a, &req) in alloc.iter_mut().zip(requests) {
        let floor = min_each.min(req).min(remaining);
        *a = floor;
        remaining -= floor;
    }

    // Water-fill the rest: repeatedly split the remainder equally among jobs
    // that can still grow.
    loop {
        let growable: Vec<usize> = (0..n).filter(|&i| alloc[i] < requests[i]).collect();
        if growable.is_empty() || remaining == 0 {
            break;
        }
        let share = remaining / growable.len();
        if share == 0 {
            // Fewer processors than growable jobs: one each, front first.
            for &i in growable.iter().take(remaining) {
                alloc[i] += 1;
            }
            break;
        }
        let mut gave = 0;
        for &i in &growable {
            let headroom = requests[i] - alloc[i];
            let give = share.min(headroom);
            alloc[i] += give;
            gave += give;
        }
        if gave == 0 {
            break;
        }
        remaining -= gave;
    }
    alloc
}

/// Greedy water-filling by marginal gain: hands out `total` processors one
/// at a time, each to the job whose `gain(job_index, current_alloc)` is
/// highest, subject to per-job `requests` caps and a `min_each` floor.
///
/// `gain` is called with the job index and its current allocation and must
/// return the benefit of the *next* processor. Ties break toward the
/// earliest job. This is the allocation engine of Equal_efficiency.
pub fn marginal_fill<G>(
    total: usize,
    requests: &[usize],
    min_each: usize,
    mut gain: G,
) -> Vec<usize>
where
    G: FnMut(usize, usize) -> f64,
{
    let n = requests.len();
    if n == 0 {
        return Vec::new();
    }
    let mut alloc = vec![0usize; n];
    let mut remaining = total;

    for (a, &req) in alloc.iter_mut().zip(requests) {
        let floor = min_each.min(req).min(remaining);
        *a = floor;
        remaining -= floor;
    }

    while remaining > 0 {
        let best = (0..n)
            .filter(|&i| alloc[i] < requests[i])
            .map(|i| (i, gain(i, alloc[i])))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("gains must not be NaN"));
        match best {
            Some((i, g)) if g > 0.0 => {
                alloc[i] += 1;
                remaining -= 1;
            }
            // No job benefits from another processor: stop handing them out.
            _ => break,
        }
    }
    alloc
}

/// Proportional apportionment: divides `total` processors among jobs in
/// proportion to non-negative `weights`, respecting per-job `requests` caps
/// and a `min_each` floor.
///
/// Processors are handed out one at a time to the growable job furthest
/// below its ideal share `weight/Σweights × total` (largest-deficit, ties
/// toward the earliest job), so the result is work-conserving: when demand
/// covers the supply, every processor is assigned even if capped jobs force
/// others past their ideals. This is the integer-allocation engine of the
/// closed-form heSRPT policy.
pub fn weighted_fill(
    total: usize,
    requests: &[usize],
    min_each: usize,
    weights: &[f64],
) -> Vec<usize> {
    let n = requests.len();
    assert_eq!(n, weights.len(), "one weight per request");
    if n == 0 {
        return Vec::new();
    }
    let weight_sum: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    let mut alloc = vec![0usize; n];
    let mut remaining = total;

    for (a, &req) in alloc.iter_mut().zip(requests) {
        let floor = min_each.min(req).min(remaining);
        *a = floor;
        remaining -= floor;
    }

    let ideal: Vec<f64> = weights
        .iter()
        .map(|w| {
            if weight_sum > 0.0 {
                w.max(0.0) / weight_sum * total as f64
            } else {
                total as f64 / n as f64
            }
        })
        .collect();
    while remaining > 0 {
        let best = (0..n)
            .filter(|&i| alloc[i] < requests[i])
            .map(|i| (i, ideal[i] - alloc[i] as f64))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("weights must not be NaN"));
        match best {
            Some((i, _)) => {
                alloc[i] += 1;
                remaining -= 1;
            }
            None => break,
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_even_split() {
        assert_eq!(equal_shares(60, &[30, 30, 30, 30], 1), vec![15, 15, 15, 15]);
    }

    #[test]
    fn equal_shares_respects_requests() {
        // One small job: its leftover goes to the others.
        // The remainder of the three-way split lands on the earliest job.
        assert_eq!(equal_shares(60, &[30, 2, 30, 30], 1), vec![20, 2, 19, 19]);
    }

    #[test]
    fn equal_shares_light_load_gives_requests() {
        assert_eq!(equal_shares(60, &[30, 2], 1), vec![30, 2]);
    }

    #[test]
    fn equal_shares_remainder_goes_to_front() {
        assert_eq!(equal_shares(10, &[30, 30, 30], 1), vec![4, 3, 3]);
    }

    #[test]
    fn equal_shares_empty() {
        assert!(equal_shares(60, &[], 1).is_empty());
    }

    #[test]
    fn equal_shares_not_enough_for_minimums() {
        // Three jobs, two processors: front jobs get their floor.
        assert_eq!(equal_shares(2, &[8, 8, 8], 1), vec![1, 1, 0]);
    }

    #[test]
    fn equal_shares_never_oversubscribes() {
        for total in [0usize, 1, 7, 33, 60] {
            for reqs in [vec![30, 30], vec![2, 2, 2], vec![60], vec![5, 40, 17, 3]] {
                let alloc = equal_shares(total, &reqs, 1);
                assert!(alloc.iter().sum::<usize>() <= total);
                for (a, r) in alloc.iter().zip(&reqs) {
                    assert!(a <= r);
                }
            }
        }
    }

    #[test]
    fn marginal_fill_prefers_higher_gain() {
        // Job 0 gains 1.0 per cpu, job 1 gains 0.1: job 0 should saturate.
        let alloc = marginal_fill(10, &[8, 8], 1, |i, _| if i == 0 { 1.0 } else { 0.1 });
        assert_eq!(alloc, vec![8, 2]);
    }

    #[test]
    fn marginal_fill_stops_on_zero_gain() {
        let alloc = marginal_fill(10, &[8, 8], 1, |_, a| if a < 3 { 1.0 } else { 0.0 });
        assert_eq!(alloc, vec![3, 3], "no job benefits past 3 processors");
    }

    #[test]
    fn marginal_fill_guarantees_minimum() {
        let alloc = marginal_fill(4, &[8, 8, 8, 8], 1, |_, _| 0.0);
        assert_eq!(alloc, vec![1, 1, 1, 1]);
    }

    #[test]
    fn weighted_fill_tracks_weights() {
        let alloc = weighted_fill(60, &[60, 60, 60], 1, &[3.0, 2.0, 1.0]);
        assert_eq!(alloc, vec![30, 20, 10]);
    }

    #[test]
    fn weighted_fill_is_work_conserving_under_caps() {
        // The heavy job caps at 10; its surplus flows to the others even
        // though that pushes them past their ideal shares.
        let alloc = weighted_fill(60, &[10, 60, 60], 1, &[10.0, 1.0, 1.0]);
        assert_eq!(alloc.iter().sum::<usize>(), 60);
        assert_eq!(alloc[0], 10);
    }

    #[test]
    fn weighted_fill_zero_weights_fall_back_to_equal() {
        let alloc = weighted_fill(9, &[30, 30, 30], 1, &[0.0, 0.0, 0.0]);
        assert_eq!(alloc, vec![3, 3, 3]);
    }

    #[test]
    fn weighted_fill_empty() {
        assert!(weighted_fill(60, &[], 1, &[]).is_empty());
    }

    #[test]
    fn marginal_fill_diminishing_returns_balances() {
        // Identical concave gains: allocations should come out near equal.
        let alloc = marginal_fill(12, &[30, 30, 30], 1, |_, a| 1.0 / (a + 1) as f64);
        assert_eq!(alloc.iter().sum::<usize>(), 12);
        let max = alloc.iter().max().unwrap();
        let min = alloc.iter().min().unwrap();
        assert!(max - min <= 1, "balanced: {alloc:?}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn equal_shares_sum_and_caps(
            total in 0usize..200,
            requests in proptest::collection::vec(1usize..64, 0..12),
            min_each in 0usize..4,
        ) {
            let alloc = equal_shares(total, &requests, min_each);
            prop_assert_eq!(alloc.len(), requests.len());
            prop_assert!(alloc.iter().sum::<usize>() <= total);
            for (a, r) in alloc.iter().zip(&requests) {
                prop_assert!(a <= r);
            }
        }

        #[test]
        fn equal_shares_uses_all_supply_when_demand_exceeds_it(
            requests in proptest::collection::vec(1usize..64, 1..12),
        ) {
            let demand: usize = requests.iter().sum();
            if demand >= 10 {
                let alloc = equal_shares(10, &requests, 1);
                prop_assert_eq!(alloc.iter().sum::<usize>(), 10);
            }
        }

        #[test]
        fn equal_shares_is_fair_for_identical_requests(
            total in 1usize..200,
            n in 1usize..10,
        ) {
            let requests = vec![usize::MAX / 2; n];
            let alloc = equal_shares(total, &requests, 1);
            let max = *alloc.iter().max().unwrap();
            let min = *alloc.iter().min().unwrap();
            prop_assert!(max - min <= 1, "equal jobs differ by at most one: {:?}", alloc);
        }

        #[test]
        fn marginal_fill_sum_and_caps(
            total in 0usize..200,
            requests in proptest::collection::vec(1usize..64, 0..12),
        ) {
            let alloc = marginal_fill(total, &requests, 1, |_, a| 1.0 / (a + 1) as f64);
            prop_assert!(alloc.iter().sum::<usize>() <= total);
            for (a, r) in alloc.iter().zip(&requests) {
                prop_assert!(a <= r);
            }
        }
    }
}
