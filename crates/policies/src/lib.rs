//! Processor scheduling policies.
//!
//! This crate defines the interface between the execution engine and any
//! processor scheduling policy ([`SchedulingPolicy`]), plus the three
//! baselines the paper evaluates PDPA against:
//!
//! - [`Equipartition`] (McCann, Vaswani & Zahorjan) — equal shares for every
//!   running job, recomputed at arrivals and completions;
//! - [`EqualEfficiency`] (Nguyen, Zahorjan & Vaswani) — more processors to
//!   the applications with the best extrapolated efficiency;
//! - [`IrixLike`] — a model of the native IRIX time-sharing scheduler with
//!   affinity-based placement and no coordination with the queuing system;
//! - [`RigidFirstFit`] — rigid space sharing (full request or wait), the
//!   fragmentation strawman of §4.3;
//! - [`GangScheduler`] — Ousterhout-style gang scheduling (whole-machine
//!   round-robin slots), the classic third sharing discipline.
//!
//! Three further competitors come from the later literature (see PAPERS.md)
//! and feed the slowdown tournament:
//!
//! - [`HeSrpt`] (Berg, Vesilo & Harchol-Balter) — the closed-form
//!   remaining-work-ranked allocation that minimizes mean slowdown under
//!   power-law speedups;
//! - [`OptSplit`] — size-aware water-filling over fitted concave speedup
//!   curves, the numerical route to the same favor-the-small-jobs optimum;
//! - [`LearnedAlloc`] (Chasparis et al.) — per-job online gradient steps on
//!   the allocation, driven by measured iteration speedups with
//!   deterministic seeded exploration.
//!
//! PDPA itself lives in the `pdpa-core` crate and implements the same trait.

pub mod alloc_math;
pub mod equal_efficiency;
pub mod equipartition;
pub mod gang;
pub mod hesrpt;
pub mod irix;
pub mod learned;
pub mod optsplit;
pub mod policy;
pub mod rigid;

pub use equal_efficiency::EqualEfficiency;
pub use equipartition::Equipartition;
pub use gang::GangScheduler;
pub use hesrpt::HeSrpt;
pub use irix::IrixLike;
pub use learned::LearnedAlloc;
pub use optsplit::OptSplit;
pub use policy::{
    Decisions, GangParams, JobView, PolicyCtx, SchedulingPolicy, SharingModel, TimeSharingParams,
    TransitionNote,
};
pub use rigid::RigidFirstFit;
