//! heSRPT (Berg, Vesilo & Harchol-Balter, "heSRPT: Parallel Scheduling to
//! Minimize Mean Slowdown", arXiv:2011.09676; see PAPERS.md).
//!
//! For jobs whose speedup follows a power law `s(k) = k^p` with
//! `0 < p < 1`, heSRPT gives the *closed-form* optimal allocation for mean
//! slowdown: rank the running jobs by remaining work and give the job with
//! the `i`-th largest remaining work the machine fraction
//!
//! ```text
//! σ_i = (i/n)^{1/(1−p)} − ((i−1)/n)^{1/(1−p)}
//! ```
//!
//! so the job *closest to completion* (rank `n`) receives the largest
//! share — an SRPT bias softened by the concavity of the speedup curve
//! (with `p → 1`, linear speedup, the policy degenerates to pure SRPT;
//! with `p → 0` it approaches equipartition).
//!
//! This reproduction generalizes the single shared exponent of the paper to
//! the per-job speedup information the engine already carries: each job's
//! exponent is fitted from its latest performance report
//! (`p = ln s / ln k`), the per-rank fractions are computed with each job's
//! own exponent and normalized, and the integer allocation is apportioned
//! by [`weighted_fill`] — work-conserving and capped at each job's request.
//! Jobs that have not reported yet use a neutral default exponent.

use crate::alloc_math::weighted_fill;
use crate::policy::{Decisions, PolicyCtx, SchedulingPolicy};
use pdpa_perf::PerfSample;
use pdpa_sim::JobId;

/// The heSRPT closed-form space-sharing policy.
///
/// # Examples
///
/// ```
/// use pdpa_policies::{HeSrpt, SchedulingPolicy};
///
/// let policy = HeSrpt::default();
/// assert_eq!(policy.name(), "heSRPT");
/// ```
#[derive(Clone, Debug)]
pub struct HeSrpt {
    /// Fixed multiprogramming level (matched to the paper baselines' 4).
    multiprogramming_level: usize,
    /// Speedup exponent assumed for jobs that have not reported yet.
    default_exponent: f64,
}

impl HeSrpt {
    /// Creates the policy with the given fixed multiprogramming level.
    ///
    /// # Panics
    ///
    /// Panics if `multiprogramming_level` is zero.
    pub fn new(multiprogramming_level: usize) -> Self {
        assert!(multiprogramming_level > 0, "ML must be at least 1");
        HeSrpt {
            multiprogramming_level,
            default_exponent: 0.5,
        }
    }

    /// The configured multiprogramming level.
    pub fn multiprogramming_level(&self) -> usize {
        self.multiprogramming_level
    }

    /// The fitted power-law exponent of a job's speedup curve, from its
    /// latest report (`s(k) = k^p ⇒ p = ln s / ln k`), clamped into the
    /// open interval heSRPT's closed form is defined on.
    fn exponent(&self, sample: Option<PerfSample>) -> f64 {
        let p = match sample {
            Some(s) if s.procs >= 2 && s.speedup > 1.0 => s.speedup.ln() / (s.procs as f64).ln(),
            _ => self.default_exponent,
        };
        p.clamp(0.05, 0.95)
    }

    /// Recomputes every allocation from the closed form.
    fn reallocate(&self, ctx: &PolicyCtx) -> Decisions {
        let n = ctx.jobs.len();
        if n == 0 {
            return Decisions::none();
        }
        // Rank 1 = largest remaining work. Sorting is on the
        // allocation-independent remaining-size estimate, so reallocations
        // do not reshuffle ranks by themselves; ties keep arrival order.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            ctx.jobs[b]
                .remaining_secs
                .partial_cmp(&ctx.jobs[a].remaining_secs)
                .expect("remaining work is finite")
        });
        let mut weights = vec![0.0; n];
        for (rank0, &j) in order.iter().enumerate() {
            let alpha = 1.0 / (1.0 - self.exponent(ctx.jobs[j].last_sample));
            let hi = ((rank0 + 1) as f64 / n as f64).powf(alpha);
            let lo = (rank0 as f64 / n as f64).powf(alpha);
            weights[j] = hi - lo;
        }
        let requests: Vec<usize> = ctx.jobs.iter().map(|j| j.request).collect();
        let shares = weighted_fill(ctx.total_cpus, &requests, 1, &weights);
        ctx.jobs
            .iter()
            .zip(shares)
            .map(|(j, s)| (j.id, s))
            .collect()
    }
}

impl Default for HeSrpt {
    /// Multiprogramming level 4 (the paper baselines' setting) and a
    /// neutral default exponent of 0.5.
    fn default() -> Self {
        HeSrpt::new(4)
    }
}

impl SchedulingPolicy for HeSrpt {
    fn name(&self) -> &'static str {
        "heSRPT"
    }

    fn on_job_arrival(&mut self, ctx: &PolicyCtx, _job: JobId) -> Decisions {
        self.reallocate(ctx)
    }

    fn on_job_completion(&mut self, ctx: &PolicyCtx, _job: JobId) -> Decisions {
        self.reallocate(ctx)
    }

    fn on_performance_report(
        &mut self,
        ctx: &PolicyCtx,
        _job: JobId,
        _sample: PerfSample,
    ) -> Decisions {
        // The report has already updated `last_sample` and the remaining
        // size shrinks continuously; re-rank on every report.
        self.reallocate(ctx)
    }

    fn on_capacity_change(&mut self, ctx: &PolicyCtx, _changed: &[JobId]) -> Decisions {
        self.reallocate(ctx)
    }

    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool {
        ctx.running() < self.multiprogramming_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::JobView;
    use pdpa_sim::{SimDuration, SimTime};

    fn view(id: u32, request: usize, remaining_secs: f64) -> JobView {
        JobView {
            id: JobId(id),
            request,
            allocated: 0,
            last_sample: None,
            remaining_secs,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView], total: usize) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::ZERO,
            total_cpus: total,
            free_cpus: total,
            jobs,
            queued_jobs: 0,
            next_request: None,
        }
    }

    fn alloc_of(d: &Decisions, id: u32) -> usize {
        d.allocations
            .iter()
            .find(|&&(j, _)| j == JobId(id))
            .map(|&(_, a)| a)
            .expect("job decided")
    }

    #[test]
    fn smallest_remaining_work_gets_the_largest_share() {
        let jobs = vec![view(0, 60, 900.0), view(1, 60, 300.0), view(2, 60, 30.0)];
        let mut p = HeSrpt::default();
        let d = p.on_job_arrival(&ctx(&jobs, 60), JobId(2));
        let (a0, a1, a2) = (alloc_of(&d, 0), alloc_of(&d, 1), alloc_of(&d, 2));
        assert!(a2 > a1 && a1 > a0, "SRPT bias: {a0} {a1} {a2}");
        assert_eq!(a0 + a1 + a2, 60, "work-conserving");
    }

    #[test]
    fn closed_form_matches_the_paper_fractions() {
        // Two equal-exponent jobs, p = 0.5 ⇒ α = 2: fractions are
        // (1/2)² = 1/4 for the larger job, 1 − 1/4 = 3/4 for the smaller.
        let jobs = vec![view(0, 60, 500.0), view(1, 60, 100.0)];
        let mut p = HeSrpt::default();
        let d = p.on_job_arrival(&ctx(&jobs, 60), JobId(1));
        assert_eq!(alloc_of(&d, 0), 15);
        assert_eq!(alloc_of(&d, 1), 45);
    }

    #[test]
    fn requests_cap_the_shares() {
        let jobs = vec![view(0, 60, 500.0), view(1, 8, 100.0)];
        let mut p = HeSrpt::default();
        let d = p.on_job_arrival(&ctx(&jobs, 60), JobId(1));
        assert_eq!(alloc_of(&d, 1), 8, "capped at its request");
        assert_eq!(alloc_of(&d, 0), 52, "surplus flows back");
    }

    #[test]
    fn fitted_exponent_sharpens_the_srpt_bias() {
        // A near-linear-speedup small job (p → 1) should take almost the
        // whole machine from an equally-sized default-exponent job.
        let sample = PerfSample {
            procs: 16,
            speedup: 15.0,
            efficiency: 15.0 / 16.0,
            iter_time: SimDuration::from_secs(1.0),
            iteration: 3,
        };
        let mut small = view(1, 60, 100.0);
        small.last_sample = Some(sample);
        let jobs = vec![view(0, 60, 500.0), small];
        let mut p = HeSrpt::default();
        let d = p.on_performance_report(&ctx(&jobs, 60), JobId(1), sample);
        // With both jobs at the neutral exponent the smaller job gets 45
        // (see `closed_form_matches_the_paper_fractions`); its near-linear
        // fitted curve must push it strictly past that.
        assert!(
            alloc_of(&d, 1) > 45,
            "near-linear job sharpens its share: {:?}",
            d.allocations
        );
    }

    #[test]
    fn single_job_gets_everything_it_requests() {
        let jobs = vec![view(0, 30, 100.0)];
        let mut p = HeSrpt::default();
        let d = p.on_job_arrival(&ctx(&jobs, 60), JobId(0));
        assert_eq!(alloc_of(&d, 0), 30);
    }

    #[test]
    fn multiprogramming_level_is_fixed() {
        let p = HeSrpt::default();
        let jobs: Vec<JobView> = (0..4).map(|i| view(i, 30, 100.0)).collect();
        assert!(!p.may_start_new_job(&ctx(&jobs, 60)));
        assert!(p.may_start_new_job(&ctx(&jobs[..3], 60)));
    }

    #[test]
    fn empty_machine_decides_nothing() {
        let mut p = HeSrpt::default();
        assert!(p.on_job_completion(&ctx(&[], 60), JobId(0)).is_empty());
    }
}
