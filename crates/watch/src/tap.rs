//! The [`LiveTap`]: a lock-light shared-state mirror of a running engine.
//!
//! The tap is the bridge between the deterministic, single-owner world of
//! the engine and the concurrent world of status-server threads. It never
//! feeds anything *back* into the run — readers see a mirror, the engine
//! sees a sink — so attaching it cannot perturb determinism; the
//! bit-identical decision-stream test in `tests/live_watch.rs` pins that.
//!
//! Three feeds, all cheap on the engine side:
//!
//! - **progress**: the engine pushes a [`HealthSnapshot`] on its amortized
//!   instrumentation cadence (every 64k events on the classic loop, every
//!   few hundred barrier rounds sharded) through the
//!   [`ProgressSink`] impl; the tap stores the fields in atomics.
//! - **heartbeat/watchdog**: the [`HeartbeatSink`] impl keeps the latest
//!   formatted line; a tripped watchdog marks the run aborted.
//! - **events**: a [`TapObserver`] tees the observer stream into a bounded
//!   ring with honest drop accounting — under lock contention the tap
//!   *drops* (and counts) rather than ever blocking the engine.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pdpa_obs::{ObsEvent, Observer, TimedEvent};
use pdpa_prof::{memory_high_water_kib, HealthSnapshot, HeartbeatSink, ProgressSink};
use pdpa_sim::SimTime;

use crate::proto::{HealthBody, ProgressBody, RunState, StatusBody, TailBody, PROTO_VERSION};

/// Immutable identity of the watched run, set once at tap creation.
#[derive(Clone, Debug, Default)]
pub struct RunMeta {
    /// The policy's display name.
    pub policy: String,
    /// The trace (or workload) being replayed.
    pub trace: String,
    /// Shard count (1 = classic engine).
    pub shards: u64,
    /// Jobs in the workload.
    pub jobs_total: u64,
}

const STATE_RUNNING: u8 = 0;
const STATE_DONE: u8 = 1;
const STATE_ABORTED: u8 = 2;

/// Default bound on the recent-event ring.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// The shared-state mirror served by [`StatusServer`](crate::StatusServer).
#[derive(Debug)]
pub struct LiveTap {
    meta: RunMeta,
    started: Instant,
    state: AtomicU8,
    // Live job total: seeded from meta, grown by online admission when a
    // daemon owns the tap (batch replays never touch it).
    jobs_total: AtomicU64,

    // Progress mirror, written by ProgressSink::progress.
    sim_clock_bits: AtomicU64,
    events_popped: AtomicU64,
    queue_len: AtomicU64,
    running: AtomicU64,
    waiting: AtomicU64,
    shard_events: Mutex<Vec<u64>>,

    // Health mirror.
    heartbeat_line: Mutex<Option<String>>,
    watchdog: Mutex<Option<String>>,

    // Event feed, written by TapObserver.
    events_published: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_finished: AtomicU64,
    jobs_failed: AtomicU64,
    ring: Mutex<VecDeque<TimedEvent>>,
    ring_cap: usize,
    ring_dropped: AtomicU64,
}

impl LiveTap {
    /// A tap for the given run, with the default ring capacity.
    pub fn new(meta: RunMeta) -> Arc<Self> {
        Self::with_ring_capacity(meta, DEFAULT_RING_CAPACITY)
    }

    /// A tap keeping at most `capacity` recent events.
    pub fn with_ring_capacity(meta: RunMeta, capacity: usize) -> Arc<Self> {
        let jobs_total = AtomicU64::new(meta.jobs_total);
        Arc::new(LiveTap {
            meta,
            started: Instant::now(),
            state: AtomicU8::new(STATE_RUNNING),
            jobs_total,
            sim_clock_bits: AtomicU64::new(0),
            events_popped: AtomicU64::new(0),
            queue_len: AtomicU64::new(0),
            running: AtomicU64::new(0),
            waiting: AtomicU64::new(0),
            shard_events: Mutex::new(Vec::new()),
            heartbeat_line: Mutex::new(None),
            watchdog: Mutex::new(None),
            events_published: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_finished: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            ring_cap: capacity.max(1),
            ring_dropped: AtomicU64::new(0),
        })
    }

    /// Feeds one observer event into the mirror. Non-blocking: if a server
    /// thread holds the ring, the event is counted as dropped instead of
    /// making the engine wait.
    pub fn observe(&self, at: SimTime, event: &ObsEvent) {
        // fetch_add returns the prior count — a 0-based publication seq.
        let seq = self.events_published.fetch_add(1, Ordering::Relaxed);
        match event {
            ObsEvent::JobSubmitted { .. } => {
                self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::JobFinished { .. } => {
                self.jobs_finished.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::JobFailed { .. } => {
                self.jobs_failed.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        match self.ring.try_lock() {
            Ok(mut ring) => {
                if ring.len() == self.ring_cap {
                    ring.pop_front();
                    self.ring_dropped.fetch_add(1, Ordering::Relaxed);
                }
                ring.push_back(TimedEvent {
                    at,
                    seq,
                    event: event.clone(),
                });
            }
            Err(_) => {
                self.ring_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Marks the run finished (all outputs computed).
    pub fn mark_done(&self) {
        // Never downgrade an abort: watchdog_fired may have run first.
        let _ = self.state.compare_exchange(
            STATE_RUNNING,
            STATE_DONE,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Marks the run aborted with the watchdog's diagnostic.
    pub fn mark_aborted(&self, diagnostic: &str) {
        *self.watchdog.lock().unwrap() = Some(diagnostic.to_string());
        self.state.store(STATE_ABORTED, Ordering::Relaxed);
    }

    /// Where the run is in its lifecycle.
    pub fn state(&self) -> RunState {
        match self.state.load(Ordering::Relaxed) {
            STATE_DONE => RunState::Done,
            STATE_ABORTED => RunState::Aborted,
            _ => RunState::Running,
        }
    }

    /// Wall-clock seconds since the tap was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Updates the live job total (online admission grew the workload).
    pub fn set_jobs_total(&self, total: u64) {
        self.jobs_total.store(total, Ordering::Relaxed);
    }

    /// The current job total: the workload size at tap creation, plus any
    /// jobs admitted online since.
    pub fn jobs_total(&self) -> u64 {
        self.jobs_total.load(Ordering::Relaxed)
    }

    /// The `status` view.
    pub fn status_body(&self) -> StatusBody {
        StatusBody {
            proto: PROTO_VERSION,
            state: self.state(),
            policy: self.meta.policy.clone(),
            trace: self.meta.trace.clone(),
            shards: self.meta.shards,
            jobs_total: self.jobs_total(),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_finished: self.jobs_finished.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            events_published: self.events_published.load(Ordering::Relaxed),
            elapsed_secs: self.elapsed_secs(),
            watchdog: self.watchdog.lock().unwrap().clone(),
        }
    }

    /// The `progress` view.
    pub fn progress_body(&self) -> ProgressBody {
        let elapsed = self.elapsed_secs();
        let events_popped = self.events_popped.load(Ordering::Relaxed);
        let finished = self.jobs_finished.load(Ordering::Relaxed);
        let total = self.jobs_total();
        // Naive proportional ETA over finished jobs; honest enough for a
        // progress line, absent only before the first completion.
        let eta_secs = (finished > 0 && total > finished)
            .then(|| elapsed * (total - finished) as f64 / finished as f64);
        ProgressBody {
            sim_clock_secs: f64::from_bits(self.sim_clock_bits.load(Ordering::Relaxed)),
            events_popped,
            events_per_sec: if elapsed > 0.0 {
                events_popped as f64 / elapsed
            } else {
                0.0
            },
            queue_len: self.queue_len.load(Ordering::Relaxed),
            running: self.running.load(Ordering::Relaxed),
            waiting: self.waiting.load(Ordering::Relaxed),
            jobs_finished: finished,
            jobs_total: total,
            eta_secs,
            elapsed_secs: elapsed,
        }
    }

    /// The `health` view.
    pub fn health_body(&self) -> HealthBody {
        let shard_events = self.shard_events.lock().unwrap().clone();
        HealthBody {
            heartbeat: self.heartbeat_line.lock().unwrap().clone(),
            watchdog: self.watchdog.lock().unwrap().clone(),
            imbalance: pdpa_prof::report::imbalance(&shard_events),
            shard_events,
            memory_hwm_kib: memory_high_water_kib(),
        }
    }

    /// The `tail n` view: up to `n` most recent ring events, oldest first.
    pub fn tail_body(&self, n: usize) -> TailBody {
        let ring = self.ring.lock().unwrap();
        let skip = ring.len().saturating_sub(n);
        TailBody {
            events: ring.iter().skip(skip).map(TimedEvent::to_line).collect(),
            dropped: self.ring_dropped.load(Ordering::Relaxed),
        }
    }
}

impl ProgressSink for LiveTap {
    fn progress(&self, snapshot: &HealthSnapshot) {
        self.sim_clock_bits
            .store(snapshot.sim_clock_secs.to_bits(), Ordering::Relaxed);
        self.events_popped
            .store(snapshot.events_popped, Ordering::Relaxed);
        self.queue_len
            .store(snapshot.queue_len as u64, Ordering::Relaxed);
        self.running
            .store(snapshot.running as u64, Ordering::Relaxed);
        self.waiting
            .store(snapshot.waiting as u64, Ordering::Relaxed);
        if !snapshot.shard_events.is_empty() {
            if let Ok(mut shard_events) = self.shard_events.try_lock() {
                shard_events.clear();
                shard_events.extend_from_slice(&snapshot.shard_events);
            }
        }
    }

    fn watchdog_fired(&self, diagnostic: &str) {
        self.mark_aborted(diagnostic);
    }
}

impl HeartbeatSink for LiveTap {
    fn emit(&self, line: &str, snapshot: &HealthSnapshot) {
        *self.heartbeat_line.lock().unwrap() = Some(line.to_string());
        self.progress(snapshot);
    }
}

/// Tees an observer stream into a [`LiveTap`] while forwarding every event,
/// unchanged and in order, to the wrapped observer — which is why a
/// `--serve` run records the byte-identical stream of a plain run.
pub struct TapObserver<'a> {
    inner: &'a mut dyn Observer,
    tap: Arc<LiveTap>,
}

impl std::fmt::Debug for TapObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TapObserver")
            .field("tap", &self.tap)
            .finish_non_exhaustive()
    }
}

impl<'a> TapObserver<'a> {
    /// Wraps `inner`, mirroring into `tap`.
    pub fn new(inner: &'a mut dyn Observer, tap: Arc<LiveTap>) -> Self {
        TapObserver { inner, tap }
    }
}

impl Observer for TapObserver<'_> {
    fn is_enabled(&self) -> bool {
        true
    }

    fn on_event(&mut self, at: SimTime, event: &ObsEvent) {
        self.tap.observe(at, event);
        self.inner.on_event(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_obs::RecordingObserver;
    use pdpa_sim::JobId;

    fn meta() -> RunMeta {
        RunMeta {
            policy: "PDPA".into(),
            trace: "w2".into(),
            shards: 1,
            jobs_total: 4,
        }
    }

    #[test]
    fn tap_counts_jobs_and_mirrors_progress() {
        let tap = LiveTap::new(meta());
        tap.observe(
            SimTime::from_secs(1.0),
            &ObsEvent::JobSubmitted { job: JobId(0) },
        );
        tap.observe(
            SimTime::from_secs(2.0),
            &ObsEvent::JobFinished { job: JobId(0) },
        );
        tap.progress(&HealthSnapshot {
            sim_clock_secs: 2.5,
            events_popped: 42,
            queue_len: 3,
            running: 1,
            waiting: 2,
            shard_events: vec![20, 22],
        });

        let status = tap.status_body();
        assert_eq!(status.jobs_submitted, 1);
        assert_eq!(status.jobs_finished, 1);
        assert_eq!(status.events_published, 2);
        assert_eq!(status.state, RunState::Running);

        let progress = tap.progress_body();
        assert_eq!(progress.sim_clock_secs, 2.5);
        assert_eq!(progress.events_popped, 42);
        assert_eq!(progress.queue_len, 3);
        assert!(progress.eta_secs.is_some(), "one job finished of four");

        let health = tap.health_body();
        assert_eq!(health.shard_events, vec![20, 22]);
        assert!(health.imbalance.is_some());
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let tap = LiveTap::with_ring_capacity(meta(), 2);
        for i in 0..5u32 {
            tap.observe(
                SimTime::from_secs(f64::from(i)),
                &ObsEvent::JobSubmitted { job: JobId(i) },
            );
        }
        let tail = tap.tail_body(10);
        assert_eq!(tail.events.len(), 2, "ring keeps the newest two");
        assert_eq!(tail.dropped, 3, "evictions are counted");
        assert!(tail.events[0].contains("job=3"), "got: {:?}", tail.events);
        assert!(tail.events[1].contains("job=4"), "got: {:?}", tail.events);
        // tail 1 returns only the newest.
        assert_eq!(tap.tail_body(1).events.len(), 1);
    }

    #[test]
    fn jobs_total_grows_with_online_admission() {
        let tap = LiveTap::new(meta());
        assert_eq!(tap.status_body().jobs_total, 4);
        assert_eq!(tap.status_body().proto, PROTO_VERSION);
        tap.set_jobs_total(9);
        assert_eq!(tap.status_body().jobs_total, 9);
        assert_eq!(tap.progress_body().jobs_total, 9);
    }

    #[test]
    fn abort_wins_over_done() {
        let tap = LiveTap::new(meta());
        tap.watchdog_fired("watchdog: stuck");
        tap.mark_done();
        assert_eq!(tap.state(), RunState::Aborted);
        assert!(tap.status_body().watchdog.is_some());
    }

    #[test]
    fn heartbeat_sink_stores_latest_line() {
        let tap = LiveTap::new(meta());
        assert!(tap.health_body().heartbeat.is_none());
        tap.emit("heartbeat t+5s: clock=1.0s", &HealthSnapshot::default());
        tap.emit("heartbeat t+10s: clock=2.0s", &HealthSnapshot::default());
        assert_eq!(
            tap.health_body().heartbeat.as_deref(),
            Some("heartbeat t+10s: clock=2.0s")
        );
    }

    #[test]
    fn tap_observer_forwards_everything() {
        let tap = LiveTap::with_ring_capacity(meta(), 1);
        let mut rec = RecordingObserver::new();
        {
            let mut obs = TapObserver::new(&mut rec, Arc::clone(&tap));
            assert!(obs.is_enabled());
            for i in 0..3u32 {
                obs.on_event(
                    SimTime::from_secs(f64::from(i)),
                    &ObsEvent::JobSubmitted { job: JobId(i) },
                );
            }
        }
        assert_eq!(rec.events().len(), 3, "recorder sees the full stream");
        assert_eq!(tap.tail_body(10).events.len(), 1, "tap ring is bounded");
    }
}
