//! The TCP status server behind `pdpa replay --serve`.
//!
//! A tiny thread-per-connection server over std::net — the seed of the
//! `pdpad` daemon's query surface (ROADMAP item 1). Each connection speaks
//! the line-delimited protocol of [`proto`](crate::proto): read one
//! request line, answer one response line, repeat until the client hangs
//! up. All answers come from the [`LiveTap`] mirror and the global metrics
//! registry; server threads never touch engine state, so a slow or
//! misbehaving client cannot perturb the run.
//!
//! Lifecycle: the CLI binds before the run starts (printing the actual
//! bound address, so `--serve 127.0.0.1:0` works for CI), lets the run
//! drive, then calls [`StatusServer::wait_for_final_query`] so a polling
//! client can observe the terminal state before the process exits, and
//! finally [`StatusServer::shutdown`].

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pdpa_obs::Registry;

use crate::prom::prometheus_text;
use crate::proto::{
    HelloBody, RejectBody, Request, RequestKind, Response, ResponseBody, RunState, PROTO_VERSION,
};
use crate::tap::LiveTap;

/// Serves the v2 control vocabulary (`submit`, `cancel`, `drain`,
/// `snapshot`, `shutdown`, `jobs`, `job`, and the `hello` identity
/// exchange). The read-only replay server uses [`ReadOnlyControl`], which
/// answers `hello` and rejects everything else with `not_a_daemon`; the
/// `pdpad` daemon installs a handler that round-trips ops to the engine
/// loop. Handlers run on connection threads, so they must be thread-safe
/// and must never block on the engine.
pub trait ControlHandler: Send + Sync {
    /// Answers one control request. Query kinds never reach the handler.
    fn control(&self, kind: &RequestKind, tap: &LiveTap) -> ResponseBody;
}

/// The default [`ControlHandler`]: identifies the server as `replay` and
/// rejects every mutating request with the stable `not_a_daemon` code, so
/// a v2 client pointed at `pdpa replay --serve` gets a typed refusal, not
/// a protocol error.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadOnlyControl;

impl ControlHandler for ReadOnlyControl {
    fn control(&self, kind: &RequestKind, tap: &LiveTap) -> ResponseBody {
        match kind {
            RequestKind::Hello => ResponseBody::Hello(HelloBody {
                proto: PROTO_VERSION,
                server: "replay".to_string(),
                policy: tap.status_body().policy,
                state: tap.state(),
            }),
            _ => ResponseBody::Reject(RejectBody {
                reason: "not_a_daemon".to_string(),
                retry_after_secs: None,
            }),
        }
    }
}

/// Shared bookkeeping between the accept loop, connection handlers, and
/// the owning CLI thread.
#[derive(Debug, Default)]
struct ServerShared {
    stop: AtomicBool,
    /// Connections accepted over the server's lifetime.
    accepted: AtomicU64,
    /// Currently open connections.
    active: AtomicU64,
    /// Set once any request has been answered while the tap was in a
    /// terminal state — a client has seen the final status.
    final_query_served: AtomicBool,
}

/// A running status server. Dropping it without [`StatusServer::shutdown`]
/// leaks the accept thread until process exit (harmless, but tests and the
/// CLI shut down explicitly).
#[derive(Debug)]
pub struct StatusServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving `tap` read-only: queries from the tap, control requests
    /// politely rejected by [`ReadOnlyControl`].
    pub fn bind<A: ToSocketAddrs>(addr: A, tap: Arc<LiveTap>) -> std::io::Result<StatusServer> {
        Self::bind_with_handler(addr, tap, Arc::new(ReadOnlyControl))
    }

    /// Binds like [`bind`](Self::bind) but with a custom control handler —
    /// how `pdpad` turns the status server into a full service endpoint.
    pub fn bind_with_handler<A: ToSocketAddrs>(
        addr: A,
        tap: Arc<LiveTap>,
        handler: Arc<dyn ControlHandler>,
    ) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared::default());
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("pdpa-serve".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    accept_shared.accepted.fetch_add(1, Ordering::Relaxed);
                    accept_shared.active.fetch_add(1, Ordering::Relaxed);
                    let tap = Arc::clone(&tap);
                    let shared = Arc::clone(&accept_shared);
                    let handler = Arc::clone(&handler);
                    let _ = std::thread::Builder::new()
                        .name("pdpa-serve-conn".into())
                        .spawn(move || {
                            handle_connection(stream, &tap, handler.as_ref(), &shared);
                            shared.active.fetch_sub(1, Ordering::Relaxed);
                        });
                }
            })?;
        Ok(StatusServer {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Gives a polling client a window to observe the terminal run state:
    /// returns once some request has been answered post-completion and no
    /// connection is still open — immediately if no client ever connected
    /// — or after `timeout`. Call after marking the tap done/aborted.
    pub fn wait_for_final_query(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.shared.accepted.load(Ordering::Relaxed) == 0 {
                return;
            }
            if self.shared.final_query_served.load(Ordering::Relaxed)
                && self.shared.active.load(Ordering::Relaxed) == 0
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops accepting and joins the accept thread. Open connections are
    /// abandoned (their threads end when the client hangs up or the
    /// process exits).
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Poke the blocking accept() so the loop observes the stop flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    tap: &LiveTap,
    handler: &dyn ControlHandler,
    shared: &ServerShared,
) {
    // A stuck client should not pin a handler thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse_line(&line) {
            Ok(request) => answer(&request, tap, handler),
            Err(message) => Response {
                id: 0,
                body: ResponseBody::Error { message },
            },
        };
        if writer
            .write_all(format!("{}\n", response.to_line()).as_bytes())
            .is_err()
        {
            break;
        }
        if writer.flush().is_err() {
            break;
        }
        if tap.state() != RunState::Running && !matches!(response.body, ResponseBody::Error { .. })
        {
            shared.final_query_served.store(true, Ordering::Relaxed);
        }
    }
}

fn answer(request: &Request, tap: &LiveTap, handler: &dyn ControlHandler) -> Response {
    let body = match &request.kind {
        RequestKind::Status => ResponseBody::Status(tap.status_body()),
        RequestKind::Progress => ResponseBody::Progress(tap.progress_body()),
        RequestKind::Health => ResponseBody::Health(tap.health_body()),
        RequestKind::Metrics => ResponseBody::Metrics {
            format: "prometheus".to_string(),
            body: prometheus_text(Registry::global()),
        },
        RequestKind::Tail { n } => ResponseBody::Tail(tap.tail_body(*n)),
        control => handler.control(control, tap),
    };
    Response {
        id: request.id,
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tap::RunMeta;
    use pdpa_obs::ObsEvent;
    use pdpa_sim::{JobId, SimTime};

    fn query(addr: SocketAddr, lines: &[String]) -> Vec<Response> {
        let stream = TcpStream::connect(addr).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        let mut out = Vec::new();
        for line in lines {
            writer
                .write_all(format!("{line}\n").as_bytes())
                .expect("writes");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reads");
            out.push(Response::parse_line(reply.trim_end()).expect("parses"));
        }
        out
    }

    #[test]
    fn serves_all_query_types_over_one_connection() {
        let tap = LiveTap::new(RunMeta {
            policy: "PDPA".into(),
            trace: "t.swf".into(),
            shards: 2,
            jobs_total: 10,
        });
        tap.observe(
            SimTime::from_secs(1.0),
            &ObsEvent::JobSubmitted { job: JobId(0) },
        );
        let server = StatusServer::bind("127.0.0.1:0", Arc::clone(&tap)).expect("binds");
        let addr = server.local_addr();

        let requests: Vec<String> = [
            Request {
                id: 1,
                kind: RequestKind::Status,
            },
            Request {
                id: 2,
                kind: RequestKind::Progress,
            },
            Request {
                id: 3,
                kind: RequestKind::Health,
            },
            Request {
                id: 4,
                kind: RequestKind::Metrics,
            },
            Request {
                id: 5,
                kind: RequestKind::Tail { n: 5 },
            },
        ]
        .iter()
        .map(Request::to_line)
        .collect();
        let responses = query(addr, &requests);

        assert_eq!(responses.len(), 5);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.id, i as u64 + 1, "ids echo in order");
        }
        match &responses[0].body {
            ResponseBody::Status(s) => {
                assert_eq!(s.policy, "PDPA");
                assert_eq!(s.jobs_total, 10);
                assert_eq!(s.jobs_submitted, 1);
                assert_eq!(s.state, RunState::Running);
            }
            other => panic!("expected status, got {other:?}"),
        }
        match &responses[3].body {
            ResponseBody::Metrics { format, body } => {
                assert_eq!(format, "prometheus");
                assert!(body.contains("pdpa_engine_runs_total"));
            }
            other => panic!("expected metrics, got {other:?}"),
        }
        match &responses[4].body {
            ResponseBody::Tail(t) => {
                assert_eq!(t.events.len(), 1);
                assert!(t.events[0].contains("submit"));
            }
            other => panic!("expected tail, got {other:?}"),
        }

        assert_eq!(server.connections(), 1);
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_error_response() {
        let tap = LiveTap::new(RunMeta::default());
        let server = StatusServer::bind("127.0.0.1:0", Arc::clone(&tap)).expect("binds");
        let responses = query(server.local_addr(), &["not json at all".to_string()]);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].id, 0);
        assert!(matches!(responses[0].body, ResponseBody::Error { .. }));
        server.shutdown();
    }

    #[test]
    fn read_only_server_answers_hello_and_rejects_control() {
        let tap = LiveTap::new(RunMeta {
            policy: "PDPA".into(),
            trace: "t.swf".into(),
            shards: 1,
            jobs_total: 1,
        });
        let server = StatusServer::bind("127.0.0.1:0", Arc::clone(&tap)).expect("binds");
        let responses = query(
            server.local_addr(),
            &[
                Request {
                    id: 1,
                    kind: RequestKind::Hello,
                }
                .to_line(),
                Request {
                    id: 2,
                    kind: RequestKind::Submit {
                        class: "swim".into(),
                        request: None,
                        work_secs: None,
                    },
                }
                .to_line(),
            ],
        );
        match &responses[0].body {
            ResponseBody::Hello(h) => {
                assert_eq!(h.proto, PROTO_VERSION);
                assert_eq!(h.server, "replay");
                assert_eq!(h.policy, "PDPA");
            }
            other => panic!("expected hello, got {other:?}"),
        }
        match &responses[1].body {
            ResponseBody::Reject(r) => {
                assert_eq!(r.reason, "not_a_daemon");
                assert!(r.retry_after_secs.is_none());
            }
            other => panic!("expected reject, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn wait_for_final_query_is_immediate_without_clients() {
        let tap = LiveTap::new(RunMeta::default());
        let server = StatusServer::bind("127.0.0.1:0", Arc::clone(&tap)).expect("binds");
        tap.mark_done();
        let start = Instant::now();
        server.wait_for_final_query(Duration::from_secs(5));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "no client ever connected, wait must return immediately"
        );
        server.shutdown();
    }

    #[test]
    fn wait_for_final_query_returns_after_post_done_status() {
        let tap = LiveTap::new(RunMeta::default());
        let server = StatusServer::bind("127.0.0.1:0", Arc::clone(&tap)).expect("binds");
        let addr = server.local_addr();
        tap.mark_done();
        let responses = query(
            addr,
            &[Request {
                id: 1,
                kind: RequestKind::Status,
            }
            .to_line()],
        );
        match &responses[0].body {
            ResponseBody::Status(s) => assert_eq!(s.state, RunState::Done),
            other => panic!("expected status, got {other:?}"),
        }
        let start = Instant::now();
        server.wait_for_final_query(Duration::from_secs(10));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "final query already served"
        );
        server.shutdown();
    }
}
