//! Live run observability: watch a PDPA replay while it runs.
//!
//! Every observability layer before this one (the decision-event bus, the
//! metrics registry, the profiler) is post-hoc: record, finish, analyze.
//! This crate adds the *live* half — the substrate `pdpa replay --serve`
//! and `pdpa watch` are built on, and the seed of the `pdpad` daemon's
//! query surface (ROADMAP item 1):
//!
//! - [`tap`] — the [`LiveTap`], a lock-light shared-state mirror the
//!   engine feeds without perturbing determinism or the ≤2% overhead
//!   bound: atomic progress counters (via `pdpa_prof::ProgressSink`), the
//!   latest heartbeat/watchdog state (via `pdpa_prof::HeartbeatSink`), and
//!   a bounded ring of recent observer events with honest drop accounting
//!   (via [`TapObserver`], which tees the stream unchanged to the real
//!   recorder).
//! - [`proto`] — the typed, correlation-ID'd, line-delimited JSON
//!   request/response protocol: the v1 query vocabulary (`status`,
//!   `progress`, `health`, `metrics`, `tail N`) plus the v2 control
//!   vocabulary `pdpad` serves (`hello`, `submit`, `cancel`, `drain`,
//!   `snapshot`, `shutdown`, `jobs`, `job`). Both directions round-trip
//!   through the parsers in this crate (pinned by proptest), so the
//!   client and the daemon share one schema.
//! - [`server`] — a thread-per-connection TCP [`StatusServer`] over
//!   std::net answering protocol queries from the tap and the global
//!   metrics registry. Control requests go through a pluggable
//!   [`ControlHandler`]; the default [`ReadOnlyControl`] identifies
//!   itself and rejects mutation, `pdpad` installs the real one.
//! - [`prom`] — [`prometheus_text`], the Prometheus text-exposition
//!   renderer for the `pdpa-obs` registry (counters and log₂ histograms
//!   as cumulative buckets).
//! - [`json`] — the minimal JSON reader the protocol parsers use (the
//!   workspace is offline; there is no serde).
//!
//! The crate sits between `pdpa-prof`/`pdpa-obs` and `pdpa-engine`: the
//! engine only knows the sink traits from `pdpa-prof`, the CLI wires a
//! concrete [`LiveTap`] into them.

#![deny(missing_docs)]

pub mod json;
pub mod prom;
pub mod proto;
pub mod server;
pub mod tap;

pub use prom::prometheus_text;
pub use proto::{
    AckBody, HealthBody, HelloBody, JobRow, ProgressBody, RejectBody, Request, RequestKind,
    Response, ResponseBody, RunState, StatusBody, TailBody, PROTO_VERSION,
};
pub use server::{ControlHandler, ReadOnlyControl, StatusServer};
pub use tap::{LiveTap, RunMeta, TapObserver, DEFAULT_RING_CAPACITY};
