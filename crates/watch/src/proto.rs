//! The status protocol: typed, correlation-ID'd, line-delimited JSON.
//!
//! One request per line, one response per line, over any ordered byte
//! stream (TCP here; the future `pdpad` daemon speaks the same frames).
//! Every request carries a client-chosen `id`; the response echoes it, so
//! a client may pipeline requests and correlate out-of-order handling —
//! though the bundled server answers strictly in order.
//!
//! ```text
//! → {"id":1,"type":"status"}
//! ← {"id":1,"type":"status","state":"running","policy":"PDPA",...}
//! → {"id":2,"type":"tail","n":5}
//! ← {"id":2,"type":"tail","events":["0.50 submit job=3", ...],"dropped":0}
//! ```
//!
//! Five request types: `status`, `progress`, `health`, `metrics`, `tail`.
//! Malformed requests get a `type":"error"` response with `id` 0 (the id
//! could not be read). Both sides of every message round-trip through
//! [`Request::parse_line`] / [`Response::parse_line`], which is pinned by
//! proptest across all message types.

use std::fmt::Write as _;

use crate::json::{fmt_f64, push_str_escaped, Json};

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What is being asked.
    pub kind: RequestKind,
}

/// The request vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// Run identity, job totals, terminal state.
    Status,
    /// Counters for rendering a progress line: clock, events/sec, ETA.
    Progress,
    /// Latest heartbeat/watchdog state and per-shard balance.
    Health,
    /// The metrics registry in Prometheus text exposition format.
    Metrics,
    /// The most recent `n` observer events still in the ring.
    Tail {
        /// Maximum number of events to return.
        n: usize,
    },
}

impl RequestKind {
    fn label(&self) -> &'static str {
        match self {
            RequestKind::Status => "status",
            RequestKind::Progress => "progress",
            RequestKind::Health => "health",
            RequestKind::Metrics => "metrics",
            RequestKind::Tail { .. } => "tail",
        }
    }
}

impl Request {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = format!("{{\"id\":{},\"type\":\"{}\"", self.id, self.kind.label());
        if let RequestKind::Tail { n } = self.kind {
            let _ = write!(out, ",\"n\":{n}");
        }
        out.push('}');
        out
    }

    /// Parses one protocol line.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line)?;
        let id = doc
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("request missing numeric 'id'")?;
        let kind = match doc.get("type").and_then(Json::as_str) {
            Some("status") => RequestKind::Status,
            Some("progress") => RequestKind::Progress,
            Some("health") => RequestKind::Health,
            Some("metrics") => RequestKind::Metrics,
            Some("tail") => {
                let n = doc
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or("tail request missing numeric 'n'")?;
                RequestKind::Tail {
                    n: usize::try_from(n).map_err(|_| "'n' does not fit in usize")?,
                }
            }
            Some(other) => return Err(format!("unknown request type '{other}'")),
            None => return Err("request missing 'type'".to_string()),
        };
        Ok(Request { id, kind })
    }
}

/// Terminal state of the watched run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// The engine loop is still driving events.
    Running,
    /// The run completed and its result was computed.
    Done,
    /// The zero-progress watchdog aborted the run.
    Aborted,
}

impl RunState {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            RunState::Running => "running",
            RunState::Done => "done",
            RunState::Aborted => "aborted",
        }
    }

    /// Parses a wire label.
    pub fn parse(label: &str) -> Result<Self, String> {
        match label {
            "running" => Ok(RunState::Running),
            "done" => Ok(RunState::Done),
            "aborted" => Ok(RunState::Aborted),
            other => Err(format!("unknown run state '{other}'")),
        }
    }
}

/// `status` payload: run identity and terminal state.
#[derive(Clone, Debug, PartialEq)]
pub struct StatusBody {
    /// Where the run is in its lifecycle.
    pub state: RunState,
    /// The policy's display name.
    pub policy: String,
    /// The trace (or workload) being replayed.
    pub trace: String,
    /// Shard count (1 = classic engine).
    pub shards: u64,
    /// Jobs in the workload.
    pub jobs_total: u64,
    /// Jobs submitted so far.
    pub jobs_submitted: u64,
    /// Jobs finished so far.
    pub jobs_finished: u64,
    /// Jobs terminally failed so far (fault injection).
    pub jobs_failed: u64,
    /// Observer events published through the tap so far.
    pub events_published: u64,
    /// Wall-clock seconds since the tap was created.
    pub elapsed_secs: f64,
    /// The watchdog diagnostic, when the run aborted.
    pub watchdog: Option<String>,
}

/// `progress` payload: the live counters a progress bar needs.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressBody {
    /// Simulated clock, seconds.
    pub sim_clock_secs: f64,
    /// Cumulative simulation events popped.
    pub events_popped: u64,
    /// Average events per wall-clock second since run start.
    pub events_per_sec: f64,
    /// Current event-queue backlog.
    pub queue_len: u64,
    /// Jobs currently running.
    pub running: u64,
    /// Jobs waiting in the scheduler queue.
    pub waiting: u64,
    /// Jobs finished so far.
    pub jobs_finished: u64,
    /// Jobs in the workload.
    pub jobs_total: u64,
    /// Naive completion estimate (wall-clock seconds), once any job has
    /// finished.
    pub eta_secs: Option<f64>,
    /// Wall-clock seconds since the tap was created.
    pub elapsed_secs: f64,
}

/// `health` payload: the heartbeat/watchdog view.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthBody {
    /// The latest formatted heartbeat line, when heartbeats are enabled.
    pub heartbeat: Option<String>,
    /// The watchdog diagnostic, when the run aborted.
    pub watchdog: Option<String>,
    /// Per-shard cumulative popped-event counts (empty on classic runs).
    pub shard_events: Vec<u64>,
    /// Max relative deviation from the mean shard load, when sharded.
    pub imbalance: Option<f64>,
    /// Peak resident set size in KiB, when /proc is readable.
    pub memory_hwm_kib: Option<u64>,
}

/// `tail` payload: recent observer events.
#[derive(Clone, Debug, PartialEq)]
pub struct TailBody {
    /// Most recent ring events, oldest first, in `TimedEvent::to_line`
    /// form.
    pub events: Vec<String>,
    /// Events that passed through the tap but are no longer in the ring
    /// (evicted by capacity or skipped under lock contention) — honest
    /// drop accounting, so `tail` never pretends to be a full stream.
    pub dropped: u64,
}

/// One server response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Correlation id echoed from the request (0 when the request's id
    /// could not be read).
    pub id: u64,
    /// The payload.
    pub body: ResponseBody,
}

/// The response vocabulary.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// Answer to `status`.
    Status(StatusBody),
    /// Answer to `progress`.
    Progress(ProgressBody),
    /// Answer to `health`.
    Health(HealthBody),
    /// Answer to `metrics`: the registry rendered in the named text
    /// format (`prometheus`).
    Metrics {
        /// Exposition format label.
        format: String,
        /// The rendered document.
        body: String,
    },
    /// Answer to `tail`.
    Tail(TailBody),
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

fn push_opt_str(out: &mut String, key: &str, v: &Option<String>) {
    let _ = write!(out, ",\"{key}\":");
    match v {
        Some(s) => push_str_escaped(out, s),
        None => out.push_str("null"),
    }
}

impl Response {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = format!("{{\"id\":{}", self.id);
        match &self.body {
            ResponseBody::Status(s) => {
                let _ = write!(
                    out,
                    ",\"type\":\"status\",\"state\":\"{}\"",
                    s.state.label()
                );
                out.push_str(",\"policy\":");
                push_str_escaped(&mut out, &s.policy);
                out.push_str(",\"trace\":");
                push_str_escaped(&mut out, &s.trace);
                let _ = write!(
                    out,
                    ",\"shards\":{},\"jobs\":{{\"total\":{},\"submitted\":{},\
                     \"finished\":{},\"failed\":{}}},\"events_published\":{},\
                     \"elapsed_secs\":{}",
                    s.shards,
                    s.jobs_total,
                    s.jobs_submitted,
                    s.jobs_finished,
                    s.jobs_failed,
                    s.events_published,
                    fmt_f64(s.elapsed_secs),
                );
                push_opt_str(&mut out, "watchdog", &s.watchdog);
            }
            ResponseBody::Progress(p) => {
                let _ = write!(
                    out,
                    ",\"type\":\"progress\",\"sim_clock_secs\":{},\"events_popped\":{},\
                     \"events_per_sec\":{},\"queue_len\":{},\"running\":{},\"waiting\":{},\
                     \"jobs_finished\":{},\"jobs_total\":{},\"eta_secs\":{},\"elapsed_secs\":{}",
                    fmt_f64(p.sim_clock_secs),
                    p.events_popped,
                    fmt_f64(p.events_per_sec),
                    p.queue_len,
                    p.running,
                    p.waiting,
                    p.jobs_finished,
                    p.jobs_total,
                    p.eta_secs.map_or("null".to_string(), fmt_f64),
                    fmt_f64(p.elapsed_secs),
                );
            }
            ResponseBody::Health(h) => {
                out.push_str(",\"type\":\"health\"");
                push_opt_str(&mut out, "heartbeat", &h.heartbeat);
                push_opt_str(&mut out, "watchdog", &h.watchdog);
                out.push_str(",\"shard_events\":[");
                for (i, n) in h.shard_events.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{n}");
                }
                let _ = write!(
                    out,
                    "],\"imbalance\":{},\"memory_hwm_kib\":{}",
                    h.imbalance.map_or("null".to_string(), fmt_f64),
                    h.memory_hwm_kib
                        .map_or("null".to_string(), |k| k.to_string()),
                );
            }
            ResponseBody::Metrics { format, body } => {
                out.push_str(",\"type\":\"metrics\",\"format\":");
                push_str_escaped(&mut out, format);
                out.push_str(",\"body\":");
                push_str_escaped(&mut out, body);
            }
            ResponseBody::Tail(t) => {
                out.push_str(",\"type\":\"tail\",\"events\":[");
                for (i, ev) in t.events.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_str_escaped(&mut out, ev);
                }
                let _ = write!(out, "],\"dropped\":{}", t.dropped);
            }
            ResponseBody::Error { message } => {
                out.push_str(",\"type\":\"error\",\"message\":");
                push_str_escaped(&mut out, message);
            }
        }
        out.push('}');
        out
    }

    /// Parses one protocol line.
    pub fn parse_line(line: &str) -> Result<Response, String> {
        let doc = Json::parse(line)?;
        let id = doc
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("response missing numeric 'id'")?;
        let get_u64 = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response missing numeric '{key}'"))
        };
        let get_f64 = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("response missing numeric '{key}'"))
        };
        let get_str = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("response missing string '{key}'"))
        };
        let get_opt_str = |key: &str| -> Option<String> {
            doc.get(key).and_then(Json::as_str).map(str::to_string)
        };
        let body = match doc.get("type").and_then(Json::as_str) {
            Some("status") => {
                let jobs = doc.get("jobs").ok_or("status missing 'jobs'")?;
                let job = |key: &str| -> Result<u64, String> {
                    jobs.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("status missing jobs.{key}"))
                };
                ResponseBody::Status(StatusBody {
                    state: RunState::parse(&get_str("state")?)?,
                    policy: get_str("policy")?,
                    trace: get_str("trace")?,
                    shards: get_u64("shards")?,
                    jobs_total: job("total")?,
                    jobs_submitted: job("submitted")?,
                    jobs_finished: job("finished")?,
                    jobs_failed: job("failed")?,
                    events_published: get_u64("events_published")?,
                    elapsed_secs: get_f64("elapsed_secs")?,
                    watchdog: get_opt_str("watchdog"),
                })
            }
            Some("progress") => ResponseBody::Progress(ProgressBody {
                sim_clock_secs: get_f64("sim_clock_secs")?,
                events_popped: get_u64("events_popped")?,
                events_per_sec: get_f64("events_per_sec")?,
                queue_len: get_u64("queue_len")?,
                running: get_u64("running")?,
                waiting: get_u64("waiting")?,
                jobs_finished: get_u64("jobs_finished")?,
                jobs_total: get_u64("jobs_total")?,
                eta_secs: doc.get("eta_secs").and_then(Json::as_f64),
                elapsed_secs: get_f64("elapsed_secs")?,
            }),
            Some("health") => {
                let shard_events = doc
                    .get("shard_events")
                    .and_then(Json::as_arr)
                    .ok_or("health missing 'shard_events'")?
                    .iter()
                    .map(|v| v.as_u64().ok_or("shard_events entry not a count"))
                    .collect::<Result<Vec<_>, _>>()?;
                ResponseBody::Health(HealthBody {
                    heartbeat: get_opt_str("heartbeat"),
                    watchdog: get_opt_str("watchdog"),
                    shard_events,
                    imbalance: doc.get("imbalance").and_then(Json::as_f64),
                    memory_hwm_kib: doc.get("memory_hwm_kib").and_then(Json::as_u64),
                })
            }
            Some("metrics") => ResponseBody::Metrics {
                format: get_str("format")?,
                body: get_str("body")?,
            },
            Some("tail") => {
                let events = doc
                    .get("events")
                    .and_then(Json::as_arr)
                    .ok_or("tail missing 'events'")?
                    .iter()
                    .map(|v| v.as_str().map(str::to_string).ok_or("event not a string"))
                    .collect::<Result<Vec<_>, _>>()?;
                ResponseBody::Tail(TailBody {
                    events,
                    dropped: get_u64("dropped")?,
                })
            }
            Some("error") => ResponseBody::Error {
                message: get_str("message")?,
            },
            Some(other) => return Err(format!("unknown response type '{other}'")),
            None => return Err("response missing 'type'".to_string()),
        };
        Ok(Response { id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_lines_round_trip() {
        for req in [
            Request {
                id: 0,
                kind: RequestKind::Status,
            },
            Request {
                id: 7,
                kind: RequestKind::Progress,
            },
            Request {
                id: 9,
                kind: RequestKind::Health,
            },
            Request {
                id: 11,
                kind: RequestKind::Metrics,
            },
            Request {
                id: u64::MAX >> 12,
                kind: RequestKind::Tail { n: 25 },
            },
        ] {
            let line = req.to_line();
            assert_eq!(Request::parse_line(&line).expect("parses"), req);
        }
    }

    #[test]
    fn malformed_requests_are_diagnostics() {
        for bad in [
            "",
            "{}",
            "{\"id\":1}",
            "{\"id\":1,\"type\":\"nope\"}",
            "{\"id\":1,\"type\":\"tail\"}",
            "{\"type\":\"status\"}",
        ] {
            assert!(Request::parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response {
                id: 1,
                body: ResponseBody::Status(StatusBody {
                    state: RunState::Running,
                    policy: "PDPA".into(),
                    trace: "big.swf".into(),
                    shards: 4,
                    jobs_total: 10430,
                    jobs_submitted: 900,
                    jobs_finished: 890,
                    jobs_failed: 1,
                    events_published: 123456,
                    elapsed_secs: 2.75,
                    watchdog: None,
                }),
            },
            Response {
                id: 2,
                body: ResponseBody::Progress(ProgressBody {
                    sim_clock_secs: 1234.5,
                    events_popped: 999_999,
                    events_per_sec: 350_000.25,
                    queue_len: 42,
                    running: 7,
                    waiting: 3,
                    jobs_finished: 890,
                    jobs_total: 10430,
                    eta_secs: Some(27.5),
                    elapsed_secs: 2.75,
                }),
            },
            Response {
                id: 3,
                body: ResponseBody::Health(HealthBody {
                    heartbeat: Some("heartbeat t+5s: clock=9.1s".into()),
                    watchdog: Some("watchdog: no sim-clock progress".into()),
                    shard_events: vec![100, 120, 90],
                    imbalance: Some(0.161),
                    memory_hwm_kib: Some(65536),
                }),
            },
            Response {
                id: 4,
                body: ResponseBody::Metrics {
                    format: "prometheus".into(),
                    body: "# TYPE pdpa_engine_runs_total counter\npdpa_engine_runs_total 3\n"
                        .into(),
                },
            },
            Response {
                id: 5,
                body: ResponseBody::Tail(TailBody {
                    events: vec![
                        "0.50 submit job=3".into(),
                        "1.00 decision trigger=report \"quote\"".into(),
                    ],
                    dropped: 17,
                }),
            },
            Response {
                id: 0,
                body: ResponseBody::Error {
                    message: "unknown request type 'bogus'".into(),
                },
            },
        ]
    }

    #[test]
    fn response_lines_round_trip() {
        for resp in sample_responses() {
            let line = resp.to_line();
            assert_eq!(
                Response::parse_line(&line).expect("parses"),
                resp,
                "line: {line}"
            );
        }
    }

    // Strategy helpers: printable strings (escaping is exercised by the
    // full printable-ASCII class plus the explicit cases above).
    proptest! {
        #[test]
        fn protocol_round_trips_all_message_types(
            id in 0u64..1 << 53,
            pick in 0usize..8,
            n in 0usize..10_000,
            s1 in "[ -~]{0,40}",
            s2 in "[ -~]{0,40}",
            counts in proptest::collection::vec(0u64..1 << 53, 0..6),
            f1 in 0.0f64..1e9,
            f2 in 0.0f64..1e9,
            some in proptest::bool::ANY,
        ) {
            // Requests: every kind.
            let req = Request {
                id,
                kind: match pick % 5 {
                    0 => RequestKind::Status,
                    1 => RequestKind::Progress,
                    2 => RequestKind::Health,
                    3 => RequestKind::Metrics,
                    _ => RequestKind::Tail { n },
                },
            };
            prop_assert_eq!(Request::parse_line(&req.to_line()).unwrap(), req);

            // Responses: every body shape, strings drawn from the full
            // printable class so quoting/escaping is exercised.
            let body = match pick % 6 {
                0 => ResponseBody::Status(StatusBody {
                    state: [RunState::Running, RunState::Done, RunState::Aborted][pick % 3],
                    policy: s1.clone(),
                    trace: s2.clone(),
                    shards: counts.len() as u64,
                    jobs_total: n as u64,
                    jobs_submitted: id % 1000,
                    jobs_finished: id % 999,
                    jobs_failed: id % 7,
                    events_published: id,
                    elapsed_secs: f1,
                    watchdog: some.then(|| s2.clone()),
                }),
                1 => ResponseBody::Progress(ProgressBody {
                    sim_clock_secs: f1,
                    events_popped: id,
                    events_per_sec: f2,
                    queue_len: n as u64,
                    running: id % 61,
                    waiting: id % 13,
                    jobs_finished: id % 999,
                    jobs_total: n as u64,
                    eta_secs: some.then_some(f2),
                    elapsed_secs: f1,
                }),
                2 => ResponseBody::Health(HealthBody {
                    heartbeat: some.then(|| s1.clone()),
                    watchdog: (!some).then(|| s2.clone()),
                    shard_events: counts.clone(),
                    imbalance: some.then_some(f1),
                    memory_hwm_kib: some.then_some(id),
                }),
                3 => ResponseBody::Metrics { format: "prometheus".into(), body: s1.clone() },
                4 => ResponseBody::Tail(TailBody {
                    events: vec![s1.clone(), s2.clone()],
                    dropped: id,
                }),
                _ => ResponseBody::Error { message: s1.clone() },
            };
            let resp = Response { id, body };
            let line = resp.to_line();
            prop_assert_eq!(Response::parse_line(&line).unwrap(), resp);
        }
    }
}
